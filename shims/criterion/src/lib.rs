//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotation and `black_box` — as a small wall-clock harness. Each
//! benchmark warms up briefly, then runs `sample_size` samples and
//! prints mean / min per-iteration time (and element throughput when
//! set). There are no statistics, baselines or HTML reports; the point
//! is comparable relative numbers from the exact same bench sources.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id `<function>/<parameter>`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.name.fmt(f)
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, one sample per call, until the sample budget or
    /// time budget is exhausted.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up (untimed).
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark (default 3 s).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; the shim's warm-up is one untimed
    /// iteration regardless.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        let full = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if samples.is_empty() {
            println!("{full:<50} no samples");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{full:<50} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            samples.len()
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let rate = n as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {:.0} elem/s", rate));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let rate = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
            line.push_str(&format!("  {rate:.1} MiB/s"));
        }
        println!("{line}");
        let _ = &self.criterion; // group lifetime tied to its criterion
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group(id.to_string());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: group.sample_size,
            measurement_time: group.measurement_time,
        };
        f(&mut b);
        group.report("", &b.samples);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
