//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range strategies, a regex-subset string
//! strategy, tuple strategies, [`collection::vec`] and [`bool::ANY`].
//!
//! Semantics: each test runs `cases` iterations with inputs drawn from
//! a deterministic per-case RNG (no external entropy, so failures
//! reproduce exactly). There is **no shrinking** — a failing case
//! reports its inputs via the panic message of the underlying assert.

use std::rc::Rc;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the given case index (fixed base seed: reproducible).
    pub fn from_case(case: u32) -> TestRng {
        TestRng {
            state: 0xEC5E_ED00u64 ^ ((case as u64) << 32) ^ 0x9E37_79B9,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree: strategies sample
/// directly and nothing shrinks.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `recurse` receives a strategy for the
    /// element type and builds a strategy for one level above it; the
    /// tree depth is drawn uniformly from `0..=depth` per sample.
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe sampling facet (what [`BoxedStrategy`] stores).
trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// String strategy from a regex subset: concatenations of character
/// classes (`[a-z0-9_-]`, with ranges, literals, trailing `-`) or
/// literal characters, each optionally repeated `{n}` / `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms =
            parse_pattern(self).unwrap_or_else(|e| panic!("unsupported regex {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_rep as u64 + rng.below((atom.max_rep - atom.min_rep) as u64 + 1);
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min_rep: u32,
    max_rep: u32,
}

fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, String> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut class: Vec<char> = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    // `a-z` range (not a trailing/leading literal '-').
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                        if lo > hi {
                            return Err(format!("bad class range {}-{}", class[i], class[i + 2]));
                        }
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(class[i]);
                        i += 1;
                    }
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                set
            }
            '\\' => vec![chars.next().ok_or("dangling escape")?],
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                return Err(format!("unsupported metacharacter {c:?}"));
            }
            literal => vec![literal],
        };
        // Optional {n} / {m,n} repetition.
        let (min_rep, max_rep) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parts: Vec<&str> = spec.split(',').collect();
            let parse = |s: &str| s.trim().parse::<u32>().map_err(|e| e.to_string());
            match parts.as_slice() {
                [n] => {
                    let n = parse(n)?;
                    (n, n)
                }
                [m, n] => (parse(m)?, parse(n)?),
                _ => return Err(format!("bad repetition {{{spec}}}")),
            }
        } else {
            (1, 1)
        };
        if min_rep > max_rep {
            return Err(format!("bad repetition bounds {min_rep}..{max_rep}"));
        }
        atoms.push(Atom {
            chars: set,
            min_rep,
            max_rep,
        });
    }
    Ok(atoms)
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::bool::ANY as _PROPTEST_BOOL_ANY; // keep path form usable too
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, ProptestConfig,
        Strategy,
    };
}

/// Asserts inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) {}`
/// item becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = $cfg:expr; ) => {};
    ( cfg = $cfg:expr;
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::from_case(__case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_case(0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = TestRng::from_case(1);
        for _ in 0..500 {
            let s = Strategy::sample(&"[a-z][a-z0-9_-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
            let p = Strategy::sample(&"[ -~]{0,12}", &mut rng);
            assert!(p.len() <= 12);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_and_tuple_and_map() {
        let mut rng = TestRng::from_case(2);
        let strat = crate::collection::vec((0i32..5, "[ab]"), 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn recursion_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => {
                    assert!((0..10).contains(n), "leaf outside its strategy range");
                    0
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_case(3);
        for _ in 0..200 {
            let t = Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 3, "depth {} in {t:?}", depth(&t));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: addition commutes.
        #[test]
        fn macro_runs_cases(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 1000 && b < 1000);
        }
    }
}
