//! Offline stand-in for `rayon`.
//!
//! Implements the subset this workspace uses — `ThreadPoolBuilder`,
//! `ThreadPool::install`, and `vec.into_par_iter().map(f).collect()` —
//! with `std::thread::scope` fan-out. Work is split into one contiguous
//! chunk per worker; results are returned in input order, which is the
//! property `BarrierParallel` relies on for deterministic histories.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker count installed by the innermost `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim;
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = number of cores).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Accepted for compatibility; the shim spawns unnamed scoped
    /// threads per operation instead of persistent named workers.
    pub fn thread_name<F>(self, _f: F) -> ThreadPoolBuilder
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A (virtual) pool: records the worker count that `install` makes
/// current for parallel iterators executed inside it.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.replace(self.num_threads);
            let result = op();
            t.set(prev);
            result
        })
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Rayon-style prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts self.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Minimal parallel-iterator interface: `map(...).collect()`.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Maps each item through `f` (executed across worker threads at
    /// collect time).
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        ParMap { inner: self, f }
    }

    /// Drives the pipeline, producing items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Collects results (in input order, like rayon's indexed collect).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// Parallel iterator over a vector.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.inner.run();
        let threads = INSTALLED_THREADS
            .with(Cell::get)
            .max(1)
            .min(items.len().max(1));
        let f = &self.f;
        if threads <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let mut slots: Vec<Option<Vec<R>>> = Vec::new();
        slots.resize_with(threads, || None);
        let mut chunks: Vec<Vec<I::Item>> = Vec::with_capacity(threads);
        {
            let mut it = items.into_iter();
            loop {
                let c: Vec<I::Item> = it.by_ref().take(chunk).collect();
                if c.is_empty() {
                    break;
                }
                chunks.push(c);
            }
        }
        std::thread::scope(|scope| {
            for (slot, chunk_items) in slots.iter_mut().zip(chunks) {
                scope.spawn(move || {
                    *slot = Some(chunk_items.into_iter().map(f).collect());
                });
            }
        });
        slots.into_iter().flatten().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = pool.install(|| input.into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64u32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    x
                })
                .collect::<Vec<_>>()
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn outside_install_runs_inline() {
        let out: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<i32> = pool.install(|| Vec::<i32>::new().into_par_iter().map(|x| x).collect());
        assert!(out.is_empty());
    }
}
