//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the subset of the API this workspace uses: [`Mutex`] with a
//! non-poisoning `lock()`, [`Condvar::wait`] taking `&mut MutexGuard`,
//! and [`RwLock`]. Poisoning is deliberately swallowed (as in the real
//! parking_lot): a panicking holder does not poison the lock for
//! others — the engine has its own failure propagation.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (parking_lot-flavoured `std` mutex).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily relinquish it through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and waits; reacquires
    /// before returning (spurious wakeups possible, as usual).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Waits with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new RwLock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        assert!(*started);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
