//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives serde traits on a few ID and value types, but
//! no code path actually serializes them (the spec layer has its own XML
//! reader/writer). This offline build therefore satisfies the derives
//! with empty expansions instead of vendoring the real `serde`.

use proc_macro::TokenStream;

/// Expands to nothing; the real impl is unused in this workspace.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the real impl is unused in this workspace.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
