//! Offline stand-in for `rand` 0.8.
//!
//! Implements the API subset this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` and
//! `seq::SliceRandom::shuffle` — on top of a splitmix64-seeded
//! xoshiro256** generator. The stream differs from the real crate's,
//! but every consumer in the workspace only relies on determinism for a
//! fixed seed and on reasonable statistical quality, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// splitmix64 as the reference implementation recommends.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from uniform bits via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); the
/// slight modulo bias of the plain approach is irrelevant here but this
/// is just as cheap.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface (auto-implemented for cores).
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::from_rng(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast xoshiro256** generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 never
            // produces four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence utilities, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = SmallRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
