//! Offline stand-in for `serde`.
//!
//! Re-exports no-op derive macros so `#[derive(Serialize, Deserialize)]`
//! compiles without the real crate. Nothing in this workspace performs
//! serialization (the spec layer ships its own XML reader/writer), so
//! the marker traits are empty.

pub use serde_derive::{Deserialize, Serialize};
