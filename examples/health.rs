//! The health/watchdog plane, end to end: a runtime with causal trace
//! sampling and the `/healthz` watchdog endpoint on, pushed for a few
//! seconds so the end-to-end latency histograms fill, then deliberately
//! wedged so the watchdog flips from `ok` to `stalled` and blames the
//! offending source.
//!
//! ```text
//! cargo run --release --example health
//! # in another terminal, while it runs:
//! curl http://127.0.0.1:9185/healthz
//! cargo run --bin ec -- doctor 127.0.0.1:9185
//! ```
//!
//! Environment knobs (CI's health-smoke job drives both):
//!
//! * `EC_METRICS_ADDR` — bind address, default `127.0.0.1:9185` (port 0
//!   for ephemeral; the actual address is printed either way);
//! * `EC_HEALTH_SECONDS` — how long to stay healthy before wedging,
//!   default 4;
//! * `EC_HEALTH_WEDGE` — set to `0` to skip the wedge demonstration
//!   (CI's smoke leaves it on to watch the verdict flip).

use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::fusion::operators::moving::MovingAverage;
use event_correlation::obs::http_get;
use event_correlation::runtime::{
    Backpressure, EpochPolicy, HealthConfig, StreamRuntimeBuilder, Verdict,
};
use std::time::{Duration, Instant};

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let addr = env_or("EC_METRICS_ADDR", "127.0.0.1:9185");
    let seconds: u64 = env_or("EC_HEALTH_SECONDS", "4")
        .parse()
        .expect("EC_HEALTH_SECONDS");
    let wedge = env_or("EC_HEALTH_WEDGE", "1") != "0";

    // Manual sealing: the healthy phase flushes explicitly, and the
    // wedge phase simply stops — under ByCount a full shard would force
    // its own seal and the watchdog would (correctly) see progress.
    let mut b = StreamRuntimeBuilder::new()
        .threads(4)
        .epoch_policy(EpochPolicy::Manual)
        .record_history(false)
        .record_script(false)
        .max_inflight(64)
        .ingest_capacity(256)
        .backpressure(Backpressure::Reject)
        .trace_sampling(16)
        .health_config(HealthConfig {
            stall_after: Duration::from_millis(500),
            ..HealthConfig::default()
        })
        .metrics_addr(&addr);
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    b.add("avg", MovingAverage::new(8), &[sum]);
    let rt = b.build().expect("runtime builds");

    // CI greps this exact line for the bound address.
    let bound = rt.metrics_addr().expect("endpoint bound");
    println!("metrics endpoint: http://{bound}/metrics");
    println!("health endpoint:  http://{bound}/healthz (try `ec doctor {bound}`)");

    // Phase 1: healthy traffic. Sampled pushes carry trace stamps, so
    // /metrics grows ec_e2e_seconds{source,sink} histograms.
    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut i: u64 = 0;
    while Instant::now() < deadline {
        let h = if i.is_multiple_of(2) { &s1 } else { &s2 };
        h.push((i % 1000) as f64).expect("push accepted");
        i += 1;
        if i.is_multiple_of(64) {
            rt.flush().expect("flush");
        }
        if i.is_multiple_of(2048) {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    rt.flush().expect("flush");
    rt.wait_idle().expect("idle");
    // Give the watchdog a beat to observe the now-idle runtime.
    std::thread::sleep(Duration::from_millis(200));

    let report = rt.health();
    println!(
        "pushed {i} events; verdict: {} ({} e2e paths traced)",
        report.verdict.name(),
        rt.metrics().latency.e2e.len()
    );
    for path in &rt.metrics().latency.e2e {
        println!(
            "  e2e {} -> {}: p50 {}us p99 {}us over {} samples",
            path.source,
            path.sink,
            path.hist.p50() / 1_000,
            path.hist.p99() / 1_000,
            path.hist.count()
        );
    }
    assert_eq!(report.verdict, Verdict::Ok, "healthy run must report ok");
    println!(
        "healthz: {}",
        http_get(&bound.to_string(), "/healthz").expect("healthz")
    );

    if wedge {
        // Phase 2: wedge s1 — fill its buffer and stop sealing (no more
        // flushes; ByCount can't fire because pushes now bounce). The
        // watchdog notices the full source with climbing waits and no
        // admissions, and flips to stalled, blaming s1.
        println!("wedging s1 (watch the verdict flip) ...");
        while s1.push(1.0).is_ok() {} // fill the buffer to the brim
        let start = Instant::now();
        loop {
            let _ = s1.push(1.0); // keep bouncing: waits keep climbing
            let report = rt.health();
            if report.verdict == Verdict::Stalled {
                println!("verdict: {}", report.verdict.name());
                for reason in &report.reasons {
                    println!("  reason: {reason}");
                }
                break;
            }
            if start.elapsed() > Duration::from_secs(30) {
                panic!("watchdog never flipped to stalled");
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        // Seal the wedged epoch so shutdown drains cleanly.
        rt.flush().expect("flush");
        rt.wait_idle().expect("idle");
    }

    rt.shutdown().expect("clean shutdown");
    println!("done");
}
