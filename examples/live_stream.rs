//! Serving live streams: the online runtime quickstart.
//!
//! A fraud-style correlator runs as a long-lived service while two
//! producer threads push transaction amounts into it. Epochs seal every
//! 25 ms (wall-clock ticks, like the paper's environment process);
//! alarms print the moment their phase retires; shutdown proves the
//! whole live run serializable against the sequential oracle.
//!
//! ```text
//! cargo run --example live_stream
//! ```

use event_correlation::core::Sequential;
use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::fusion::operators::anomaly::ZScoreAnomaly;
use event_correlation::fusion::prelude::*;
use event_correlation::runtime::{EpochPolicy, PhaseScript, StreamRuntimeBuilder};
use std::time::Duration;

/// Wires the correlator: two account feeds, their combined flow, and a
/// z-score anomaly detector over the combined stream.
fn wire(mut source: impl FnMut(&mut CorrelatorBuilder, &str) -> NodeHandle) -> CorrelatorBuilder {
    let mut b = CorrelatorBuilder::new();
    let retail = source(&mut b, "retail");
    let wholesale = source(&mut b, "wholesale");
    let flow = b.add("flow", Aggregate::sum(), &[retail, wholesale]);
    let _alarm = b.add("anomaly", ZScoreAnomaly::new(16, 2.5), &[flow]);
    b
}

fn main() {
    // --- build the live service --------------------------------------
    let mut feeds = Vec::new();
    let correlator = wire(|b, name| {
        let (handle, writer) = b.live_source(name);
        feeds.push((name.to_string(), handle, writer));
        handle
    });
    let rt = StreamRuntimeBuilder::from_correlator(correlator, feeds)
        .threads(4)
        .epoch_policy(EpochPolicy::ByInterval(Duration::from_millis(25)))
        // Builder-time subscription: registered before the first epoch
        // can retire, so no alarm is ever missed.
        .subscribe(|e| {
            println!("  [phase {:>3}] {} -> {}", e.phase, e.name, e.value);
        })
        .build()
        .expect("runtime builds");

    // --- producers push while the service runs -----------------------
    let retail = rt.handle_by_name("retail").unwrap();
    let wholesale = rt.handle_by_name("wholesale").unwrap();
    let producer_a = std::thread::spawn(move || {
        for i in 0..60u32 {
            // Steady small amounts, one glaring outlier.
            let amount = if i == 45 {
                5_000.0
            } else {
                20.0 + (i % 7) as f64
            };
            retail.push(amount).expect("runtime accepts");
            std::thread::sleep(Duration::from_millis(3));
        }
    });
    let producer_b = std::thread::spawn(move || {
        for i in 0..40u32 {
            wholesale
                .push(100.0 + (i % 11) as f64)
                .expect("runtime accepts");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    println!("live run (alarms appear as phases retire):");
    producer_a.join().unwrap();
    producer_b.join().unwrap();

    // --- drain, stop, and audit the run ------------------------------
    let report = rt.shutdown().expect("clean shutdown");
    println!(
        "served {} events over {} phases ({} executions, {} messages)",
        report.script.event_count(),
        report.phases,
        report.metrics.executions,
        report.metrics.messages_sent,
    );

    // Replay the committed script through the sequential oracle: the
    // live history must match exactly (serializability, §2).
    let script: PhaseScript = report.script;
    let mut column = 0usize;
    let oracle_graph = wire(|b, name| {
        let replay = script.replay(column);
        column += 1;
        b.source(name, replay)
    });
    let (dag, modules) = oracle_graph.into_parts();
    let mut oracle = Sequential::new(&dag, modules).expect("oracle builds");
    oracle.run(script.phases()).expect("oracle runs");
    match oracle
        .into_history()
        .equivalent(&report.history.expect("history recorded"))
    {
        Ok(()) => println!("serializability audit: live history == sequential oracle ✓"),
        Err(divergence) => panic!("live run diverged from oracle: {divergence}"),
    }
}
