//! Quickstart: build a three-node correlator, run it in parallel, and
//! inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use event_correlation::events::sources::RandomWalk;
use event_correlation::fusion::prelude::*;

fn main() {
    // A drifting sensor, a smoothing window, and an alarm that speaks
    // only when the smoothed signal crosses 22 units — the Δ-dataflow
    // contract: no change, no message.
    let mut b = CorrelatorBuilder::new();
    let sensor = b.source("sensor", RandomWalk::new(20.0, 0.5, 42));
    let avg = b.add("avg", MovingAverage::new(8), &[sensor]);
    let alarm = b.add("alarm", Threshold::above(22.0), &[avg]);

    let mut engine = b.engine().threads(4).build().expect("valid graph");
    let report = engine.run(200).expect("run succeeds");

    let history = report.history.expect("history recorded");
    println!("ran {} phases on 4 computation threads", report.phases);
    println!(
        "executions: {}, messages: {}, silent executions: {}",
        report.metrics.executions, report.metrics.messages_sent, report.metrics.silent_executions
    );
    println!(
        "pipelining: up to {} phases in flight (mean {:.2})",
        report.metrics.max_concurrent_phases,
        report.metrics.mean_concurrent_phases()
    );

    println!("\nalarm state changes:");
    for (phase, value) in history.sink_outputs_of(alarm.vertex()) {
        println!("  phase {phase}: {value}");
    }
}
