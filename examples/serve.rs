//! Serving over the wire: the `ec serve` path, in-process.
//!
//! A two-tenant `WireServer` runs on an ephemeral TCP port while
//! `WireClient` producers push event batches over real sockets and a
//! wire subscriber streams retired-phase alarms back out — the same
//! protocol `ec serve` / `ec push` speak, driven from one program.
//! Shutdown proves each tenant's socket-fed run serializable against
//! the sequential oracle, exactly as the in-process quickstart does.
//!
//! ```text
//! cargo run --example serve
//! ```

use event_correlation::core::Sequential;
use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::fusion::operators::moving::MovingAverage;
use event_correlation::fusion::operators::threshold::Threshold;
use event_correlation::fusion::CorrelatorBuilder;
use event_correlation::runtime::serve::Role;
use event_correlation::runtime::{
    PhaseScript, SessionPool, StreamRuntime, StreamRuntimeBuilder, WireClient, WireServer,
};

/// The per-tenant correlator: two sources, a shared spine, one alarm.
fn tenant_graph() -> StreamRuntimeBuilder {
    let mut b = StreamRuntime::builder();
    let s1 = b.live_source("card");
    let s2 = b.live_source("transfer");
    let sum = b.add("flow", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(100.0), &[avg]);
    b
}

/// Replays a committed script through the sequential oracle.
fn oracle(script: &PhaseScript) -> event_correlation::core::ExecutionHistory {
    let mut b = CorrelatorBuilder::new();
    let s1 = b.source("card", script.replay(0));
    let s2 = b.source("transfer", script.replay(1));
    let sum = b.add("flow", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(100.0), &[avg]);
    let mut seq: Sequential = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

fn main() {
    // --- bind the server ---------------------------------------------
    let tenants = ["payments", "ops"];
    let pool = SessionPool::builder()
        .threads(4)
        .max_sessions(tenants.len())
        .build();
    let sessions = tenants
        .iter()
        .map(|name| pool.open(name.to_string(), tenant_graph()).unwrap())
        .collect();
    let server = WireServer::builder()
        .bind("127.0.0.1:0", pool, sessions)
        .expect("server binds");
    let addr = server.local_addr().to_string();
    println!("wire endpoint: {addr} (tenants: {tenants:?})");

    // --- a wire subscriber on "payments" -----------------------------
    // subscribe() resolves only once the server has registered the
    // stream (the SubscribeOk ack), so every phase retired after this
    // point is guaranteed delivered.
    let sub_addr = addr.clone();
    let subscriber = std::thread::spawn(move || {
        let mut sub = WireClient::connect(&sub_addr, "", "payments", Role::Subscriber)
            .expect("subscriber connects");
        sub.subscribe().expect("subscription registered");
        let mut alarms = 0u64;
        while let Ok(batch) = sub.next_alarms() {
            for a in &batch {
                println!(
                    "  [payments phase {:>2}] {} -> {}",
                    a.phase, a.sink, a.value
                );
            }
            alarms += batch.len() as u64;
        }
        alarms // the server closing the socket ends the stream
    });

    // --- one wire producer per tenant --------------------------------
    let producers: Vec<_> = tenants
        .into_iter()
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr, "", tenant, Role::Producer)
                    .expect("producer connects");
                let card = client.source_index("card").unwrap();
                let transfer = client.source_index("transfer").unwrap();
                // Six epochs of batched pushes; one epoch carries a
                // burst that trips the threshold.
                for epoch in 0..6u64 {
                    let base = if epoch == 4 { 400.0 } else { 20.0 };
                    let batch: Vec<_> = (0..8).map(|i| (base + i as f64).into()).collect();
                    client.push_batch(card, &batch).expect("batch acked");
                    client
                        .push_batch(transfer, &batch[..4])
                        .expect("batch acked");
                    client.seal().expect("epoch seals");
                }
                let metrics = client.metrics_json().expect("metrics row");
                println!("{tenant}: {metrics}");
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer finishes");
    }

    // --- shutdown + serializability audit ----------------------------
    // Drain retirement before shutdown so the subscriber has seen
    // every phase, then audit each tenant's committed script.
    for name in &tenants {
        server.tenant(name).unwrap().wait_idle().expect("drains");
    }
    let reports = server.shutdown();
    let alarms = subscriber.join().expect("subscriber finishes");
    println!("subscriber saw {alarms} alarm(s) in serial order");
    for (name, report) in reports {
        let report = report.expect("tenant closes cleanly");
        let live = report.history.expect("history recorded");
        oracle(&report.script)
            .equivalent(&live)
            .expect("wire-fed run serializable");
        println!(
            "{name}: {} phases committed, serializable against the oracle",
            report.phases
        );
    }
}
