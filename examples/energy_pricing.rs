//! Energy-pricing model composition — the paper's §1 example.
//!
//! "Consider a system for pricing electrical energy … models forecasting
//! temperature variation in the coming day, load on the power grid and
//! future prices. The model for power demand may assume that temperature
//! will vary in some fashion … The power-demand model expects to receive
//! an event if data from a sensor or some other model indicates that its
//! assumptions about future temperatures are wrong."
//!
//! The key behaviour demonstrated: the temperature sensor reports every
//! phase, but the *assumption checker* emits only when the measurement
//! deviates from the forecast — so the demand and price models execute
//! rarely, exactly as the paper's absence-of-messages argument predicts.
//!
//! ```sh
//! cargo run --example energy_pricing
//! ```

use event_correlation::core::{Emission, ExecCtx, Module};
use event_correlation::events::sources::Diurnal;
use event_correlation::events::Value;
use event_correlation::fusion::prelude::*;

/// The demand model's temperature assumption: a clean diurnal forecast.
/// Emits the *deviation* only when the measurement strays more than
/// `tolerance` degrees from the forecast — the "assumption violated"
/// event of §1.
struct AssumptionChecker {
    tolerance: f64,
    phase_in_day: u64,
}

impl AssumptionChecker {
    fn forecast(&self, phase: u64) -> f64 {
        // 15 °C at midnight, 20 °C early morning, 30 °C at noon — a
        // sine approximation of the paper's numbers.
        let theta =
            (phase % self.phase_in_day) as f64 / self.phase_in_day as f64 * std::f64::consts::TAU;
        22.5 + 7.5 * theta.sin()
    }
}

impl Module for AssumptionChecker {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some((_, v)) = ctx.inputs.fresh.last() else {
            return Emission::Silent;
        };
        let measured = v.as_f64().expect("temperature is numeric");
        let deviation = measured - self.forecast(ctx.phase.get());
        if deviation.abs() > self.tolerance {
            Emission::Broadcast(Value::Float(deviation))
        } else {
            Emission::Silent // assumption holds: say nothing
        }
    }

    fn name(&self) -> &str {
        "assumption-checker"
    }
}

/// Power-demand model: adjusts its demand estimate when told its
/// temperature assumption was violated.
struct DemandModel {
    base_load_mw: f64,
}

impl Module for DemandModel {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some((_, v)) = ctx.inputs.fresh.last() else {
            return Emission::Silent;
        };
        let deviation = v.as_f64().unwrap_or(0.0);
        // Hotter than forecast → more cooling load (50 MW per °C).
        let corrected =
            self.base_load_mw + 50.0 * deviation.max(0.0) + 20.0 * (-deviation).max(0.0);
        Emission::Broadcast(Value::Float(corrected))
    }

    fn name(&self) -> &str {
        "demand-model"
    }
}

/// Price model: quadratic in corrected demand.
struct PriceModel;

impl Module for PriceModel {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some((_, v)) = ctx.inputs.fresh.last() else {
            return Emission::Silent;
        };
        let demand = v.as_f64().unwrap_or(0.0);
        let price = 30.0 + 0.00002 * demand * demand;
        Emission::Broadcast(Value::Float(price))
    }

    fn name(&self) -> &str {
        "price-model"
    }
}

fn main() {
    let mut b = CorrelatorBuilder::new();
    // Measured temperature: the forecast shape plus noise plus a bias,
    // so violations happen but only occasionally.
    let sensor = b.source("temperature", Diurnal::new(23.0, 7.5, 96, 1.6, 7));
    let checker = b.add(
        "assumption",
        AssumptionChecker {
            tolerance: 1.5,
            phase_in_day: 96,
        },
        &[sensor],
    );
    let demand = b.add(
        "demand",
        DemandModel {
            base_load_mw: 4000.0,
        },
        &[checker],
    );
    let price = b.add("price", PriceModel, &[demand]);

    let mut engine = b.engine().threads(4).build().expect("valid graph");
    let report = engine.run(96 * 7).expect("one simulated week");
    let metrics = &report.metrics;
    let history = report.history.as_ref().expect("history recorded");

    let checks = history.of(checker.vertex()).len();
    let violations = history.of(demand.vertex()).len();
    let reprices = history.sink_outputs_of(price.vertex()).len();
    println!("simulated one week at 15-minute resolution (672 phases)");
    println!("sensor reports:            672 (every phase)");
    println!("assumption checks:         {checks} (once per sensor report)");
    println!("assumption violations:     {violations} (messages to the demand model)");
    println!("price updates:             {reprices}");
    assert!(
        violations > 0,
        "expect some forecast violations over a week"
    );
    println!(
        "\ntotal messages {} vs {} executions — absence of messages did the rest",
        metrics.messages_sent, metrics.executions
    );
    assert!(
        reprices < 672 / 2,
        "price model should run rarely; the absence of violation events is information"
    );
}
