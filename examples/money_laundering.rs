//! Money-laundering detection — the paper's §1 rate argument, measured.
//!
//! "We can construct the anomaly detector module in two ways: (1) the
//! module outputs a message for each input message … or (2) the module
//! outputs a message only when it receives an anomalous transaction. If
//! one in a million transactions is anomalous then the rate of events
//! generated using the second option is only a millionth of that
//! generated using the first option."
//!
//! This example runs the same detection graph both ways over the same
//! transaction stream and prints the message-rate ratio.
//!
//! ```sh
//! cargo run --example money_laundering
//! ```

use event_correlation::core::{densify, Engine, Module, SourceModule};
use event_correlation::events::sources::RandomWalk;
use event_correlation::fusion::operators::anomaly::ZScoreAnomaly;
use event_correlation::fusion::operators::logic::TrueCount;
use event_correlation::fusion::operators::rate::RateMonitor;
use event_correlation::graph::Dag;

const PHASES: u64 = 20_000;

/// Builds the detection graph: three branches of banking activity, an
/// anomaly detector per branch, a cross-branch agreement count, and a
/// case-opening rate monitor.
fn build() -> (Dag, Vec<Box<dyn Module>>) {
    let mut dag = Dag::new();
    let mut modules: Vec<Box<dyn Module>> = Vec::new();

    let mut branch_detectors = Vec::new();
    for i in 0..3u64 {
        let txs = dag.add_vertex(format!("branch{i}-transactions"));
        modules.push(Box::new(SourceModule::new(RandomWalk::new(
            1_000.0,
            25.0,
            100 + i,
        ))));
        let det = dag.add_vertex(format!("branch{i}-anomaly"));
        modules.push(Box::new(ZScoreAnomaly::new(256, 3.6)));
        dag.add_edge(txs, det).unwrap();
        branch_detectors.push(det);
    }
    let agree = dag.add_vertex("branches-flagging");
    modules.push(Box::new(TrueCount::new()));
    for &d in &branch_detectors {
        dag.add_edge(d, agree).unwrap();
    }
    let case = dag.add_vertex("open-case");
    modules.push(Box::new(RateMonitor::new(500, 2)));
    dag.add_edge(agree, case).unwrap();

    (dag, modules)
}

fn main() {
    // Option 2: Δ-dataflow (emit on anomaly only).
    let (dag, modules) = build();
    let mut sparse = Engine::builder(dag, modules)
        .threads(4)
        .record_history(false)
        .build()
        .expect("valid graph");
    let sparse_report = sparse.run(PHASES).expect("sparse run");

    // Option 1: every module reports every phase (densified wrappers).
    let (dag, modules) = build();
    let mut dense = Engine::builder(dag, densify(modules))
        .threads(4)
        .record_history(false)
        .build()
        .expect("valid graph");
    let dense_report = dense.run(PHASES).expect("dense run");

    let s = &sparse_report.metrics;
    let d = &dense_report.metrics;
    // Transactions arrive every phase on every branch regardless of
    // mode; the paper's rate argument is about the messages *between
    // models*, downstream of the anomaly detectors.
    let feed = 3 * PHASES;
    let s_downstream = s.messages_sent - feed;
    let d_downstream = d.messages_sent - feed;
    println!("{PHASES} phases of transactions across 3 branches\n");
    println!("                        change-only (paper)   always-emit (baseline)");
    println!(
        "vertex executions       {:>12}          {:>12}",
        s.executions, d.executions
    );
    println!("transaction feed msgs   {:>12}          {:>12}", feed, feed);
    println!(
        "inter-model messages    {:>12}          {:>12}",
        s_downstream, d_downstream
    );
    println!(
        "silent executions       {:>12}          {:>12}",
        s.silent_executions, d.silent_executions
    );
    let ratio = d_downstream as f64 / s_downstream.max(1) as f64;
    println!(
        "\ninter-model message reduction: {ratio:.0}× fewer messages with change-only \
         emission\n(the paper's 1-in-a-million argument, §1: rare anomalies ⇒ rare messages)"
    );
    assert!(
        ratio > 50.0,
        "change-only emission must send orders of magnitude fewer inter-model messages"
    );
}
