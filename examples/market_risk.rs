//! Financial market risk monitoring — §1's "analyses of stochastic
//! differential equations representing financial systems".
//!
//! Two GBM-driven asset prices feed a rolling correlation monitor and
//! per-asset crash detectors; a regime tracker clusters the correlation
//! level. The composite condition "both assets crashing while highly
//! correlated" is the kind of multi-stream predicate the paper's fusion
//! engine exists to evaluate.
//!
//! ```sh
//! cargo run --example market_risk
//! ```

use event_correlation::fusion::models::GbmMarket;
use event_correlation::fusion::operators::arith::Arith;
use event_correlation::fusion::prelude::*;

fn main() {
    let mut b = CorrelatorBuilder::new();

    // Two assets with a common drift regime (same sigma, different seeds).
    let asset_a = b.source("asset-a", GbmMarket::new(100.0, 0.0002, 0.01, 11));
    let asset_b = b.source("asset-b", GbmMarket::new(250.0, 0.0002, 0.012, 12));

    // Sector index: the sum of both prices. Each asset is then
    // correlated against the sector it belongs to.
    let sector = b.add("sector-index", Arith::add(), &[asset_a, asset_b]);
    let smooth_a = b.add("smooth-a", EwmaSmoother::new(0.2), &[asset_a]);
    let shock_a = b.add("shock-a", ZScoreAnomaly::new(48, 2.2), &[asset_a]);
    let shock_b = b.add("shock-b", ZScoreAnomaly::new(48, 2.2), &[asset_b]);

    // Asset-to-sector correlation over a rolling window.
    let correlation = b.add("correlation", PairCorrelation::new(48), &[smooth_a, sector]);
    let coupled = b.add("tightly-coupled", Threshold::above(0.8), &[correlation]);

    // Composite risk condition: shocks on both assets within 8 ticks.
    let joint_shock = b.add("joint-shock", CoincidenceJoin::new(8), &[shock_a, shock_b]);
    let systemic = b.add("systemic-risk", AllOf::new(), &[coupled, joint_shock]);

    let mut engine = b.engine().threads(4).build().expect("valid graph");
    let report = engine.run(2_000).expect("trading session");
    let history = report.history.expect("history recorded");

    println!("2,000 ticks, 2 assets, 10-node risk graph, 4 threads\n");
    // Interior conditions are read from their emission logs; the final
    // systemic-risk sink from the external outputs.
    use event_correlation::core::RecordedEmission;
    for (label, handle) in [
        ("correlation regime", coupled),
        ("joint shocks      ", joint_shock),
    ] {
        let changes: Vec<_> = history
            .of(handle.vertex())
            .iter()
            .filter(|(_, e)| !matches!(e, RecordedEmission::Silent))
            .collect();
        print!("{label}: {} state change(s)", changes.len());
        if let Some((phase, RecordedEmission::Broadcast(v))) = changes.last() {
            print!(" (latest: phase {phase} → {v})");
        }
        println!();
    }
    let outs = history.sink_outputs_of(systemic.vertex());
    print!("SYSTEMIC RISK     : {} state change(s)", outs.len());
    if let Some((phase, value)) = outs.last() {
        print!(" (latest: phase {phase} → {value})");
    }
    println!();
    println!(
        "\nengine: {} executions, {} messages, {} silent — risk conditions \
         are evaluated continuously but reported only on change",
        report.metrics.executions, report.metrics.messages_sent, report.metrics.silent_executions
    );
}
