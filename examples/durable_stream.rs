//! Durable streaming: survive a crash, resume at the exact next phase.
//!
//! A fraud-watch correlator ingests transaction amounts. The runtime is
//! durable: every sealed epoch is committed to a write-ahead log before
//! it runs, and operator state is snapshotted every few phases. Halfway
//! through the stream the process "crashes" (the runtime is dropped
//! without shutdown — no final seal, no goodbye). A second incarnation
//! restores from the store, replays the log tail through the engine,
//! and continues ingesting as if nothing happened.
//!
//! The punchline is the paper's serializability guarantee *extended
//! across the restart*: replaying the full committed script through the
//! sequential oracle reproduces exactly the history the two
//! incarnations produced between them.
//!
//! ```sh
//! cargo run --release --example durable_stream
//! ```

use event_correlation::core::ExecutionHistory;
use event_correlation::events::Value;
use event_correlation::fusion::prelude::*;
use event_correlation::runtime::StreamRuntimeBuilder;
use event_correlation::store::Recovery;

/// The correlator: amounts → running mean(4) → anomaly threshold.
/// (Every operator supports state snapshots.)
fn fraud_watch() -> StreamRuntimeBuilder {
    let mut b = StreamRuntimeBuilder::new();
    let tx = b.live_source("tx");
    let avg = b.add("avg", MovingAverage::new(4), &[tx]);
    let _alarm = b.add("alarm", Threshold::above(250.0), &[avg]);
    b.threads(2)
}

fn main() {
    let store = std::env::temp_dir().join(format!("ec-durable-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // A day of transactions; the spike around index 12 trips the alarm.
    let amounts: Vec<f64> = vec![
        40.0, 90.0, 55.0, 70.0, 120.0, 80.0, 60.0, 95.0, 300.0, 450.0, 720.0, 510.0, 980.0, 210.0,
        90.0, 75.0, 50.0, 45.0, 60.0, 55.0,
    ];
    let crash_after = 11usize;

    // ── First incarnation: durable, snapshotting every 4 phases ──────
    println!("first incarnation: ingesting {crash_after} transactions…");
    {
        let rt = fraud_watch()
            .durable(&store)
            .snapshot_every(4)
            .subscribe(|e| println!("  [phase {:>2}] {} = {}", e.phase, e.name, e.value))
            .build()
            .expect("fresh durable runtime");
        let tx = rt.handle_by_name("tx").unwrap();
        for amount in &amounts[..crash_after] {
            tx.push(*amount).unwrap();
            rt.flush().unwrap(); // one phase per transaction
        }
        println!("…crash! (runtime dropped without shutdown)\n");
        drop(rt);
    }

    // ── What survived on disk ────────────────────────────────────────
    let rec = Recovery::open(&store).expect("store opens");
    let committed = rec.committed_phases();
    let base = rec.snapshot_phase();
    println!(
        "store: {committed} committed phases, snapshot at phase {base}, \
         {} tail row(s) to replay, resumable at phase {}",
        rec.tail_rows().len(),
        rec.resume_phase()
    );
    drop(rec);

    // ── Second incarnation: restore and continue ─────────────────────
    let rt = fraud_watch()
        .durable(&store)
        .snapshot_every(4)
        .subscribe(|e| println!("  [phase {:>2}] {} = {}", e.phase, e.name, e.value))
        .restore()
        .expect("restore");
    assert_eq!(rt.admitted(), committed, "resumes at the exact next phase");
    println!("restored: continuing at phase {}…", committed + 1);
    let tx = rt.handle_by_name("tx").unwrap();
    for amount in &amounts[crash_after..] {
        tx.push(*amount).unwrap();
        rt.flush().unwrap();
    }
    let report = rt.shutdown().expect("clean shutdown");
    println!(
        "\nstitched run: {} phases total ({} before the crash, {} after)",
        report.script.phases(),
        committed,
        report.script.phases() - committed
    );

    // ── The oracle check: serializability across the restart ─────────
    // Replay the full committed script through the uninterrupted
    // sequential oracle; the restored run's history must equal its
    // tail record-for-record.
    let mut oracle = CorrelatorBuilder::new();
    let tx = oracle.source("tx", report.script.replay(0));
    let avg = oracle.add("avg", MovingAverage::new(4), &[tx]);
    let _alarm = oracle.add("alarm", Threshold::above(250.0), &[avg]);
    let mut seq = oracle.sequential().unwrap();
    seq.run(report.script.phases()).unwrap();
    let full: ExecutionHistory = seq.into_history();

    let live = report.history.expect("history recorded");
    for vi in 0..full.vertex_count() {
        let v = event_correlation::graph::VertexId(vi as u32);
        let want: Vec<_> = full.of(v).iter().filter(|(p, _)| p.get() > base).collect();
        let got: Vec<_> = live.of(v).iter().collect();
        assert_eq!(want.len(), got.len(), "{v:?} execution counts diverge");
        for ((wp, we), (gp, ge)) in want.iter().zip(&got) {
            assert!(wp == gp && we.same_as(ge), "{v:?} diverges at {wp:?}");
        }
    }
    println!("oracle check passed: restart-stitched history ≡ uninterrupted sequential run");

    // The alarm's full story, reconstructed from the durable script.
    let alarm_story: Vec<(u64, Value)> = full
        .sink_outputs()
        .iter()
        .map(|r| (r.phase.get(), r.value.clone()))
        .collect();
    println!("alarm state changes over the whole (stitched) run: {alarm_story:?}");

    let _ = std::fs::remove_dir_all(&store);
}
