//! The paper's §6 future work, implemented: multi-machine partitioning
//! and imperfect timestamps.
//!
//! Part 1 — "methods for partitioning the computation graph across
//! multiple machines": partition a fusion graph onto simulated
//! machines, compare the network traffic of a balanced split against a
//! cut-minimising split, and verify both stay serializable.
//!
//! Part 2 — "clocks in sensors are noisy and message delays may be
//! significant and random. The fusion engine must wait long enough
//! after time t": push randomly delayed events through a watermark
//! reorder buffer at several wait settings and report the
//! false-negative (late event) rate for each.
//!
//! ```sh
//! cargo run --example future_work
//! ```

use event_correlation::core::{DistributedSim, Module, PassThrough, Sequential, SourceModule};
use event_correlation::events::reorder::{DelayModel, ReorderBuffer};
use event_correlation::events::sources::Counter;
use event_correlation::events::{Timestamp, Value};
use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::graph::{generators, partition_balanced, partition_min_cut, Numbering};

fn modules(dag: &event_correlation::graph::Dag) -> Vec<Box<dyn Module>> {
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(SourceModule::new(Counter::new()))
            } else if dag.is_sink(v) {
                Box::new(PassThrough)
            } else {
                Box::new(Aggregate::sum())
            }
        })
        .collect()
}

fn part1_partitioning() {
    println!("== Part 1: partitioning across machines (§6) ==");
    let dag = generators::layered(6, 4, 2, 99);
    let numbering = Numbering::compute(&dag);

    let mut oracle = Sequential::new(&dag, modules(&dag)).unwrap();
    oracle.run(50).unwrap();
    let oracle_history = oracle.into_history();

    for (label, partition) in [
        ("balanced ", partition_balanced(&dag, &numbering, 3)),
        ("min-cut  ", partition_min_cut(&dag, &numbering, 3, 0.5)),
    ] {
        let quality = partition.quality(&dag);
        let mut sim = DistributedSim::new(&dag, modules(&dag), &partition).unwrap();
        sim.run(50).unwrap();
        assert_eq!(oracle_history.equivalent(&sim.history()), Ok(()));
        println!(
            "  {label} 3 machines: edge cut {:>2}, imbalance {:.2}, \
             remote messages {:>4}, local {:>4}  (serializable ✓)",
            quality.edge_cut,
            quality.imbalance,
            sim.remote_messages(),
            sim.local_messages()
        );
    }
}

fn part2_watermarks() {
    println!("\n== Part 2: noisy delivery and watermarks (§6) ==");
    // Sensors report every 100 µs; network delay is uniform 0–500 µs.
    // Sweep the engine's wait and measure the late-event rate.
    for wait in [100u64, 250, 500, 750] {
        let mut model = DelayModel::uniform(0, 500, 7);
        let mut buf = ReorderBuffer::new(wait);
        let mut deliveries: Vec<_> = (0..2_000u64)
            .map(|i| model.deliver(Timestamp(i * 100), Value::Int(i as i64)))
            .collect();
        deliveries.sort_by_key(|e| e.arrival);
        let mut phases = 0usize;
        for e in deliveries {
            phases += buf.advance(e.arrival).len();
            buf.offer(e.generated, e.value);
        }
        phases += buf.flush().len();
        println!(
            "  wait {wait:>3} µs: {phases:>4} phases closed, \
             late-event rate {:.3} (potential false negatives)",
            buf.late_fraction()
        );
    }
    println!("  → waiting past the maximum delay eliminates late events;");
    println!("    shorter waits trade correctness for latency, as §6 anticipates.");
}

fn main() {
    part1_partitioning();
    part2_watermarks();
}
