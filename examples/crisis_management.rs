//! Crisis management — the hurricane scenario of §1.
//!
//! "Dealing with hurricanes requires tracking the hurricanes … monitoring
//! the capacities of shelters and hospitals, monitoring flood levels and
//! road conditions … People in different roles in an organization may be
//! concerned about different threats: public health workers are
//! concerned about issues such as hospital occupancy and blood supply;
//! electric utilities … about how best to deploy their repair crews."
//!
//! One computation graph serves both roles: shared sensor sources fan
//! into role-specific condition sinks. The example also prints the
//! pipelining metrics — the Figure 1 behaviour — because the deep fusion
//! graph lets the engine run many phases concurrently.
//!
//! ```sh
//! cargo run --example crisis_management
//! ```

use event_correlation::events::sources::{Bursty, RandomWalk};
use event_correlation::fusion::prelude::*;

fn main() {
    let mut b = CorrelatorBuilder::new();

    // Shared situational sensors.
    let flood = b.source("flood-level", RandomWalk::new(1.0, 0.15, 1));
    let hospital = b.source("hospital-occupancy", RandomWalk::new(0.65, 0.02, 2));
    let shelter = b.source("shelter-occupancy", RandomWalk::new(0.4, 0.03, 3));
    let outages = b.source("outage-reports", Bursty::new(0.8, 4));
    let roads = b.source("road-closures", Bursty::new(0.3, 5));

    // Smoothing layer.
    let flood_avg = b.add("flood-avg", MovingAverage::new(12), &[flood]);
    let hosp_avg = b.add("hosp-avg", MovingAverage::new(24), &[hospital]);
    let shel_avg = b.add("shel-avg", MovingAverage::new(24), &[shelter]);
    let outage_rate = b.add("outage-rate", RateMonitor::new(24, 12), &[outages]);
    let road_rate = b.add("road-rate", RateMonitor::new(24, 6), &[roads]);

    // Condition layer.
    let flooding = b.add("flooding", Threshold::above(2.0), &[flood_avg]);
    let hosp_full = b.add("hospitals-strained", Threshold::above(0.85), &[hosp_avg]);
    let shel_full = b.add("shelters-strained", Threshold::above(0.8), &[shel_avg]);

    // Role-specific composite sinks.
    let health_alert = b.add("public-health-alert", AnyOf::new(), &[hosp_full, shel_full]);
    let utility_alert = b.add("utility-dispatch", AllOf::new(), &[outage_rate, road_rate]);
    let mayor_brief = b.add(
        "mayor-briefing",
        TrueCount::new(),
        &[flooding, hosp_full, shel_full, outage_rate, road_rate],
    );

    let mut engine = b
        .engine()
        .threads(4)
        .max_inflight(32)
        .build()
        .expect("valid graph");
    let report = engine.run(24 * 14).expect("two simulated weeks"); // hourly phases
    let h = report.history.expect("history recorded");

    println!("two weeks of hourly phases, 16-node fusion graph, 4 threads\n");
    for (label, handle) in [
        ("public-health alerts", health_alert),
        ("utility dispatch    ", utility_alert),
        ("mayor briefing      ", mayor_brief),
    ] {
        let outs = h.sink_outputs_of(handle.vertex());
        println!("{label}: {} state changes", outs.len());
        for (phase, value) in outs.iter().take(6) {
            println!("    hour {phase:>4}: {value}");
        }
    }

    println!("\npipelining (Figure 1 behaviour):");
    println!(
        "  max concurrent phases: {}",
        report.metrics.max_concurrent_phases
    );
    println!(
        "  mean concurrent phases: {:.2}",
        report.metrics.mean_concurrent_phases()
    );
    println!(
        "  executions: {}, messages: {}",
        report.metrics.executions, report.metrics.messages_sent
    );
}
