//! The observability plane, end to end: a runtime with the flight
//! recorder and a live Prometheus `/metrics` endpoint switched on,
//! pushed hard for a few seconds while you watch from outside.
//!
//! ```text
//! cargo run --release --example observability
//! # in another terminal, while it runs:
//! curl http://127.0.0.1:9184/metrics
//! cargo run --bin ec -- top 127.0.0.1:9184 --once
//! ```
//!
//! Environment knobs (CI's observability-smoke job drives both):
//!
//! * `EC_METRICS_ADDR` — endpoint bind address, default
//!   `127.0.0.1:9184` (use port 0 for an ephemeral port; the actual
//!   address is printed either way);
//! * `EC_OBS_SECONDS` — how long to keep pushing, default 6;
//! * `EC_TRACE_OUT` — where to write the Chrome trace, default
//!   `obs_trace.json`.

use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::fusion::operators::moving::MovingAverage;
use event_correlation::fusion::operators::threshold::Threshold;
use event_correlation::obs::validate_chrome_trace;
use event_correlation::runtime::{EpochPolicy, StreamRuntimeBuilder};
use std::time::{Duration, Instant};

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let addr = env_or("EC_METRICS_ADDR", "127.0.0.1:9184");
    let seconds: u64 = env_or("EC_OBS_SECONDS", "6")
        .parse()
        .expect("EC_OBS_SECONDS");
    let trace_out = env_or("EC_TRACE_OUT", "obs_trace.json");

    let mut b = StreamRuntimeBuilder::new()
        .threads(4)
        .epoch_policy(EpochPolicy::ByCount(64))
        .record_history(false)
        .record_script(false)
        .max_inflight(64)
        .flight_recorder(8192)
        .metrics_addr(&addr);
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(8), &[sum]);
    let _alarm = b.add("alarm", Threshold::above(900.0), &[avg]);
    let rt = b.build().expect("runtime builds");

    // CI greps this exact line for the bound address.
    let bound = rt.metrics_addr().expect("endpoint bound");
    println!("metrics endpoint: http://{bound}/metrics");
    println!("pushing for {seconds}s — scrape it live or run `ec top {bound}`");

    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut i: u64 = 0;
    while Instant::now() < deadline {
        let h = if i.is_multiple_of(2) { &s1 } else { &s2 };
        h.push((i % 1000) as f64).expect("push accepted");
        i += 1;
        if i.is_multiple_of(4096) {
            // Brief pauses keep the run long enough to scrape mid-flight.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    rt.flush().expect("flush");
    rt.wait_idle().expect("idle");

    let m = rt.metrics();
    println!(
        "pushed {i} events: {} phases completed, {} executions, {} epoch seals",
        m.phases_completed, m.executions, m.ingest.seal_batches
    );
    println!(
        "phase latency p50/p95/p99: {}us / {}us / {}us over {} phases",
        m.latency.phase.p50() / 1_000,
        m.latency.phase.p95() / 1_000,
        m.latency.phase.p99() / 1_000,
        m.latency.phase.count()
    );

    let trace = rt.dump_trace().expect("recorder attached");
    let events = validate_chrome_trace(&trace).expect("well-formed chrome trace");
    std::fs::write(&trace_out, &trace).expect("write trace");
    println!("trace: {events} events -> {trace_out} (open chrome://tracing)");

    rt.shutdown().expect("clean shutdown");
    println!("done");
}
