//! Spec-driven execution — the paper's XML input format (§4).
//!
//! "The prototype implementation takes as input an XML specification
//! file for a computation, which includes a specification of the
//! computation graph … [and] simulation parameters, such as the number
//! of timesteps to run and random seeds."
//!
//! Pass a spec file path, or run without arguments to use the built-in
//! intrusion-detection spec below.
//!
//! ```sh
//! cargo run --example spec_driven [path/to/spec.xml]
//! ```

const INTRUSION_SPEC: &str = r#"<?xml version="1.0"?>
<!-- Intrusion detection: correlate network anomalies with badge-reader
     anomalies; raise an incident when both fire close together. -->
<computation phases="5000" threads="4" max-inflight="32">
  <node id="net-traffic"   type="random-walk" start="100" step="4" seed="11"/>
  <node id="badge-events"  type="random-walk" start="10"  step="1" seed="12"/>

  <node id="net-anomaly"   type="zscore-anomaly" window="128" z="3.5">
    <input ref="net-traffic"/>
  </node>
  <node id="badge-anomaly" type="zscore-anomaly" window="128" z="3.5">
    <input ref="badge-events"/>
  </node>

  <node id="incident" type="coincidence-join" window="16">
    <input ref="net-anomaly"/>
    <input ref="badge-anomaly"/>
  </node>
</computation>"#;

fn main() {
    let loaded = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading spec from {path}");
            event_correlation::spec::load_file(&path).expect("spec file loads")
        }
        None => {
            println!("using built-in intrusion-detection spec");
            event_correlation::spec::load_str(INTRUSION_SPEC).expect("built-in spec loads")
        }
    };

    let phases = loaded.settings.phases;
    let handles: Vec<(String, _)> = loaded
        .handles
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();

    let mut engine = loaded.engine().build().expect("engine builds");
    let report = engine.run(phases).expect("run succeeds");
    let history = report.history.expect("history recorded");

    println!(
        "\nran {phases} phases: {} executions, {} messages, {} silent",
        report.metrics.executions, report.metrics.messages_sent, report.metrics.silent_executions
    );
    println!(
        "pipelining: max {} / mean {:.2} concurrent phases\n",
        report.metrics.max_concurrent_phases,
        report.metrics.mean_concurrent_phases()
    );

    let mut sorted = handles;
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (id, handle) in sorted {
        let outs = history.sink_outputs_of(handle.vertex());
        if !outs.is_empty() {
            println!("node {id:?} external outputs: {}", outs.len());
            for (phase, value) in outs.iter().take(5) {
                println!("    phase {phase}: {value}");
            }
        }
    }
}
