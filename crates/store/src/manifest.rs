//! The segment manifest: which WAL segments are live, in what order,
//! and how much history was compacted away before the first one.
//!
//! A segmented store keeps exactly one *authoritative* manifest —
//! `wal/manifest-<gen>.ecm`, where `gen` increases monotonically on
//! every rotation and compaction. Manifests are immutable once named:
//! a new generation is written to a temp file, fsynced and renamed into
//! place *before* anything it references is touched, then the old
//! generation is removed best-effort. Recovery takes the highest
//! generation that parses, so a crash between the rename and the
//! removal merely leaves a stale older manifest behind — never an
//! inconsistent view.
//!
//! Each entry records a segment's sequence number and `first_row`, the
//! absolute number of committed rows preceding it. `first_row` of the
//! first entry is the store's *base*: rows `0..base` were compacted
//! away and are covered by a snapshot at or beyond that phase.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::io::StoreIo;
use ec_events::{StateReader, StateWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST_MAGIC: &[u8; 8] = b"ECMANI1\0";
const MANIFEST_VERSION: u32 = 1;

/// One live segment, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Monotonic segment sequence number (names `seg-<seq>.log`).
    pub seq: u64,
    /// Absolute committed rows preceding this segment.
    pub first_row: u64,
}

/// Path of the manifest at generation `gen` inside `dir`'s WAL
/// directory. Generations are zero-padded so lexicographic order is
/// generation order.
pub(crate) fn manifest_path(dir: &Path, gen: u64) -> PathBuf {
    crate::wal::wal_dir(dir).join(format!("manifest-{gen:020}.ecm"))
}

/// Encodes a manifest body (entries only; framing is added around it).
fn encode(entries: &[SegmentEntry]) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u32(MANIFEST_VERSION);
    w.put_u32(entries.len() as u32);
    for e in entries {
        w.put_u64(e.seq);
        w.put_u64(e.first_row);
    }
    let payload = w.into_bytes();
    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Parses manifest bytes.
pub(crate) fn decode(path: &Path, bytes: &[u8]) -> Result<Vec<SegmentEntry>, StoreError> {
    if bytes.len() < 16 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(StoreError::corrupt(path, "bad manifest magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != 16 + len {
        return Err(StoreError::corrupt(
            path,
            format!("payload length {} != declared {len}", bytes.len() - 16),
        ));
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Err(StoreError::corrupt(path, "checksum mismatch"));
    }
    let mut r = StateReader::new(payload);
    let version = r.get_u32()?;
    if version != MANIFEST_VERSION {
        return Err(StoreError::corrupt(
            path,
            format!("unsupported manifest version {version}"),
        ));
    }
    let n = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let seq = r.get_u64()?;
        let first_row = r.get_u64()?;
        entries.push(SegmentEntry { seq, first_row });
    }
    r.finish()?;
    if entries.is_empty() {
        return Err(StoreError::corrupt(path, "manifest lists no segments"));
    }
    for pair in entries.windows(2) {
        if pair[1].seq <= pair[0].seq || pair[1].first_row < pair[0].first_row {
            return Err(StoreError::corrupt(path, "manifest entries out of order"));
        }
    }
    Ok(entries)
}

/// Lists manifest generations in `dir`, ascending. Malformed names are
/// skipped; a missing WAL directory is an empty list.
pub(crate) fn list_manifests(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let wal_dir = crate::wal::wal_dir(dir);
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(&wal_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io(&wal_dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(&wal_dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("manifest-")
            .and_then(|rest| rest.strip_suffix(".ecm"))
        else {
            continue;
        };
        if let Ok(gen) = stem.parse::<u64>() {
            out.push((gen, entry.path()));
        }
    }
    out.sort_by_key(|(gen, _)| *gen);
    Ok(out)
}

/// Writes generation `gen` atomically (temp file, fsync, rename). The
/// previous generation is untouched; callers remove it best-effort
/// *after* this returns.
pub(crate) fn write_manifest(
    dir: &Path,
    gen: u64,
    entries: &[SegmentEntry],
    io: &Arc<dyn StoreIo>,
) -> Result<PathBuf, StoreError> {
    let path = manifest_path(dir, gen);
    let tmp = path.with_extension("ecm.tmp");
    // Debris from an earlier crashed attempt at this same generation.
    crate::io::scrub(&tmp);
    let bytes = encode(entries);
    {
        let mut file = io.open(&tmp, true).map_err(|e| StoreError::io(&tmp, e))?;
        file.append(&bytes).map_err(|e| StoreError::io(&tmp, e))?;
        file.fsync().map_err(|e| StoreError::io(&tmp, e))?;
    }
    io.rename(&tmp, &path)
        .map_err(|e| StoreError::io(&path, e))?;
    Ok(path)
}

/// Loads the authoritative manifest: the highest generation that
/// parses. Unparseable newer generations are reported in `skipped`
/// (they can only be bit-rot — generations are written atomically).
/// Returns `None` if no manifest exists at all.
#[allow(clippy::type_complexity)]
pub(crate) fn load_latest(
    dir: &Path,
) -> Result<Option<(u64, Vec<SegmentEntry>, Vec<(PathBuf, String)>)>, StoreError> {
    let mut skipped = Vec::new();
    for (gen, path) in list_manifests(dir)?.into_iter().rev() {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                skipped.push((path, e.to_string()));
                continue;
            }
        };
        match decode(&path, &bytes) {
            Ok(entries) => return Ok(Some((gen, entries, skipped))),
            Err(e) => skipped.push((path, e.to_string())),
        }
    }
    if skipped.is_empty() {
        Ok(None)
    } else {
        // Manifests exist but none parse: the store is present and
        // damaged, not absent.
        let (path, message) = skipped.into_iter().next_back().unwrap();
        Err(StoreError::corrupt(
            path,
            format!("no parseable manifest generation ({message})"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::real_io;
    use crate::test_dir;

    fn entries() -> Vec<SegmentEntry> {
        vec![
            SegmentEntry {
                seq: 3,
                first_row: 10,
            },
            SegmentEntry {
                seq: 4,
                first_row: 25,
            },
        ]
    }

    #[test]
    fn round_trips_and_picks_highest_generation() {
        let dir = test_dir("manifest-roundtrip");
        std::fs::create_dir_all(crate::wal::wal_dir(&dir)).unwrap();
        let io = real_io();
        write_manifest(
            &dir,
            1,
            &[SegmentEntry {
                seq: 1,
                first_row: 0,
            }],
            &io,
        )
        .unwrap();
        write_manifest(&dir, 2, &entries(), &io).unwrap();
        let (gen, got, skipped) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(gen, 2);
        assert_eq!(got, entries());
        assert!(skipped.is_empty());
    }

    #[test]
    fn damaged_generation_falls_back_to_older() {
        let dir = test_dir("manifest-fallback");
        std::fs::create_dir_all(crate::wal::wal_dir(&dir)).unwrap();
        let io = real_io();
        write_manifest(&dir, 5, &entries(), &io).unwrap();
        let newer = write_manifest(&dir, 6, &entries(), &io).unwrap();
        let mut bytes = std::fs::read(&newer).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&newer, &bytes).unwrap();
        let (gen, _, skipped) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(gen, 5);
        assert_eq!(skipped.len(), 1);
    }

    #[test]
    fn all_generations_damaged_is_corrupt_not_absent() {
        let dir = test_dir("manifest-allbad");
        std::fs::create_dir_all(crate::wal::wal_dir(&dir)).unwrap();
        let io = real_io();
        let path = write_manifest(&dir, 1, &entries(), &io).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(load_latest(&dir), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn missing_wal_dir_is_none() {
        let dir = test_dir("manifest-missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
    }

    #[test]
    fn rejects_disordered_entries() {
        let dir = test_dir("manifest-order");
        std::fs::create_dir_all(crate::wal::wal_dir(&dir)).unwrap();
        let io = real_io();
        let bad = vec![
            SegmentEntry {
                seq: 4,
                first_row: 9,
            },
            SegmentEntry {
                seq: 3,
                first_row: 2,
            },
        ];
        let path = write_manifest(&dir, 1, &bad, &io).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(decode(&path, &bytes).is_err());
    }
}
