//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every WAL record and snapshot file carries a CRC so recovery can
//! distinguish "the process died mid-write" (torn tail, dropped) from
//! "the bytes rotted" (checksum mismatch, reported). The standard
//! reflected polynomial `0xEDB88320` matches what `crc32fast`/zlib
//! compute, so files remain checkable with external tooling.

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"correlate");
        let mut flipped = b"correlate".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
