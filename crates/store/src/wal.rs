//! The write-ahead log of committed phase-script rows.
//!
//! One file (`wal.log`) per store directory. The first record is a
//! header naming the live sources (the script's column order); every
//! subsequent record is one committed row — the bins staged for one
//! admitted phase, exactly the unit the streaming runtime commits when
//! it seals an epoch. Appending the row *before* the phase is admitted
//! makes the log the authoritative commit: a phase the outside world
//! saw accepted is never lost to a crash.
//!
//! ## Framing
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! `payload[0]` is the record kind (header / row); the rest is encoded
//! with the [`StateWriter`] codec. Recovery reads records until the
//! file ends or a record fails validation:
//!
//! * bytes missing to complete the record → **torn tail** (the process
//!   died mid-append); the partial record is dropped, recovery
//!   proceeds with the valid prefix;
//! * full record present but checksum or decode fails → **corruption**;
//!   the valid prefix is still returned, with the damage reported so
//!   callers can refuse or alert.

use crate::crc::crc32;
use crate::error::StoreError;
use ec_events::{StateReader, StateWriter, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One committed phase-script row: one bin per live source, in wiring
/// order (`None` = the source was silent that phase).
pub type Row = Vec<Option<Value>>;

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

const KIND_HEADER: u8 = 0;
const KIND_ROW: u8 = 1;
const WAL_MAGIC: &[u8; 6] = b"ECWAL1";
/// Upper bound on a single record; lengths beyond this are treated as
/// corruption rather than attempted as allocations.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Path of the WAL inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn encode_header(sources: &[String]) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u8(KIND_HEADER);
    for &b in WAL_MAGIC {
        w.put_u8(b);
    }
    w.put_u32(1); // format version
    w.put_u32(sources.len() as u32);
    for s in sources {
        w.put_str(s);
    }
    w.into_bytes()
}

/// Append half of the log, with group commit: rows are staged into an
/// in-memory buffer ([`stage_row`](WalWriter::stage_row)) and flushed
/// to the OS in one contiguous `write_all` per
/// [`commit`](WalWriter::commit) — one syscall per sealed epoch instead
/// of one per row. The on-disk framing is unchanged (byte-compatible
/// with per-row appends), so existing stores recover identically.
pub struct WalWriter {
    path: PathBuf,
    file: File,
    rows: u64,
    /// Frames staged since the last commit.
    buf: Vec<u8>,
    staged_rows: u64,
    /// `Some(n)`: fsync automatically once `n` committed rows have
    /// accumulated since the last sync. `None`: sync only on explicit
    /// [`sync`](WalWriter::sync) calls (checkpoint/shutdown).
    sync_every: Option<u64>,
    rows_since_sync: u64,
    /// Reusable row-payload encoding buffer: staging a row is an
    /// in-place encode plus one memcpy into `buf`, no allocation.
    scratch: Vec<u8>,
    /// Wall-clock duration of the most recent non-empty
    /// [`commit`](WalWriter::commit), including any automatic fsync.
    last_commit_nanos: u64,
}

impl WalWriter {
    /// Creates a fresh store: the directory (if missing) and a new WAL
    /// whose header names the live sources. Fails with
    /// [`StoreError::AlreadyExists`] if a WAL — or any leftover
    /// snapshot file — is already present: an existing store is
    /// restored, never silently overwritten, and a stale snapshot next
    /// to a fresh log would later restore the *old* run's operator
    /// state over the new run's history.
    pub fn create(dir: &Path, sources: &[String]) -> Result<WalWriter, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        if let Some((_, stale)) = crate::snapshot::list_snapshots(dir)?.into_iter().next() {
            return Err(StoreError::AlreadyExists(stale));
        }
        let path = wal_path(dir);
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    StoreError::AlreadyExists(path.clone())
                } else {
                    StoreError::io(&path, e)
                }
            })?;
        file.write_all(&frame(&encode_header(sources)))
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(WalWriter {
            path,
            file,
            rows: 0,
            buf: Vec::new(),
            staged_rows: 0,
            sync_every: None,
            rows_since_sync: 0,
            scratch: Vec::new(),
            last_commit_nanos: 0,
        })
    }

    /// Reopens an existing WAL for appending after recovery.
    ///
    /// `valid_len` is the byte length of the validated prefix (from
    /// [`read_wal`](crate::read_wal)); anything beyond it — a torn tail
    /// — is truncated away so new appends start on a record boundary.
    /// `rows` is the number of valid rows in that prefix.
    pub fn resume(dir: &Path, valid_len: u64, rows: u64) -> Result<WalWriter, StoreError> {
        let path = wal_path(dir);
        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        file.set_len(valid_len)
            .map_err(|e| StoreError::io(&path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(WalWriter {
            path,
            file,
            rows,
            buf: Vec::new(),
            staged_rows: 0,
            sync_every: None,
            rows_since_sync: 0,
            scratch: Vec::new(),
            last_commit_nanos: 0,
        })
    }

    /// Configures the automatic fsync interval: force the log to stable
    /// storage once `rows` committed rows have accumulated since the
    /// last sync. `None` (the default) syncs only on explicit
    /// [`sync`](Self::sync) calls.
    pub fn set_sync_every(&mut self, rows: Option<u64>) {
        self.sync_every = rows;
    }

    /// Stages one committed row into the group-commit buffer. Purely
    /// in-memory and infallible; nothing reaches the file until
    /// [`commit`](Self::commit).
    pub fn stage_row(&mut self, row: &[Option<Value>]) {
        self.stage_row_bins(row.iter().map(Option::as_ref));
    }

    /// Like [`stage_row`](Self::stage_row), but over borrowed bins — the
    /// shape a columnar seal holds (bin `r` of each source's shared
    /// epoch column). The payload is encoded into a recycled scratch
    /// buffer and memcpy'd after its frame header: staging allocates
    /// nothing in steady state and the on-disk bytes are identical to
    /// [`stage_row`](Self::stage_row)'s.
    pub fn stage_row_bins<'a>(&mut self, bins: impl ExactSizeIterator<Item = Option<&'a Value>>) {
        let mut w = StateWriter::reuse(std::mem::take(&mut self.scratch));
        w.put_u8(KIND_ROW);
        w.put_u32(bins.len() as u32);
        for bin in bins {
            w.put_bin(bin);
        }
        let payload = w.into_bytes();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.scratch = payload;
        self.staged_rows += 1;
    }

    /// Rows staged and not yet committed.
    pub fn staged(&self) -> u64 {
        self.staged_rows
    }

    /// Commits every staged row in one contiguous `write_all`: the
    /// whole batch reaches the OS before this returns (surviving a
    /// process kill). Returns the number of rows committed. On error
    /// the staged buffer is dropped — the file may hold a prefix of the
    /// batch, which recovery treats as a torn tail.
    pub fn commit(&mut self) -> Result<u64, StoreError> {
        if self.buf.is_empty() {
            return Ok(0);
        }
        let start = std::time::Instant::now();
        let batch = self.staged_rows;
        let result = self
            .file
            .write_all(&self.buf)
            .map_err(|e| StoreError::io(&self.path, e));
        self.buf.clear();
        self.staged_rows = 0;
        result?;
        self.rows += batch;
        if let Some(every) = self.sync_every {
            self.rows_since_sync += batch;
            if self.rows_since_sync >= every {
                self.sync()?;
            }
        }
        self.last_commit_nanos = start.elapsed().as_nanos() as u64;
        Ok(batch)
    }

    /// Nanoseconds the most recent non-empty [`commit`](Self::commit)
    /// spent in `write_all` (plus any automatic fsync it triggered).
    /// `0` until the first commit. Timed here — at the syscall — so
    /// callers get the true group-commit latency without wrapping the
    /// call site.
    pub fn last_commit_nanos(&self) -> u64 {
        self.last_commit_nanos
    }

    /// Appends one committed row and flushes it to the OS immediately
    /// (a one-row group commit). Call [`sync`](Self::sync) to force it
    /// to the device.
    pub fn append_row(&mut self, row: &[Option<Value>]) -> Result<(), StoreError> {
        self.stage_row(row);
        self.commit()?;
        Ok(())
    }

    /// Rows committed through this writer plus any it resumed over.
    /// Staged-but-uncommitted rows are not counted.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Forces everything committed to stable storage (`fsync`). Staged
    /// rows are *not* implicitly committed — stage/commit boundaries
    /// belong to the caller.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.rows_since_sync = 0;
        Ok(())
    }
}

impl Drop for WalWriter {
    /// Best-effort flush of staged rows: a writer dropped mid-epoch
    /// (e.g. unwinding) should not silently lose frames it could still
    /// hand to the OS. Errors are ignored — the crash-recovery contract
    /// only covers rows whose `commit` returned.
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            let _ = self.file.write_all(&self.buf);
        }
    }
}

/// How the end of the log looked during a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belonged to a valid record.
    Clean,
    /// The final record was incomplete (crash mid-append); its bytes
    /// were dropped.
    Torn {
        /// Bytes discarded after the last valid record.
        dropped_bytes: u64,
    },
    /// A complete record failed its checksum or decode. The valid
    /// prefix is still usable; everything from the bad record on was
    /// dropped.
    Corrupt {
        /// 0-based index of the offending row record.
        at_row: u64,
        /// Bytes discarded from the bad record to end of file.
        dropped_bytes: u64,
        /// What failed.
        message: String,
    },
}

/// Everything recovered from a WAL.
#[derive(Debug)]
pub struct WalContents {
    /// Live source names from the header (column order of `rows`).
    pub sources: Vec<String>,
    /// Valid committed rows, in phase order (`rows[p]` is phase `p+1`).
    pub rows: Vec<Row>,
    /// State of the log's tail.
    pub tail: WalTail,
    /// Byte length of the validated prefix — pass to
    /// [`WalWriter::resume`] to continue appending.
    pub valid_len: u64,
}

enum RawRecord {
    Complete { payload: Vec<u8>, end: u64 },
    Torn,
    BadChecksum,
    BadLength(u32),
}

fn read_record(buf: &[u8], offset: usize) -> Option<RawRecord> {
    let remaining = buf.len() - offset;
    if remaining == 0 {
        return None;
    }
    if remaining < 8 {
        return Some(RawRecord::Torn);
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Some(RawRecord::BadLength(len));
    }
    if remaining - 8 < len as usize {
        return Some(RawRecord::Torn);
    }
    let payload = &buf[offset + 8..offset + 8 + len as usize];
    if crc32(payload) != crc {
        return Some(RawRecord::BadChecksum);
    }
    Some(RawRecord::Complete {
        payload: payload.to_vec(),
        end: (offset + 8 + len as usize) as u64,
    })
}

fn decode_header(payload: &[u8]) -> Result<Vec<String>, String> {
    let mut r = StateReader::new(payload);
    let kind = r.get_u8().map_err(|e| e.to_string())?;
    if kind != KIND_HEADER {
        return Err(format!("first record has kind {kind}, expected header"));
    }
    for &expect in WAL_MAGIC {
        let got = r.get_u8().map_err(|e| e.to_string())?;
        if got != expect {
            return Err("bad WAL magic".into());
        }
    }
    let version = r.get_u32().map_err(|e| e.to_string())?;
    if version != 1 {
        return Err(format!("unsupported WAL version {version}"));
    }
    let n = r.get_u32().map_err(|e| e.to_string())? as usize;
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        sources.push(r.get_str().map_err(|e| e.to_string())?);
    }
    r.finish().map_err(|e| e.to_string())?;
    Ok(sources)
}

fn decode_row(payload: &[u8], columns: usize) -> Result<Row, String> {
    let mut r = StateReader::new(payload);
    let kind = r.get_u8().map_err(|e| e.to_string())?;
    if kind != KIND_ROW {
        return Err(format!("record has kind {kind}, expected row"));
    }
    let n = r.get_u32().map_err(|e| e.to_string())? as usize;
    if n != columns {
        return Err(format!("row has {n} columns, header declared {columns}"));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(r.get_opt_value().map_err(|e| e.to_string())?);
    }
    r.finish().map_err(|e| e.to_string())?;
    Ok(row)
}

/// Reads and validates the WAL in `dir`.
///
/// Errors only when no usable log exists (missing file, unreadable
/// header). Damage *after* the header is reported through
/// [`WalContents::tail`] — the valid prefix is always returned, because
/// a prefix of a committed history is itself a committed history.
pub fn read_wal(dir: &Path) -> Result<WalContents, StoreError> {
    let path = wal_path(dir);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::NotFound(path))
        }
        Err(e) => return Err(StoreError::io(&path, e)),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)
        .map_err(|e| StoreError::io(&path, e))?;

    // Header record: must be intact, or the store is unusable.
    let (sources, mut offset) = match read_record(&buf, 0) {
        Some(RawRecord::Complete { payload, end }) => {
            let sources = decode_header(&payload)
                .map_err(|m| StoreError::corrupt(&path, format!("header: {m}")))?;
            (sources, end)
        }
        None => return Err(StoreError::corrupt(&path, "empty file (no header)")),
        Some(_) => return Err(StoreError::corrupt(&path, "unreadable header record")),
    };

    let mut rows: Vec<Row> = Vec::new();
    let tail = loop {
        match read_record(&buf, offset as usize) {
            None => break WalTail::Clean,
            Some(RawRecord::Torn) => {
                break WalTail::Torn {
                    dropped_bytes: buf.len() as u64 - offset,
                }
            }
            Some(RawRecord::BadChecksum) => {
                break WalTail::Corrupt {
                    at_row: rows.len() as u64,
                    dropped_bytes: buf.len() as u64 - offset,
                    message: "checksum mismatch".into(),
                }
            }
            Some(RawRecord::BadLength(len)) => {
                break WalTail::Corrupt {
                    at_row: rows.len() as u64,
                    dropped_bytes: buf.len() as u64 - offset,
                    message: format!("impossible record length {len}"),
                }
            }
            Some(RawRecord::Complete { payload, end }) => {
                match decode_row(&payload, sources.len()) {
                    Ok(row) => {
                        rows.push(row);
                        offset = end;
                    }
                    Err(m) => {
                        break WalTail::Corrupt {
                            at_row: rows.len() as u64,
                            dropped_bytes: buf.len() as u64 - offset,
                            message: m,
                        }
                    }
                }
            }
        }
    };
    Ok(WalContents {
        sources,
        rows,
        tail,
        valid_len: offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn sources() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Some(Value::Int(1)), None],
            vec![None, Some(Value::text("x"))],
            vec![Some(Value::Float(2.5)), Some(Value::vector(vec![1.0, 2.0]))],
        ]
    }

    #[test]
    fn round_trips_rows() {
        let dir = test_dir("wal-roundtrip");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.rows(), 3);

        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.sources, sources());
        assert_eq!(contents.rows, sample_rows());
        assert_eq!(contents.tail, WalTail::Clean);
    }

    #[test]
    fn group_commit_is_byte_compatible_with_per_row_appends() {
        // Same rows, two writers: one staging the whole epoch and
        // committing once, one appending row by row. The files must be
        // byte-identical — group commit changes syscall granularity,
        // never the on-disk format.
        let dir_group = test_dir("wal-group");
        let dir_rows = test_dir("wal-perrow");
        let mut grouped = WalWriter::create(&dir_group, &sources()).unwrap();
        for row in sample_rows() {
            grouped.stage_row(&row);
        }
        assert_eq!(grouped.staged(), 3);
        assert_eq!(grouped.rows(), 0, "staged rows are not yet committed");
        assert_eq!(grouped.commit().unwrap(), 3);
        assert_eq!(grouped.rows(), 3);
        assert_eq!(grouped.commit().unwrap(), 0, "empty commit is a no-op");
        drop(grouped);

        let mut per_row = WalWriter::create(&dir_rows, &sources()).unwrap();
        for row in sample_rows() {
            per_row.append_row(&row).unwrap();
        }
        drop(per_row);

        assert_eq!(
            std::fs::read(wal_path(&dir_group)).unwrap(),
            std::fs::read(wal_path(&dir_rows)).unwrap()
        );
        let contents = read_wal(&dir_group).unwrap();
        assert_eq!(contents.rows, sample_rows());
        assert_eq!(contents.tail, WalTail::Clean);
    }

    #[test]
    fn drop_flushes_staged_rows() {
        let dir = test_dir("wal-drop-flush");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.stage_row(&[Some(Value::Int(5)), None]);
        drop(w); // no explicit commit
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows, vec![vec![Some(Value::Int(5)), None]]);
    }

    #[test]
    fn sync_every_interval_commits_cleanly() {
        let dir = test_dir("wal-sync-every");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.set_sync_every(Some(2));
        for row in sample_rows() {
            w.stage_row(&row);
        }
        assert_eq!(w.commit().unwrap(), 3); // crosses the interval once
        w.append_row(&[None, None]).unwrap();
        drop(w);
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows.len(), 4);
        assert_eq!(contents.tail, WalTail::Clean);
    }

    #[test]
    fn refuses_to_overwrite_existing_store() {
        let dir = test_dir("wal-exists");
        WalWriter::create(&dir, &sources()).unwrap();
        assert!(matches!(
            WalWriter::create(&dir, &sources()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn create_refuses_stale_snapshots() {
        use crate::snapshot::write_snapshot;
        use ec_core::EngineCheckpoint;
        let dir = test_dir("wal-stale-snap");
        std::fs::create_dir_all(&dir).unwrap();
        // A snapshot from a previous incarnation, but no WAL (e.g. the
        // user deleted wal.log to "reset" the store).
        write_snapshot(
            &dir,
            &["s".into()],
            &EngineCheckpoint {
                phase: 5,
                vertices: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            WalWriter::create(&dir, &sources()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_wal_is_not_found() {
        let dir = test_dir("wal-missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(read_wal(&dir), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn torn_tail_dropped_at_every_truncation_point() {
        let dir = test_dir("wal-torn");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        let path = wal_path(&dir);
        let full = std::fs::read(&path).unwrap();

        // Record boundaries, to classify expectations.
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.valid_len, full.len() as u64);

        for cut in 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            match read_wal(&dir) {
                Ok(c) => {
                    // A truncation mid-record drops exactly the torn
                    // record; at a boundary the tail is clean.
                    assert!(c.rows.len() <= 3);
                    assert_eq!(c.rows[..], sample_rows()[..c.rows.len()]);
                    match c.tail {
                        WalTail::Clean => assert_eq!(c.valid_len, cut as u64),
                        WalTail::Torn { dropped_bytes } => {
                            assert_eq!(c.valid_len + dropped_bytes, cut as u64)
                        }
                        WalTail::Corrupt { .. } => {
                            panic!("truncation must read as torn, not corrupt")
                        }
                    }
                }
                // Cuts inside the header leave no usable store.
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn bit_flip_detected_as_corruption() {
        let dir = test_dir("wal-bitflip");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        let path = wal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        let header_end = {
            let len = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize;
            8 + len
        };
        // Flip one bit in the payload of the second row record.
        let first_row_len =
            u32::from_le_bytes(full[header_end..header_end + 4].try_into().unwrap()) as usize;
        let second_start = header_end + 8 + first_row_len;
        let mut damaged = full.clone();
        damaged[second_start + 10] ^= 0x40;
        std::fs::write(&path, &damaged).unwrap();

        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows, sample_rows()[..1].to_vec());
        assert!(
            matches!(c.tail, WalTail::Corrupt { at_row: 1, .. }),
            "tail: {:?}",
            c.tail
        );
    }

    #[test]
    fn resume_truncates_torn_tail_and_appends() {
        let dir = test_dir("wal-resume");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        // Tear the last record.
        let path = wal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows.len(), 2);
        let mut w = WalWriter::resume(&dir, c.valid_len, c.rows.len() as u64).unwrap();
        w.append_row(&[Some(Value::Int(9)), None]).unwrap();
        assert_eq!(w.rows(), 3);
        drop(w);

        let c = read_wal(&dir).unwrap();
        assert_eq!(c.tail, WalTail::Clean);
        assert_eq!(c.rows.len(), 3);
        assert_eq!(c.rows[2], vec![Some(Value::Int(9)), None]);
    }

    #[test]
    fn wrong_column_count_is_corruption() {
        let dir = test_dir("wal-columns");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.append_row(&[Some(Value::Int(1)), None]).unwrap();
        drop(w);
        // Append a validly framed row with the wrong arity.
        let bad = {
            let mut w = StateWriter::new();
            w.put_u8(KIND_ROW);
            w.put_u32(1);
            w.put_opt_value(&Some(Value::Int(1)));
            frame(&w.into_bytes())
        };
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&bad);
        std::fs::write(&path, &bytes).unwrap();
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows.len(), 1);
        assert!(matches!(c.tail, WalTail::Corrupt { at_row: 1, .. }));
    }
}
