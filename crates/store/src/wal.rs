//! The write-ahead log of committed phase-script rows.
//!
//! A store's log is a directory of size-bounded **segments**
//! (`wal/seg-<seq>.log`) listed by a monotonically named manifest
//! (`wal/manifest-<gen>.ecm`, see [`crate::manifest`]). Each segment
//! opens with a header record naming the live sources (the script's
//! column order); every subsequent record is one committed row — the
//! bins staged for one admitted phase, exactly the unit the streaming
//! runtime commits when it seals an epoch. Appending the row *before*
//! the phase is admitted makes the log the authoritative commit: a
//! phase the outside world saw accepted is never lost to a crash.
//! Single-file stores from earlier versions (`wal.log`) are still
//! read and resumed in place.
//!
//! ## Framing
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! `payload[0]` is the record kind (header / row); the rest is encoded
//! with the [`StateWriter`] codec. Recovery reads records until the
//! file ends or a record fails validation:
//!
//! * bytes missing to complete the record → **torn tail** (the process
//!   died mid-append); the partial record is dropped, recovery
//!   proceeds with the valid prefix;
//! * full record present but checksum or decode fails → **corruption**;
//!   the valid prefix is still returned, with the damage reported so
//!   callers can refuse or alert.
//!
//! Damage is only tolerated in the *final* segment — earlier segments
//! were sealed and fsynced before the log moved on, so a hole there is
//! real corruption, not a crash artifact.
//!
//! ## Rotation ordering
//!
//! Rotation keeps one invariant: **every committed row lives in a
//! manifest-listed segment**. The old segment is fsynced, the new
//! segment is created with its header and fsynced, the next manifest
//! generation is renamed into place — and only then do commits land in
//! the new segment. A crash anywhere in that sequence leaves either
//! the old manifest (the orphan new segment holds no committed rows
//! and is scrubbed on resume) or the new one (both segments listed,
//! rows intact).

use crate::crc::crc32;
use crate::error::StoreError;
use crate::io::{real_io, StoreFile, StoreIo};
use crate::manifest::{self, SegmentEntry};
use ec_events::{StateReader, StateWriter, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One committed phase-script row: one bin per live source, in wiring
/// order (`None` = the source was silent that phase).
pub type Row = Vec<Option<Value>>;

/// File name of a legacy single-file write-ahead log.
pub const WAL_FILE: &str = "wal.log";

/// Directory of WAL segments and manifests inside a store directory.
pub const WAL_DIR: &str = "wal";

/// Default segment size bound: large enough that short-lived runs stay
/// in one segment, small enough that long runs compact usefully.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

const KIND_HEADER: u8 = 0;
const KIND_ROW: u8 = 1;
const WAL_MAGIC: &[u8; 6] = b"ECWAL1";
/// Upper bound on a single record; lengths beyond this are treated as
/// corruption rather than attempted as allocations.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Path of a legacy single-file WAL inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// The segment directory inside `dir`.
pub fn wal_dir(dir: &Path) -> PathBuf {
    dir.join(WAL_DIR)
}

/// Path of segment `seq` inside `dir`. Sequence numbers are zero-padded
/// so lexicographic directory order is log order.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    wal_dir(dir).join(format!("seg-{seq:012}.log"))
}

/// Whether `dir` holds a store (segmented or legacy). This — not the
/// presence of any one file — is the create-vs-restore test.
pub fn store_exists(dir: &Path) -> bool {
    wal_path(dir).exists()
        || manifest::list_manifests(dir)
            .map(|m| !m.is_empty())
            .unwrap_or(true)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn encode_header(sources: &[String]) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u8(KIND_HEADER);
    for &b in WAL_MAGIC {
        w.put_u8(b);
    }
    w.put_u32(1); // format version
    w.put_u32(sources.len() as u32);
    for s in sources {
        w.put_str(s);
    }
    w.into_bytes()
}

/// Knobs for opening a WAL: the segment size bound and the I/O plane
/// (production [`real_io`] or a fault-injecting wrapper).
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a new segment once the active one holds at least this
    /// many bytes. Segments exceed the bound by at most one epoch.
    pub segment_bytes: u64,
    /// The I/O plane every mutating operation goes through.
    pub io: Arc<dyn StoreIo>,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            io: real_io(),
        }
    }
}

enum Layout {
    /// Pre-segmentation single file; never rotates or compacts.
    Legacy,
    Segmented {
        segment_bytes: u64,
        entries: Vec<SegmentEntry>,
        gen: u64,
    },
}

/// Append half of the log, with group commit: rows are staged into an
/// in-memory buffer ([`stage_row`](WalWriter::stage_row)) and flushed
/// to the OS in one contiguous append per [`commit`](WalWriter::commit)
/// — one syscall per sealed epoch instead of one per row. The on-disk
/// framing is unchanged (byte-compatible with per-row appends), so
/// existing stores recover identically.
///
/// A failed commit **keeps the staged buffer**: the writer remembers
/// the last known-good file length, truncates any torn bytes away on
/// the next attempt and rewrites the whole batch, so callers can retry
/// transient errors without losing or duplicating rows.
pub struct WalWriter {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    sources: Vec<String>,
    layout: Layout,
    /// The active file (last segment, or the legacy single file).
    path: PathBuf,
    file: Box<dyn StoreFile>,
    /// Absolute committed rows, compacted history included.
    rows: u64,
    /// Committed bytes in the active file.
    active_len: u64,
    /// Bytes in sealed (non-active) live segments.
    sealed_bytes: u64,
    /// A failed append may have left a partial frame after
    /// `active_len`; truncate before the next append, and never
    /// best-effort-flush over it.
    needs_repair: bool,
    /// An automatic fsync failed; retry it on the next commit instead
    /// of silently reporting the batch durable.
    pending_sync: bool,
    /// Frames staged since the last commit.
    buf: Vec<u8>,
    staged_rows: u64,
    /// `Some(n)`: fsync automatically once `n` committed rows have
    /// accumulated since the last sync. `None`: sync only on explicit
    /// [`sync`](WalWriter::sync) calls (checkpoint/shutdown).
    sync_every: Option<u64>,
    rows_since_sync: u64,
    /// Reusable row-payload encoding buffer: staging a row is an
    /// in-place encode plus one memcpy into `buf`, no allocation.
    scratch: Vec<u8>,
    /// Wall-clock duration of the most recent non-empty
    /// [`commit`](WalWriter::commit), including any automatic fsync.
    last_commit_nanos: u64,
}

impl WalWriter {
    /// Creates a fresh segmented store with default [`WalOptions`].
    pub fn create(dir: &Path, sources: &[String]) -> Result<WalWriter, StoreError> {
        WalWriter::create_with(dir, sources, WalOptions::default())
    }

    /// Creates a fresh store: the directory (if missing), the first
    /// segment with a header naming the live sources, and manifest
    /// generation 1. Fails with [`StoreError::AlreadyExists`] if a
    /// store — or any leftover snapshot file — is already present: an
    /// existing store is restored, never silently overwritten, and a
    /// stale snapshot next to a fresh log would later restore the *old*
    /// run's operator state over the new run's history.
    pub fn create_with(
        dir: &Path,
        sources: &[String],
        opts: WalOptions,
    ) -> Result<WalWriter, StoreError> {
        let io = opts.io;
        io.create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        if wal_path(dir).exists() {
            return Err(StoreError::AlreadyExists(wal_path(dir)));
        }
        if let Some((_, stale)) = manifest::list_manifests(dir)?.into_iter().next_back() {
            return Err(StoreError::AlreadyExists(stale));
        }
        if let Some(stale) = crate::snapshot::list_snapshot_files(dir)?
            .into_iter()
            .next()
        {
            return Err(StoreError::AlreadyExists(stale.path));
        }
        let seg_dir = wal_dir(dir);
        io.create_dir_all(&seg_dir)
            .map_err(|e| StoreError::io(&seg_dir, e))?;
        // With no manifest present, any segment files are debris from
        // a run that died before its first manifest write.
        scrub_segment_debris(dir, u64::MAX, 0);

        let path = segment_path(dir, 1);
        let mut file = io.open(&path, true).map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                StoreError::AlreadyExists(path.clone())
            } else {
                StoreError::io(&path, e)
            }
        })?;
        let header = frame(&encode_header(sources));
        file.append(&header).map_err(|e| StoreError::io(&path, e))?;
        file.fsync().map_err(|e| StoreError::io(&path, e))?;
        let entries = vec![SegmentEntry {
            seq: 1,
            first_row: 0,
        }];
        manifest::write_manifest(dir, 1, &entries, &io)?;
        Ok(WalWriter {
            io,
            dir: dir.to_path_buf(),
            sources: sources.to_vec(),
            layout: Layout::Segmented {
                segment_bytes: opts.segment_bytes.max(1),
                entries,
                gen: 1,
            },
            path,
            file,
            rows: 0,
            active_len: header.len() as u64,
            sealed_bytes: 0,
            needs_repair: false,
            pending_sync: false,
            buf: Vec::new(),
            staged_rows: 0,
            sync_every: None,
            rows_since_sync: 0,
            scratch: Vec::new(),
            last_commit_nanos: 0,
        })
    }

    /// Reopens a **legacy** single-file WAL for appending after
    /// recovery. `valid_len` is the byte length of the validated prefix
    /// (from [`read_wal`](crate::read_wal)); anything beyond it — a
    /// torn tail — is truncated away so new appends start on a record
    /// boundary. `rows` is the number of valid rows in that prefix.
    /// Segmented stores resume through
    /// [`Recovery::append_writer`](crate::Recovery::append_writer).
    pub fn resume(dir: &Path, valid_len: u64, rows: u64) -> Result<WalWriter, StoreError> {
        let io = real_io();
        let path = wal_path(dir);
        let mut file = io
            .open(&path, false)
            .map_err(|e| StoreError::io(&path, e))?;
        file.truncate_to(valid_len)
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(WalWriter {
            io,
            dir: dir.to_path_buf(),
            sources: Vec::new(),
            layout: Layout::Legacy,
            path,
            file,
            rows,
            active_len: valid_len,
            sealed_bytes: 0,
            needs_repair: false,
            pending_sync: false,
            buf: Vec::new(),
            staged_rows: 0,
            sync_every: None,
            rows_since_sync: 0,
            scratch: Vec::new(),
            last_commit_nanos: 0,
        })
    }

    /// Reopens a store described by [`WalContents`] for appending,
    /// truncating any torn tail in the final segment. Refuses stores
    /// whose damage is not confined to the final segment. (Production
    /// code resumes through [`Recovery`](crate::Recovery), which does
    /// the same via [`resume_segmented`](Self::resume_segmented).)
    #[cfg(test)]
    pub(crate) fn resume_contents(
        dir: &Path,
        contents: &WalContents,
        opts: WalOptions,
    ) -> Result<WalWriter, StoreError> {
        let ContentsLayout::Segmented { gen, ref entries } = contents.layout else {
            return WalWriter::resume(dir, contents.valid_len, contents.rows.len() as u64);
        };
        if !contents.resumable {
            let last = entries.last().expect("manifest entries are non-empty");
            return Err(StoreError::corrupt(
                segment_path(dir, last.seq),
                "damage before the final segment; refusing to resume",
            ));
        }
        let sealed_bytes = contents
            .segments
            .iter()
            .take(contents.segments.len().saturating_sub(1))
            .map(|s| s.bytes)
            .sum();
        WalWriter::resume_segmented(
            dir,
            &contents.sources,
            gen,
            entries,
            contents.base_rows + contents.rows.len() as u64,
            contents.valid_len,
            sealed_bytes,
            opts,
        )
    }

    /// Reopens the final segment of a validated segmented store for
    /// appending. `rows` is absolute (compacted history included);
    /// `valid_len` is the validated prefix of the final segment.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume_segmented(
        dir: &Path,
        sources: &[String],
        gen: u64,
        entries: &[SegmentEntry],
        rows: u64,
        valid_len: u64,
        sealed_bytes: u64,
        opts: WalOptions,
    ) -> Result<WalWriter, StoreError> {
        let last = entries.last().expect("manifest entries are non-empty");
        // Segments outside the manifest are debris: past it, a crashed
        // rotation (no committed rows by construction); before it, a
        // dead prefix a crashed compaction didn't finish removing.
        scrub_segment_debris(dir, entries[0].seq, last.seq);
        let io = opts.io;
        let path = segment_path(dir, last.seq);
        let mut file = io
            .open(&path, false)
            .map_err(|e| StoreError::io(&path, e))?;
        file.truncate_to(valid_len)
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(WalWriter {
            io,
            dir: dir.to_path_buf(),
            sources: sources.to_vec(),
            layout: Layout::Segmented {
                segment_bytes: opts.segment_bytes.max(1),
                entries: entries.to_vec(),
                gen,
            },
            path,
            file,
            rows,
            active_len: valid_len,
            sealed_bytes,
            needs_repair: false,
            pending_sync: false,
            buf: Vec::new(),
            staged_rows: 0,
            sync_every: None,
            rows_since_sync: 0,
            scratch: Vec::new(),
            last_commit_nanos: 0,
        })
    }

    /// Configures the automatic fsync interval: force the log to stable
    /// storage once `rows` committed rows have accumulated since the
    /// last sync. `None` (the default) syncs only on explicit
    /// [`sync`](Self::sync) calls.
    pub fn set_sync_every(&mut self, rows: Option<u64>) {
        self.sync_every = rows;
    }

    /// Stages one committed row into the group-commit buffer. Purely
    /// in-memory and infallible; nothing reaches the file until
    /// [`commit`](Self::commit).
    pub fn stage_row(&mut self, row: &[Option<Value>]) {
        self.stage_row_bins(row.iter().map(Option::as_ref));
    }

    /// Like [`stage_row`](Self::stage_row), but over borrowed bins — the
    /// shape a columnar seal holds (bin `r` of each source's shared
    /// epoch column). The payload is encoded into a recycled scratch
    /// buffer and memcpy'd after its frame header: staging allocates
    /// nothing in steady state and the on-disk bytes are identical to
    /// [`stage_row`](Self::stage_row)'s.
    pub fn stage_row_bins<'a>(&mut self, bins: impl ExactSizeIterator<Item = Option<&'a Value>>) {
        let mut w = StateWriter::reuse(std::mem::take(&mut self.scratch));
        w.put_u8(KIND_ROW);
        w.put_u32(bins.len() as u32);
        for bin in bins {
            w.put_bin(bin);
        }
        let payload = w.into_bytes();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.scratch = payload;
        self.staged_rows += 1;
    }

    /// Rows staged and not yet committed.
    pub fn staged(&self) -> u64 {
        self.staged_rows
    }

    /// Seals the active segment and starts the next one. See the
    /// module docs for the crash-safe ordering.
    fn rotate(&mut self) -> Result<(), StoreError> {
        let Layout::Segmented {
            ref entries, gen, ..
        } = self.layout
        else {
            return Ok(());
        };
        self.file
            .fsync()
            .map_err(|e| StoreError::io(&self.path, e))?;
        let next_seq = entries.last().expect("entries non-empty").seq + 1;
        let path = segment_path(&self.dir, next_seq);
        // Debris from a rotation that crashed between creating the
        // segment and writing the manifest.
        crate::io::scrub(&path);
        let mut file = self
            .io
            .open(&path, true)
            .map_err(|e| StoreError::io(&path, e))?;
        let header = frame(&encode_header(&self.sources));
        file.append(&header).map_err(|e| StoreError::io(&path, e))?;
        file.fsync().map_err(|e| StoreError::io(&path, e))?;
        let mut new_entries = entries.clone();
        new_entries.push(SegmentEntry {
            seq: next_seq,
            first_row: self.rows,
        });
        manifest::write_manifest(&self.dir, gen + 1, &new_entries, &self.io)?;
        let _ = self.io.remove(&manifest::manifest_path(&self.dir, gen));
        // Only now — with the new generation authoritative — does the
        // writer move over.
        self.sealed_bytes += self.active_len;
        self.path = path;
        self.file = file;
        self.active_len = header.len() as u64;
        if let Layout::Segmented {
            ref mut entries,
            ref mut gen,
            ..
        } = self.layout
        {
            *entries = new_entries;
            *gen += 1;
        }
        Ok(())
    }

    /// Commits every staged row in one contiguous append: the whole
    /// batch reaches the OS before this returns (surviving a process
    /// kill). Returns the number of rows committed. On error the
    /// staged batch is **retained** — the file may hold a torn prefix
    /// of it, which the next attempt truncates away before rewriting
    /// the batch, so a retried commit is exactly-once.
    pub fn commit(&mut self) -> Result<u64, StoreError> {
        if self.buf.is_empty() && !self.needs_repair && !self.pending_sync {
            return Ok(0);
        }
        let start = std::time::Instant::now();
        if self.needs_repair {
            self.file
                .truncate_to(self.active_len)
                .map_err(|e| StoreError::io(&self.path, e))?;
            self.needs_repair = false;
        }
        // Rotate when the active segment is over its bound *and* holds
        // at least one row — never leaving an empty segment behind.
        let rotate_due = match self.layout {
            Layout::Segmented {
                segment_bytes,
                ref entries,
                ..
            } => {
                !self.buf.is_empty()
                    && self.active_len >= segment_bytes
                    && self.rows > entries.last().expect("entries non-empty").first_row
            }
            Layout::Legacy => false,
        };
        if rotate_due {
            self.rotate()?;
        }
        let mut batch = 0;
        if !self.buf.is_empty() {
            if let Err(e) = self.file.append(&self.buf) {
                self.needs_repair = true;
                return Err(StoreError::io(&self.path, e));
            }
            self.active_len += self.buf.len() as u64;
            batch = self.staged_rows;
            self.buf.clear();
            self.staged_rows = 0;
            self.rows += batch;
            self.rows_since_sync += batch;
        }
        if self.pending_sync
            || self
                .sync_every
                .is_some_and(|every| self.rows_since_sync >= every)
        {
            if let Err(e) = self.sync() {
                self.pending_sync = true;
                return Err(e);
            }
        }
        self.last_commit_nanos = start.elapsed().as_nanos() as u64;
        Ok(batch)
    }

    /// Nanoseconds the most recent non-empty [`commit`](Self::commit)
    /// spent appending (plus any automatic fsync it triggered). `0`
    /// until the first commit. Timed here — at the syscall — so
    /// callers get the true group-commit latency without wrapping the
    /// call site.
    pub fn last_commit_nanos(&self) -> u64 {
        self.last_commit_nanos
    }

    /// Appends one committed row and flushes it to the OS immediately
    /// (a one-row group commit). Call [`sync`](Self::sync) to force it
    /// to the device.
    pub fn append_row(&mut self, row: &[Option<Value>]) -> Result<(), StoreError> {
        self.stage_row(row);
        self.commit()?;
        Ok(())
    }

    /// Rows committed through this writer plus any it resumed over,
    /// compacted history included. Staged-but-uncommitted rows are not
    /// counted.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Rows compacted away: the log physically starts at this absolute
    /// row index. `0` for legacy stores and before any compaction.
    pub fn base_rows(&self) -> u64 {
        match self.layout {
            Layout::Legacy => 0,
            Layout::Segmented { ref entries, .. } => entries[0].first_row,
        }
    }

    /// Live segments (1 for a legacy store).
    pub fn segment_count(&self) -> u64 {
        match self.layout {
            Layout::Legacy => 1,
            Layout::Segmented { ref entries, .. } => entries.len() as u64,
        }
    }

    /// Committed bytes across all live segments.
    pub fn wal_bytes(&self) -> u64 {
        self.sealed_bytes + self.active_len
    }

    /// Drops sealed segments whose every row is at or below
    /// `keep_phase` (i.e. covered by a durable snapshot at that phase).
    /// The active segment is never dropped. No-op on legacy stores.
    pub fn compact(
        &mut self,
        keep_phase: u64,
    ) -> Result<crate::compact::CompactReport, StoreError> {
        let Layout::Segmented {
            ref entries, gen, ..
        } = self.layout
        else {
            return Ok(crate::compact::CompactReport::noop(0));
        };
        match crate::compact::drop_dead_segments(&self.dir, &self.io, entries, gen, keep_phase)? {
            None => Ok(crate::compact::CompactReport::noop(entries[0].first_row)),
            Some((new_entries, new_gen, report)) => {
                self.sealed_bytes = self.sealed_bytes.saturating_sub(report.removed_bytes);
                if let Layout::Segmented {
                    ref mut entries,
                    ref mut gen,
                    ..
                } = self.layout
                {
                    *entries = new_entries;
                    *gen = new_gen;
                }
                Ok(report)
            }
        }
    }

    /// Forces everything committed to stable storage (`fsync` of the
    /// active segment; sealed segments were fsynced at rotation).
    /// Staged rows are *not* implicitly committed — stage/commit
    /// boundaries belong to the caller.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .fsync()
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.rows_since_sync = 0;
        self.pending_sync = false;
        Ok(())
    }
}

impl Drop for WalWriter {
    /// Best-effort flush of staged rows: a writer dropped mid-epoch
    /// (e.g. unwinding) should not silently lose frames it could still
    /// hand to the OS. Errors are ignored — the crash-recovery contract
    /// only covers rows whose `commit` returned. Skipped after a
    /// failed append: the file may end in a partial frame, and
    /// appending after it would bury valid-looking rows behind garbage.
    fn drop(&mut self) {
        if !self.buf.is_empty() && !self.needs_repair {
            let _ = self.file.append(&self.buf);
        }
    }
}

/// Removes segment files outside `[first_listed, last_listed]`
/// (best-effort, plain `std::fs`): above the range is debris from a
/// rotation or creation that died before its manifest write (such
/// segments hold no committed rows, by the rotation ordering); below it
/// is a dead prefix whose removal a crashed compaction never finished.
fn scrub_segment_debris(dir: &Path, first_listed: u64, last_listed: u64) {
    let Ok(entries) = std::fs::read_dir(wal_dir(dir)) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            crate::io::scrub(&entry.path());
            continue;
        }
        let Some(stem) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
        else {
            continue;
        };
        if stem
            .parse::<u64>()
            .is_ok_and(|seq| seq < first_listed || seq > last_listed)
        {
            crate::io::scrub(&entry.path());
        }
    }
}

/// How the end of the log looked during a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belonged to a valid record.
    Clean,
    /// The final record was incomplete (crash mid-append); its bytes
    /// were dropped.
    Torn {
        /// Bytes discarded after the last valid record.
        dropped_bytes: u64,
    },
    /// A complete record failed its checksum or decode — or a sealed
    /// (non-final) segment was damaged. The valid prefix is still
    /// usable; everything from the bad record on was dropped.
    Corrupt {
        /// 0-based absolute index of the offending row record.
        at_row: u64,
        /// Bytes discarded from the bad record to end of file.
        dropped_bytes: u64,
        /// What failed.
        message: String,
    },
}

/// One live segment as read back, for accounting and inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment sequence number (`0` for a legacy single-file store).
    pub seq: u64,
    /// The segment file.
    pub path: PathBuf,
    /// Absolute committed rows preceding this segment.
    pub first_row: u64,
    /// Valid rows read from this segment.
    pub rows: u64,
    /// File size in bytes.
    pub bytes: u64,
}

#[derive(Debug)]
pub(crate) enum ContentsLayout {
    Legacy,
    Segmented {
        gen: u64,
        entries: Vec<SegmentEntry>,
    },
}

/// Everything recovered from a WAL.
#[derive(Debug)]
pub struct WalContents {
    /// Live source names from the header (column order of `rows`).
    pub sources: Vec<String>,
    /// Valid committed rows still on disk, in phase order: `rows[p]`
    /// is phase `base_rows + p + 1`.
    pub rows: Vec<Row>,
    /// State of the log's tail.
    pub tail: WalTail,
    /// Byte length of the validated prefix of the **final** segment
    /// (or the legacy file) — where appending resumes.
    pub valid_len: u64,
    /// Rows compacted away before `rows[0]` (covered by a snapshot).
    pub base_rows: u64,
    /// Per-segment accounting, log order (one pseudo-entry for a
    /// legacy store).
    pub segments: Vec<SegmentInfo>,
    /// Manifest generations skipped as unreadable, `(path, reason)`.
    pub skipped_manifests: Vec<(PathBuf, String)>,
    /// Damage, if any, is confined to the final segment, so truncating
    /// to `valid_len` and appending is sound.
    pub(crate) resumable: bool,
    pub(crate) layout: ContentsLayout,
}

enum RawRecord {
    Complete { payload: Vec<u8>, end: u64 },
    Torn,
    BadChecksum,
    BadLength(u32),
}

fn read_record(buf: &[u8], offset: usize) -> Option<RawRecord> {
    let remaining = buf.len() - offset;
    if remaining == 0 {
        return None;
    }
    if remaining < 8 {
        return Some(RawRecord::Torn);
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Some(RawRecord::BadLength(len));
    }
    if remaining - 8 < len as usize {
        return Some(RawRecord::Torn);
    }
    let payload = &buf[offset + 8..offset + 8 + len as usize];
    if crc32(payload) != crc {
        return Some(RawRecord::BadChecksum);
    }
    Some(RawRecord::Complete {
        payload: payload.to_vec(),
        end: (offset + 8 + len as usize) as u64,
    })
}

fn decode_header(payload: &[u8]) -> Result<Vec<String>, String> {
    let mut r = StateReader::new(payload);
    let kind = r.get_u8().map_err(|e| e.to_string())?;
    if kind != KIND_HEADER {
        return Err(format!("first record has kind {kind}, expected header"));
    }
    for &expect in WAL_MAGIC {
        let got = r.get_u8().map_err(|e| e.to_string())?;
        if got != expect {
            return Err("bad WAL magic".into());
        }
    }
    let version = r.get_u32().map_err(|e| e.to_string())?;
    if version != 1 {
        return Err(format!("unsupported WAL version {version}"));
    }
    let n = r.get_u32().map_err(|e| e.to_string())? as usize;
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        sources.push(r.get_str().map_err(|e| e.to_string())?);
    }
    r.finish().map_err(|e| e.to_string())?;
    Ok(sources)
}

fn decode_row(payload: &[u8], columns: usize) -> Result<Row, String> {
    let mut r = StateReader::new(payload);
    let kind = r.get_u8().map_err(|e| e.to_string())?;
    if kind != KIND_ROW {
        return Err(format!("record has kind {kind}, expected row"));
    }
    let n = r.get_u32().map_err(|e| e.to_string())? as usize;
    if n != columns {
        return Err(format!("row has {n} columns, header declared {columns}"));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(r.get_opt_value().map_err(|e| e.to_string())?);
    }
    r.finish().map_err(|e| e.to_string())?;
    Ok(row)
}

/// Outcome of scanning one file's records after its header.
struct FileScan {
    rows: Vec<Row>,
    tail: WalTail,
    /// End of the validated prefix within the file.
    valid_len: u64,
}

/// Scans `buf` from `offset` (just past the header) collecting rows.
/// `row_base` is the absolute index of the first row in this file, for
/// corruption reports.
fn scan_rows(buf: &[u8], mut offset: u64, columns: usize, row_base: u64) -> FileScan {
    let mut rows: Vec<Row> = Vec::new();
    let tail = loop {
        match read_record(buf, offset as usize) {
            None => break WalTail::Clean,
            Some(RawRecord::Torn) => {
                break WalTail::Torn {
                    dropped_bytes: buf.len() as u64 - offset,
                }
            }
            Some(RawRecord::BadChecksum) => {
                break WalTail::Corrupt {
                    at_row: row_base + rows.len() as u64,
                    dropped_bytes: buf.len() as u64 - offset,
                    message: "checksum mismatch".into(),
                }
            }
            Some(RawRecord::BadLength(len)) => {
                break WalTail::Corrupt {
                    at_row: row_base + rows.len() as u64,
                    dropped_bytes: buf.len() as u64 - offset,
                    message: format!("impossible record length {len}"),
                }
            }
            Some(RawRecord::Complete { payload, end }) => match decode_row(&payload, columns) {
                Ok(row) => {
                    rows.push(row);
                    offset = end;
                }
                Err(m) => {
                    break WalTail::Corrupt {
                        at_row: row_base + rows.len() as u64,
                        dropped_bytes: buf.len() as u64 - offset,
                        message: m,
                    }
                }
            },
        }
    };
    FileScan {
        rows,
        tail,
        valid_len: offset,
    }
}

/// Reads and validates the WAL in `dir` — segmented if a manifest
/// exists, otherwise the legacy single file.
///
/// Errors only when no usable log exists (missing store, unreadable
/// first header, a hole in the manifest chain). Damage in the *final*
/// segment is reported through [`WalContents::tail`] — the valid
/// prefix is always returned, because a prefix of a committed history
/// is itself a committed history. Damage in a sealed earlier segment
/// also surfaces as a [`WalTail::Corrupt`] tail (with the valid prefix
/// up to the damage), but marks the store non-resumable.
pub fn read_wal(dir: &Path) -> Result<WalContents, StoreError> {
    match manifest::load_latest(dir)? {
        Some((gen, entries, skipped)) => read_segmented(dir, gen, entries, skipped),
        None => {
            if wal_path(dir).exists() {
                read_legacy(dir)
            } else {
                Err(StoreError::NotFound(wal_path(dir)))
            }
        }
    }
}

fn read_legacy(dir: &Path) -> Result<WalContents, StoreError> {
    let path = wal_path(dir);
    let buf = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::NotFound(path))
        }
        Err(e) => return Err(StoreError::io(&path, e)),
    };

    // Header record: must be intact, or the store is unusable.
    let (sources, offset) = match read_record(&buf, 0) {
        Some(RawRecord::Complete { payload, end }) => {
            let sources = decode_header(&payload)
                .map_err(|m| StoreError::corrupt(&path, format!("header: {m}")))?;
            (sources, end)
        }
        None => return Err(StoreError::corrupt(&path, "empty file (no header)")),
        Some(_) => return Err(StoreError::corrupt(&path, "unreadable header record")),
    };

    let scan = scan_rows(&buf, offset, sources.len(), 0);
    let segments = vec![SegmentInfo {
        seq: 0,
        path,
        first_row: 0,
        rows: scan.rows.len() as u64,
        bytes: buf.len() as u64,
    }];
    Ok(WalContents {
        sources,
        rows: scan.rows,
        tail: scan.tail,
        valid_len: scan.valid_len,
        base_rows: 0,
        segments,
        skipped_manifests: Vec::new(),
        resumable: true,
        layout: ContentsLayout::Legacy,
    })
}

fn read_segmented(
    dir: &Path,
    gen: u64,
    entries: Vec<SegmentEntry>,
    skipped_manifests: Vec<(PathBuf, String)>,
) -> Result<WalContents, StoreError> {
    let base_rows = entries[0].first_row;
    let mut sources: Vec<String> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    let mut segments: Vec<SegmentInfo> = Vec::new();
    let mut tail = WalTail::Clean;
    let mut valid_len = 0u64;
    let mut resumable = true;

    for (i, entry) in entries.iter().enumerate() {
        let path = segment_path(dir, entry.seq);
        let is_first = i == 0;
        let is_last = i + 1 == entries.len();
        let absolute = base_rows + rows.len() as u64;

        let soft_corrupt = |message: String, rows_here: u64| WalTail::Corrupt {
            at_row: absolute,
            dropped_bytes: rows_here,
            message,
        };

        let buf = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                let message = format!("listed segment unreadable: {e}");
                if is_first {
                    return Err(StoreError::corrupt(&path, message));
                }
                tail = soft_corrupt(message, 0);
                resumable = false;
                break;
            }
        };

        if entry.first_row != absolute {
            let message = format!(
                "manifest says segment starts at row {}, log holds {absolute}",
                entry.first_row
            );
            if is_first {
                return Err(StoreError::corrupt(&path, message));
            }
            tail = soft_corrupt(message, buf.len() as u64);
            resumable = false;
            break;
        }

        let (seg_sources, offset) = match read_record(&buf, 0) {
            Some(RawRecord::Complete { payload, end }) => match decode_header(&payload) {
                Ok(s) => (s, end),
                Err(m) => {
                    let message = format!("header: {m}");
                    if is_first {
                        return Err(StoreError::corrupt(&path, message));
                    }
                    tail = soft_corrupt(message, buf.len() as u64);
                    resumable = false;
                    break;
                }
            },
            other => {
                let message = if other.is_none() {
                    "empty segment (no header)".to_string()
                } else {
                    "unreadable header record".to_string()
                };
                if is_first {
                    return Err(StoreError::corrupt(&path, message));
                }
                tail = soft_corrupt(message, buf.len() as u64);
                resumable = false;
                break;
            }
        };
        if is_first {
            sources = seg_sources;
        } else if seg_sources != sources {
            tail = soft_corrupt(
                "segment header names different sources".into(),
                buf.len() as u64,
            );
            resumable = false;
            break;
        }

        let scan = scan_rows(&buf, offset, sources.len(), absolute);
        let seg_rows = scan.rows.len() as u64;
        rows.extend(scan.rows);
        segments.push(SegmentInfo {
            seq: entry.seq,
            path: path.clone(),
            first_row: entry.first_row,
            rows: seg_rows,
            bytes: buf.len() as u64,
        });
        match scan.tail {
            WalTail::Clean => {
                if is_last {
                    valid_len = scan.valid_len;
                }
            }
            WalTail::Torn { dropped_bytes } if is_last => {
                tail = WalTail::Torn { dropped_bytes };
                valid_len = scan.valid_len;
            }
            WalTail::Torn { dropped_bytes } => {
                // A sealed segment was fsynced before the log moved on;
                // a truncation here is damage, not a crash artifact.
                tail = WalTail::Corrupt {
                    at_row: base_rows + rows.len() as u64,
                    dropped_bytes,
                    message: "sealed segment truncated mid-record".into(),
                };
                valid_len = scan.valid_len;
                resumable = false;
                break;
            }
            WalTail::Corrupt {
                at_row,
                dropped_bytes,
                message,
            } => {
                tail = WalTail::Corrupt {
                    at_row,
                    dropped_bytes,
                    message,
                };
                valid_len = scan.valid_len;
                resumable = is_last;
                break;
            }
        }
    }

    Ok(WalContents {
        sources,
        rows,
        tail,
        valid_len,
        base_rows,
        segments,
        skipped_manifests,
        resumable,
        layout: ContentsLayout::Segmented { gen, entries },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn sources() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Some(Value::Int(1)), None],
            vec![None, Some(Value::text("x"))],
            vec![Some(Value::Float(2.5)), Some(Value::vector(vec![1.0, 2.0]))],
        ]
    }

    /// A store in the pre-segmentation single-file layout, built by
    /// demoting a fresh segmented store (the framing is identical).
    fn make_legacy(dir: &Path, rows: &[Row]) {
        let mut w = WalWriter::create(dir, &sources()).unwrap();
        for row in rows {
            w.append_row(row).unwrap();
        }
        drop(w);
        std::fs::rename(segment_path(dir, 1), wal_path(dir)).unwrap();
        std::fs::remove_dir_all(wal_dir(dir)).unwrap();
    }

    #[test]
    fn round_trips_rows() {
        let dir = test_dir("wal-roundtrip");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.rows(), 3);
        assert_eq!(w.segment_count(), 1);

        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.sources, sources());
        assert_eq!(contents.rows, sample_rows());
        assert_eq!(contents.tail, WalTail::Clean);
        assert_eq!(contents.base_rows, 0);
        assert_eq!(contents.segments.len(), 1);
        assert_eq!(contents.segments[0].rows, 3);
    }

    #[test]
    fn group_commit_is_byte_compatible_with_per_row_appends() {
        // Same rows, two writers: one staging the whole epoch and
        // committing once, one appending row by row. The files must be
        // byte-identical — group commit changes syscall granularity,
        // never the on-disk format.
        let dir_group = test_dir("wal-group");
        let dir_rows = test_dir("wal-perrow");
        let mut grouped = WalWriter::create(&dir_group, &sources()).unwrap();
        for row in sample_rows() {
            grouped.stage_row(&row);
        }
        assert_eq!(grouped.staged(), 3);
        assert_eq!(grouped.rows(), 0, "staged rows are not yet committed");
        assert_eq!(grouped.commit().unwrap(), 3);
        assert_eq!(grouped.rows(), 3);
        assert_eq!(grouped.commit().unwrap(), 0, "empty commit is a no-op");
        drop(grouped);

        let mut per_row = WalWriter::create(&dir_rows, &sources()).unwrap();
        for row in sample_rows() {
            per_row.append_row(&row).unwrap();
        }
        drop(per_row);

        assert_eq!(
            std::fs::read(segment_path(&dir_group, 1)).unwrap(),
            std::fs::read(segment_path(&dir_rows, 1)).unwrap()
        );
        let contents = read_wal(&dir_group).unwrap();
        assert_eq!(contents.rows, sample_rows());
        assert_eq!(contents.tail, WalTail::Clean);
    }

    #[test]
    fn drop_flushes_staged_rows() {
        let dir = test_dir("wal-drop-flush");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.stage_row(&[Some(Value::Int(5)), None]);
        drop(w); // no explicit commit
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows, vec![vec![Some(Value::Int(5)), None]]);
    }

    #[test]
    fn sync_every_interval_commits_cleanly() {
        let dir = test_dir("wal-sync-every");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.set_sync_every(Some(2));
        for row in sample_rows() {
            w.stage_row(&row);
        }
        assert_eq!(w.commit().unwrap(), 3); // crosses the interval once
        w.append_row(&[None, None]).unwrap();
        drop(w);
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows.len(), 4);
        assert_eq!(contents.tail, WalTail::Clean);
    }

    #[test]
    fn refuses_to_overwrite_existing_store() {
        let dir = test_dir("wal-exists");
        WalWriter::create(&dir, &sources()).unwrap();
        assert!(store_exists(&dir));
        assert!(matches!(
            WalWriter::create(&dir, &sources()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn refuses_to_overwrite_legacy_store() {
        let dir = test_dir("wal-exists-legacy");
        make_legacy(&dir, &sample_rows());
        assert!(store_exists(&dir));
        assert!(matches!(
            WalWriter::create(&dir, &sources()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn create_refuses_stale_snapshots() {
        use crate::snapshot::write_snapshot;
        use ec_core::EngineCheckpoint;
        let dir = test_dir("wal-stale-snap");
        std::fs::create_dir_all(&dir).unwrap();
        // A snapshot from a previous incarnation, but no WAL (e.g. the
        // user deleted the log to "reset" the store).
        write_snapshot(
            &dir,
            &["s".into()],
            &EngineCheckpoint {
                phase: 5,
                vertices: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            WalWriter::create(&dir, &sources()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_wal_is_not_found() {
        let dir = test_dir("wal-missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(!store_exists(&dir));
        assert!(matches!(read_wal(&dir), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn orphan_segments_without_manifest_are_debris() {
        // A run that died between creating seg 1 and writing manifest
        // gen 1 left a segment but no manifest: not a store.
        let dir = test_dir("wal-orphan-create");
        std::fs::create_dir_all(wal_dir(&dir)).unwrap();
        std::fs::write(segment_path(&dir, 1), b"half a header").unwrap();
        assert!(!store_exists(&dir));
        assert!(matches!(read_wal(&dir), Err(StoreError::NotFound(_))));
        // Creation scrubs the debris and succeeds.
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.append_row(&[None, None]).unwrap();
        drop(w);
        assert_eq!(read_wal(&dir).unwrap().rows.len(), 1);
    }

    #[test]
    fn rotation_spreads_rows_across_segments() {
        let dir = test_dir("wal-rotate");
        let mut w = WalWriter::create_with(
            &dir,
            &sources(),
            WalOptions {
                segment_bytes: 1, // rotate on every commit
                ..Default::default()
            },
        )
        .unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        assert_eq!(w.segment_count(), 3, "each commit after the first rotates");
        assert_eq!(w.rows(), 3);
        drop(w);

        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows, sample_rows());
        assert_eq!(contents.tail, WalTail::Clean);
        assert_eq!(contents.segments.len(), 3);
        assert_eq!(
            contents
                .segments
                .iter()
                .map(|s| s.first_row)
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Exactly one manifest generation survives steady state.
        assert_eq!(manifest::list_manifests(&dir).unwrap().len(), 1);
    }

    #[test]
    fn resume_continues_in_final_segment() {
        let dir = test_dir("wal-resume-seg");
        let opts = WalOptions {
            segment_bytes: 1,
            ..Default::default()
        };
        let mut w = WalWriter::create_with(&dir, &sources(), opts.clone()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        // Tear the final segment's last record.
        let contents = read_wal(&dir).unwrap();
        let last = contents.segments.last().unwrap().path.clone();
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() - 3]).unwrap();

        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows.len(), 2);
        assert!(matches!(contents.tail, WalTail::Torn { .. }));
        let mut w = WalWriter::resume_contents(&dir, &contents, opts).unwrap();
        assert_eq!(w.rows(), 2);
        w.append_row(&[Some(Value::Int(9)), None]).unwrap();
        drop(w);
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.tail, WalTail::Clean);
        assert_eq!(contents.rows.len(), 3);
        assert_eq!(contents.rows[2], vec![Some(Value::Int(9)), None]);
    }

    #[test]
    fn damage_in_sealed_segment_is_corrupt_and_non_resumable() {
        let dir = test_dir("wal-sealed-damage");
        let opts = WalOptions {
            segment_bytes: 1,
            ..Default::default()
        };
        let mut w = WalWriter::create_with(&dir, &sources(), opts.clone()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        // Truncate the *middle* segment.
        let middle = segment_path(&dir, 2);
        let bytes = std::fs::read(&middle).unwrap();
        std::fs::write(&middle, &bytes[..bytes.len() - 2]).unwrap();

        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.rows.len(), 1, "prefix before the damage survives");
        assert!(
            matches!(contents.tail, WalTail::Corrupt { .. }),
            "tail: {:?}",
            contents.tail
        );
        assert!(WalWriter::resume_contents(&dir, &contents, opts).is_err());
    }

    #[test]
    fn failed_commit_retains_batch_for_retry() {
        use crate::io::{Fault, FaultIo, FaultPlan};
        let dir = test_dir("wal-retry");
        // Ops: create dirs (0,1), open seg (2), header append (3),
        // fsync (4), manifest open/append/fsync/rename (5-8). The
        // first row append is op 9.
        let io = FaultIo::new(FaultPlan::new().fail_at(9, Fault::TornWrite));
        let mut w = WalWriter::create_with(
            &dir,
            &sources(),
            WalOptions {
                segment_bytes: DEFAULT_SEGMENT_BYTES,
                io: Arc::new(io),
            },
        )
        .unwrap();
        w.stage_row(&[Some(Value::Int(1)), None]);
        assert!(w.commit().is_err(), "torn append must surface");
        assert_eq!(w.rows(), 0);
        // Retry: truncates the torn prefix, rewrites the batch.
        assert_eq!(w.commit().unwrap(), 1);
        assert_eq!(w.rows(), 1);
        w.append_row(&[None, Some(Value::Int(2))]).unwrap();
        drop(w);
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.tail, WalTail::Clean);
        assert_eq!(contents.rows.len(), 2);
        assert_eq!(contents.rows[0], vec![Some(Value::Int(1)), None]);
    }

    #[test]
    fn torn_tail_dropped_at_every_truncation_point() {
        let dir = test_dir("wal-torn");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();

        // Record boundaries, to classify expectations.
        let contents = read_wal(&dir).unwrap();
        assert_eq!(contents.valid_len, full.len() as u64);

        for cut in 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            match read_wal(&dir) {
                Ok(c) => {
                    // A truncation mid-record drops exactly the torn
                    // record; at a boundary the tail is clean.
                    assert!(c.rows.len() <= 3);
                    assert_eq!(c.rows[..], sample_rows()[..c.rows.len()]);
                    match c.tail {
                        WalTail::Clean => assert_eq!(c.valid_len, cut as u64),
                        WalTail::Torn { dropped_bytes } => {
                            assert_eq!(c.valid_len + dropped_bytes, cut as u64)
                        }
                        WalTail::Corrupt { .. } => {
                            panic!("truncation must read as torn, not corrupt")
                        }
                    }
                }
                // Cuts inside the header leave no usable store.
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn bit_flip_detected_as_corruption() {
        let dir = test_dir("wal-bitflip");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        for row in sample_rows() {
            w.append_row(&row).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        let header_end = {
            let len = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize;
            8 + len
        };
        // Flip one bit in the payload of the second row record.
        let first_row_len =
            u32::from_le_bytes(full[header_end..header_end + 4].try_into().unwrap()) as usize;
        let second_start = header_end + 8 + first_row_len;
        let mut damaged = full.clone();
        damaged[second_start + 10] ^= 0x40;
        std::fs::write(&path, &damaged).unwrap();

        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows, sample_rows()[..1].to_vec());
        assert!(
            matches!(c.tail, WalTail::Corrupt { at_row: 1, .. }),
            "tail: {:?}",
            c.tail
        );
    }

    #[test]
    fn legacy_store_reads_and_resumes() {
        let dir = test_dir("wal-legacy");
        make_legacy(&dir, &sample_rows());
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows, sample_rows());
        assert_eq!(c.tail, WalTail::Clean);
        assert_eq!(c.segments.len(), 1);
        assert_eq!(c.segments[0].seq, 0);

        // Tear the last record; legacy resume truncates and appends.
        let path = wal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows.len(), 2);
        let mut w = WalWriter::resume(&dir, c.valid_len, c.rows.len() as u64).unwrap();
        w.append_row(&[Some(Value::Int(9)), None]).unwrap();
        assert_eq!(w.rows(), 3);
        drop(w);
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.tail, WalTail::Clean);
        assert_eq!(c.rows.len(), 3);
        assert_eq!(c.rows[2], vec![Some(Value::Int(9)), None]);
    }

    #[test]
    fn wrong_column_count_is_corruption() {
        let dir = test_dir("wal-columns");
        let mut w = WalWriter::create(&dir, &sources()).unwrap();
        w.append_row(&[Some(Value::Int(1)), None]).unwrap();
        drop(w);
        // Append a validly framed row with the wrong arity.
        let bad = {
            let mut w = StateWriter::new();
            w.put_u8(KIND_ROW);
            w.put_u32(1);
            w.put_opt_value(&Some(Value::Int(1)));
            frame(&w.into_bytes())
        };
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&bad);
        std::fs::write(&path, &bytes).unwrap();
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.rows.len(), 1);
        assert!(matches!(c.tail, WalTail::Corrupt { at_row: 1, .. }));
    }
}
