//! Snapshot files: operator state at a retired phase boundary.
//!
//! A snapshot captures an [`EngineCheckpoint`] (module state +
//! latest-value memory per vertex, see `ec-core`) together with the
//! graph's vertex names, so restore can verify it is being applied to
//! the same computation. Files are written to a temporary name and
//! renamed into place, so a crash mid-snapshot leaves either the old
//! set of snapshots or the new one — never a half-written file that
//! parses. A snapshot that fails validation is simply ignored by
//! recovery (the WAL can always fill the gap by replaying more rows).

use crate::crc::crc32;
use crate::error::StoreError;
use ec_core::EngineCheckpoint;
use ec_events::{StateReader, StateWriter};
use std::io::Write;
use std::path::{Path, PathBuf};

const SNAP_MAGIC: &[u8; 8] = b"ECSNAP1\0";
const SNAP_VERSION: u32 = 1;

/// Path of the snapshot taken at `phase` inside `dir`. Phases are
/// zero-padded so lexicographic directory order is phase order.
pub fn snapshot_path(dir: &Path, phase: u64) -> PathBuf {
    dir.join(format!("snapshot-{phase:020}.ecs"))
}

/// A parsed snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// The retired phase the state was captured at.
    pub phase: u64,
    /// Vertex names in `VertexId` order, for graph validation.
    pub names: Vec<String>,
    /// The captured engine state.
    pub checkpoint: EngineCheckpoint,
}

/// Writes a snapshot of `checkpoint` (taken at `checkpoint.phase`) to
/// `dir`, atomically. Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    names: &[String],
    checkpoint: &EngineCheckpoint,
) -> Result<PathBuf, StoreError> {
    let mut w = StateWriter::new();
    w.put_u32(SNAP_VERSION);
    w.put_u32(names.len() as u32);
    for name in names {
        w.put_str(name);
    }
    w.put_bytes(&checkpoint.encode());
    let payload = w.into_bytes();

    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let path = snapshot_path(dir, checkpoint.phase);
    let tmp = path.with_extension("ecs.tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| StoreError::io(&tmp, e))?;
        file.sync_all().map_err(|e| StoreError::io(&tmp, e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
    Ok(path)
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SnapshotData, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    if bytes.len() < 16 || &bytes[..8] != SNAP_MAGIC {
        return Err(StoreError::corrupt(path, "bad snapshot magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != 16 + len {
        return Err(StoreError::corrupt(
            path,
            format!("payload length {} != declared {len}", bytes.len() - 16),
        ));
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Err(StoreError::corrupt(path, "checksum mismatch"));
    }
    let mut r = StateReader::new(payload);
    let version = r.get_u32()?;
    if version != SNAP_VERSION {
        return Err(StoreError::corrupt(
            path,
            format!("unsupported snapshot version {version}"),
        ));
    }
    let n = r.get_u32()? as usize;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(r.get_str()?);
    }
    let checkpoint = EngineCheckpoint::decode(&r.get_bytes()?)?;
    r.finish()?;
    Ok(SnapshotData {
        phase: checkpoint.phase,
        names,
        checkpoint,
    })
}

/// Lists snapshot files in `dir`, sorted ascending by phase (parsed
/// from the file name; malformed names are skipped).
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".ecs"))
        else {
            continue;
        };
        if let Ok(phase) = stem.parse::<u64>() {
            out.push((phase, entry.path()));
        }
    }
    out.sort_by_key(|(phase, _)| *phase);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use ec_core::VertexState;
    use ec_events::{StateSnapshot, Value};
    use ec_graph::VertexId;

    fn checkpoint(phase: u64) -> EngineCheckpoint {
        EngineCheckpoint {
            phase,
            vertices: vec![
                VertexState {
                    vertex: VertexId(0),
                    module: StateSnapshot::Bytes(vec![7, 7, 7]),
                    latest: vec![],
                },
                VertexState {
                    vertex: VertexId(1),
                    module: StateSnapshot::Stateless,
                    latest: vec![Some(Value::Float(1.5)), None],
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = test_dir("snap-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let names = vec!["src".to_string(), "alarm".to_string()];
        let path = write_snapshot(&dir, &names, &checkpoint(17)).unwrap();
        let data = read_snapshot(&path).unwrap();
        assert_eq!(data.phase, 17);
        assert_eq!(data.names, names);
        assert_eq!(data.checkpoint, checkpoint(17));
    }

    #[test]
    fn listing_sorts_by_phase() {
        let dir = test_dir("snap-list");
        std::fs::create_dir_all(&dir).unwrap();
        for phase in [30u64, 5, 200] {
            write_snapshot(&dir, &["a".into()], &checkpoint(phase)).unwrap();
        }
        // Unrelated files are skipped.
        std::fs::write(dir.join("wal.log"), b"x").unwrap();
        std::fs::write(dir.join("snapshot-junk.ecs"), b"x").unwrap();
        let phases: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(phases, vec![5, 30, 200]);
    }

    #[test]
    fn damaged_snapshot_rejected() {
        let dir = test_dir("snap-damage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_snapshot(&dir, &["a".into()], &checkpoint(3)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = bytes.len() - 2;
        bytes[flip_at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncation is also rejected.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_snapshot(&path).is_err());
    }
}
