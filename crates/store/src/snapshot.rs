//! Snapshot files: operator state at a retired phase boundary.
//!
//! A snapshot captures an [`EngineCheckpoint`] (module state +
//! latest-value memory per vertex, see `ec-core`) together with the
//! graph's vertex names, so restore can verify it is being applied to
//! the same computation. Files are written to a temporary name and
//! renamed into place, so a crash mid-snapshot leaves either the old
//! set of snapshots or the new one — never a half-written file that
//! parses. A snapshot that fails validation is simply ignored by
//! recovery (the WAL can fill the gap by replaying more rows).
//!
//! Snapshots come in two flavours:
//!
//! * **full** (`snapshot-<phase>.ecs`) — every vertex's state;
//! * **delta** (`delta-<phase>.ecs`) — only vertices whose state
//!   changed since the parent snapshot, plus the parent's phase.
//!   Recovery resolves the chain delta → … → full and merges, newest
//!   vertex state winning.
//!
//! The [`Snapshotter`] drives the cadence: deltas while cheap, a full
//! snapshot every K increments as the fallback that keeps chains short
//! — after which everything older is pruned, bounding disk usage.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::io::{real_io, StoreIo};
use ec_core::{EngineCheckpoint, VertexState};
use ec_events::{StateReader, StateWriter};
use ec_graph::VertexId;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SNAP_MAGIC: &[u8; 8] = b"ECSNAP1\0";
const DELTA_MAGIC: &[u8; 8] = b"ECSNPD1\0";
const SNAP_VERSION: u32 = 1;

/// Path of the full snapshot taken at `phase` inside `dir`. Phases are
/// zero-padded so lexicographic directory order is phase order.
pub fn snapshot_path(dir: &Path, phase: u64) -> PathBuf {
    dir.join(format!("snapshot-{phase:020}.ecs"))
}

/// Path of the incremental (delta) snapshot taken at `phase`.
pub fn delta_path(dir: &Path, phase: u64) -> PathBuf {
    dir.join(format!("delta-{phase:020}.ecs"))
}

/// What a snapshot file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Every vertex's state; self-sufficient.
    Full,
    /// Only vertices changed since the snapshot at `parent`.
    Delta {
        /// Phase of the snapshot this delta applies on top of.
        parent: u64,
    },
}

/// A parsed snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// The retired phase the state was captured at.
    pub phase: u64,
    /// Vertex names in `VertexId` order, for graph validation.
    pub names: Vec<String>,
    /// The captured engine state. For [`SnapshotKind::Delta`], only the
    /// changed vertices; a resolved chain presents as `Full`.
    pub checkpoint: EngineCheckpoint,
    /// Full or delta.
    pub kind: SnapshotKind,
}

fn encode_payload(names: &[String], checkpoint: &EngineCheckpoint, parent: Option<u64>) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u32(SNAP_VERSION);
    if let Some(parent) = parent {
        w.put_u64(parent);
    }
    w.put_u32(names.len() as u32);
    for name in names {
        w.put_str(name);
    }
    w.put_bytes(&checkpoint.encode());
    w.into_bytes()
}

fn frame_file(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

fn write_file(path: &Path, bytes: &[u8], io: &Arc<dyn StoreIo>) -> Result<(), StoreError> {
    let tmp = path.with_extension("ecs.tmp");
    // Debris from an earlier crashed attempt at this same file.
    crate::io::scrub(&tmp);
    {
        let mut file = io.open(&tmp, true).map_err(|e| StoreError::io(&tmp, e))?;
        file.append(bytes).map_err(|e| StoreError::io(&tmp, e))?;
        file.fsync().map_err(|e| StoreError::io(&tmp, e))?;
    }
    io.rename(&tmp, path).map_err(|e| StoreError::io(path, e))?;
    Ok(())
}

/// Writes a full snapshot of `checkpoint` (taken at `checkpoint.phase`)
/// to `dir`, atomically. Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    names: &[String],
    checkpoint: &EngineCheckpoint,
) -> Result<PathBuf, StoreError> {
    write_snapshot_with(dir, names, checkpoint, &real_io())
}

/// [`write_snapshot`] through an explicit I/O plane.
pub fn write_snapshot_with(
    dir: &Path,
    names: &[String],
    checkpoint: &EngineCheckpoint,
    io: &Arc<dyn StoreIo>,
) -> Result<PathBuf, StoreError> {
    let bytes = frame_file(SNAP_MAGIC, &encode_payload(names, checkpoint, None));
    let path = snapshot_path(dir, checkpoint.phase);
    write_file(&path, &bytes, io)?;
    Ok(path)
}

/// Writes a delta snapshot: `checkpoint.vertices` holds only the
/// vertices changed since the snapshot at phase `parent`.
pub fn write_delta_with(
    dir: &Path,
    names: &[String],
    parent: u64,
    checkpoint: &EngineCheckpoint,
    io: &Arc<dyn StoreIo>,
) -> Result<PathBuf, StoreError> {
    let bytes = frame_file(
        DELTA_MAGIC,
        &encode_payload(names, checkpoint, Some(parent)),
    );
    let path = delta_path(dir, checkpoint.phase);
    write_file(&path, &bytes, io)?;
    Ok(path)
}

/// Reads and validates one snapshot file (full or delta).
pub fn read_snapshot(path: &Path) -> Result<SnapshotData, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    if bytes.len() < 16 {
        return Err(StoreError::corrupt(path, "bad snapshot magic"));
    }
    let delta = match &bytes[..8] {
        m if m == SNAP_MAGIC => false,
        m if m == DELTA_MAGIC => true,
        _ => return Err(StoreError::corrupt(path, "bad snapshot magic")),
    };
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != 16 + len {
        return Err(StoreError::corrupt(
            path,
            format!("payload length {} != declared {len}", bytes.len() - 16),
        ));
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Err(StoreError::corrupt(path, "checksum mismatch"));
    }
    let mut r = StateReader::new(payload);
    let version = r.get_u32()?;
    if version != SNAP_VERSION {
        return Err(StoreError::corrupt(
            path,
            format!("unsupported snapshot version {version}"),
        ));
    }
    let kind = if delta {
        SnapshotKind::Delta {
            parent: r.get_u64()?,
        }
    } else {
        SnapshotKind::Full
    };
    let n = r.get_u32()? as usize;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(r.get_str()?);
    }
    let checkpoint = EngineCheckpoint::decode(&r.get_bytes()?)?;
    r.finish()?;
    if let SnapshotKind::Delta { parent } = kind {
        if parent >= checkpoint.phase {
            return Err(StoreError::corrupt(
                path,
                format!("delta at phase {} claims parent {parent}", checkpoint.phase),
            ));
        }
    }
    Ok(SnapshotData {
        phase: checkpoint.phase,
        names,
        checkpoint,
        kind,
    })
}

/// Lists **full** snapshot files in `dir`, sorted ascending by phase
/// (parsed from the file name; malformed names are skipped).
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    Ok(list_snapshot_files(dir)?
        .into_iter()
        .filter(|f| !f.delta)
        .map(|f| (f.phase, f.path))
        .collect())
}

/// One snapshot file on disk (full or delta), by name only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// Phase parsed from the file name.
    pub phase: u64,
    /// `delta-*.ecs` rather than `snapshot-*.ecs`.
    pub delta: bool,
    /// The file.
    pub path: PathBuf,
}

/// Lists all snapshot files (full and delta) in `dir`, sorted ascending
/// by phase; at equal phase the delta sorts first, so reverse iteration
/// prefers the full. Malformed names are skipped.
pub fn list_snapshot_files(dir: &Path) -> Result<Vec<SnapshotFile>, StoreError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_suffix(".ecs") else {
            continue;
        };
        let (delta, stem) = if let Some(stem) = rest.strip_prefix("snapshot-") {
            (false, stem)
        } else if let Some(stem) = rest.strip_prefix("delta-") {
            (true, stem)
        } else {
            continue;
        };
        if let Ok(phase) = stem.parse::<u64>() {
            out.push(SnapshotFile {
                phase,
                delta,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|f| (f.phase, !f.delta));
    Ok(out)
}

/// Resolves a snapshot head (possibly a delta) into a complete state:
/// follows parent links down to a full snapshot and merges upward,
/// newest vertex state winning. Returns a human-readable reason when
/// any link is unreadable or inconsistent, so recovery can skip this
/// head for an older one.
pub(crate) fn resolve_chain(dir: &Path, head: &SnapshotFile) -> Result<SnapshotData, String> {
    // Collect head → … → full, newest first.
    let mut chain: Vec<SnapshotData> = Vec::new();
    let mut next = head.path.clone();
    loop {
        let data =
            read_snapshot(&next).map_err(|e| format!("chain link {}: {e}", next.display()))?;
        let kind = data.kind;
        let phase = data.phase;
        chain.push(data);
        match kind {
            SnapshotKind::Full => break,
            SnapshotKind::Delta { parent } => {
                // read_snapshot enforces parent < phase, so this walk
                // strictly descends and terminates.
                debug_assert!(parent < phase);
                let full = snapshot_path(dir, parent);
                let delta = delta_path(dir, parent);
                next = if full.exists() {
                    full
                } else if delta.exists() {
                    delta
                } else {
                    return Err(format!(
                        "delta at phase {phase} needs parent {parent}, which is missing"
                    ));
                };
            }
        }
    }
    let names = chain[0].names.clone();
    for link in &chain[1..] {
        if link.names != names {
            return Err("snapshot chain crosses different graphs".into());
        }
    }
    // Merge bottom-up: full first, then each delta in ascending phase.
    let mut vertices: BTreeMap<VertexId, VertexState> = BTreeMap::new();
    for link in chain.iter().rev() {
        for v in &link.checkpoint.vertices {
            vertices.insert(v.vertex, v.clone());
        }
    }
    let phase = chain[0].phase;
    Ok(SnapshotData {
        phase,
        names,
        checkpoint: EngineCheckpoint {
            phase,
            vertices: vertices.into_values().collect(),
        },
        kind: SnapshotKind::Full,
    })
}

/// Outcome of one [`Snapshotter::write`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotOutcome {
    /// The file written.
    pub path: PathBuf,
    /// Full rather than delta.
    pub full: bool,
    /// Vertices serialized (all of them for a full).
    pub changed: usize,
}

/// Drives the incremental snapshot cadence for one store: remembers the
/// state as of the last snapshot, writes deltas of only the changed
/// vertices, and falls back to a full snapshot every `full_every`-th
/// write (and always for the first). After a successful full, older
/// snapshot files are pruned (best-effort), bounding disk usage.
#[derive(Debug)]
pub struct Snapshotter {
    full_every: u32,
    /// Deltas written since the last full.
    since_full: u32,
    /// Phase and per-vertex state as of the last successful write.
    last: Option<(u64, BTreeMap<VertexId, VertexState>)>,
}

impl Snapshotter {
    /// `full_every` = 1 writes only full snapshots; `k` writes `k-1`
    /// deltas between fulls.
    pub fn new(full_every: u32) -> Snapshotter {
        Snapshotter {
            full_every: full_every.max(1),
            since_full: 0,
            last: None,
        }
    }

    /// Phase of the last successful write, if any.
    pub fn last_phase(&self) -> Option<u64> {
        self.last.as_ref().map(|(phase, _)| *phase)
    }

    /// Writes `checkpoint` as a delta if cheap and due, else as a full
    /// snapshot. On error the snapshotter's memory is unchanged, so a
    /// retried write produces the same file.
    pub fn write(
        &mut self,
        dir: &Path,
        names: &[String],
        checkpoint: &EngineCheckpoint,
        io: &Arc<dyn StoreIo>,
    ) -> Result<SnapshotOutcome, StoreError> {
        let full_due = match &self.last {
            None => true,
            // A re-checkpoint at (or before) the last phase would make
            // a delta its own ancestor; rewrite a full instead.
            Some((phase, _)) => {
                checkpoint.phase <= *phase || self.since_full >= self.full_every - 1
            }
        };
        if full_due {
            let path = write_snapshot_with(dir, names, checkpoint, io)?;
            prune_older(dir, checkpoint.phase);
            self.last = Some((
                checkpoint.phase,
                checkpoint
                    .vertices
                    .iter()
                    .map(|v| (v.vertex, v.clone()))
                    .collect(),
            ));
            self.since_full = 0;
            return Ok(SnapshotOutcome {
                path,
                full: true,
                changed: checkpoint.vertices.len(),
            });
        }
        let (parent, last_vertices) = self.last.as_ref().expect("delta requires a parent");
        let parent = *parent;
        let changed: Vec<VertexState> = checkpoint
            .vertices
            .iter()
            .filter(|v| last_vertices.get(&v.vertex) != Some(*v))
            .cloned()
            .collect();
        let delta = EngineCheckpoint {
            phase: checkpoint.phase,
            vertices: changed,
        };
        let path = write_delta_with(dir, names, parent, &delta, io)?;
        let (last_phase, last_vertices) = self.last.as_mut().expect("checked above");
        *last_phase = checkpoint.phase;
        for v in &delta.vertices {
            last_vertices.insert(v.vertex, v.clone());
        }
        self.since_full += 1;
        Ok(SnapshotOutcome {
            path,
            full: false,
            changed: delta.vertices.len(),
        })
    }
}

/// Removes snapshot files (full and delta) older than `phase`,
/// best-effort: they are garbage once a full at `phase` is in place.
fn prune_older(dir: &Path, phase: u64) {
    let Ok(files) = list_snapshot_files(dir) else {
        return;
    };
    for f in files {
        if f.phase < phase {
            crate::io::scrub(&f.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use ec_events::{StateSnapshot, Value};

    fn checkpoint(phase: u64) -> EngineCheckpoint {
        EngineCheckpoint {
            phase,
            vertices: vec![
                VertexState {
                    vertex: VertexId(0),
                    module: StateSnapshot::Bytes(vec![7, 7, 7]),
                    latest: vec![],
                },
                VertexState {
                    vertex: VertexId(1),
                    module: StateSnapshot::Stateless,
                    latest: vec![Some(Value::Float(1.5)), None],
                },
            ],
        }
    }

    /// Like [`checkpoint`], but vertex 1's latest value tracks `phase`
    /// while vertex 0 never changes.
    fn evolving(phase: u64) -> EngineCheckpoint {
        let mut chk = checkpoint(phase);
        chk.vertices[1].latest = vec![Some(Value::Int(phase as i64)), None];
        chk
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = test_dir("snap-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let names = vec!["src".to_string(), "alarm".to_string()];
        let path = write_snapshot(&dir, &names, &checkpoint(17)).unwrap();
        let data = read_snapshot(&path).unwrap();
        assert_eq!(data.phase, 17);
        assert_eq!(data.names, names);
        assert_eq!(data.checkpoint, checkpoint(17));
        assert_eq!(data.kind, SnapshotKind::Full);
    }

    #[test]
    fn delta_round_trips() {
        let dir = test_dir("snap-delta-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let names = vec!["a".to_string()];
        let delta = EngineCheckpoint {
            phase: 9,
            vertices: checkpoint(9).vertices[..1].to_vec(),
        };
        let path = write_delta_with(&dir, &names, 6, &delta, &io).unwrap();
        let data = read_snapshot(&path).unwrap();
        assert_eq!(data.kind, SnapshotKind::Delta { parent: 6 });
        assert_eq!(data.phase, 9);
        assert_eq!(data.checkpoint.vertices.len(), 1);
    }

    #[test]
    fn listing_sorts_by_phase() {
        let dir = test_dir("snap-list");
        std::fs::create_dir_all(&dir).unwrap();
        for phase in [30u64, 5, 200] {
            write_snapshot(&dir, &["a".into()], &checkpoint(phase)).unwrap();
        }
        // Unrelated files are skipped.
        std::fs::write(dir.join("wal.log"), b"x").unwrap();
        std::fs::write(dir.join("snapshot-junk.ecs"), b"x").unwrap();
        let phases: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(phases, vec![5, 30, 200]);
    }

    #[test]
    fn damaged_snapshot_rejected() {
        let dir = test_dir("snap-damage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_snapshot(&dir, &["a".into()], &checkpoint(3)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = bytes.len() - 2;
        bytes[flip_at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncation is also rejected.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_snapshot(&path).is_err());
    }

    #[test]
    fn snapshotter_writes_deltas_then_full() {
        let dir = test_dir("snap-cadence");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let names = vec!["a".to_string(), "b".to_string()];
        let mut snap = Snapshotter::new(3);
        // First write is always full.
        let out = snap.write(&dir, &names, &evolving(2), &io).unwrap();
        assert!(out.full);
        // Two deltas (only the changed vertex serialized) …
        let out = snap.write(&dir, &names, &evolving(4), &io).unwrap();
        assert!(!out.full);
        assert_eq!(out.changed, 1, "only vertex 1 changed");
        let out = snap.write(&dir, &names, &evolving(6), &io).unwrap();
        assert!(!out.full);
        // … then the full fallback, which prunes everything older.
        let out = snap.write(&dir, &names, &evolving(8), &io).unwrap();
        assert!(out.full);
        let files = list_snapshot_files(&dir).unwrap();
        assert_eq!(files.len(), 1, "older files pruned: {files:?}");
        assert_eq!(files[0].phase, 8);
        assert!(!files[0].delta);
    }

    #[test]
    fn delta_with_no_changes_still_advances_phase() {
        let dir = test_dir("snap-nochange");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let names = vec!["a".to_string(), "b".to_string()];
        let mut snap = Snapshotter::new(10);
        snap.write(&dir, &names, &evolving(1), &io).unwrap();
        let mut same = evolving(1);
        same.phase = 5; // nothing changed, phase moved
        let out = snap.write(&dir, &names, &same, &io).unwrap();
        assert!(!out.full);
        assert_eq!(out.changed, 0);
        let head = list_snapshot_files(&dir).unwrap().pop().unwrap();
        let resolved = resolve_chain(&dir, &head).unwrap();
        assert_eq!(resolved.phase, 5);
        assert_eq!(resolved.checkpoint.vertices.len(), 2);
    }

    #[test]
    fn chain_resolves_to_merged_state() {
        let dir = test_dir("snap-chain");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let names = vec!["a".to_string(), "b".to_string()];
        let mut snap = Snapshotter::new(5);
        for phase in [2u64, 4, 6] {
            snap.write(&dir, &names, &evolving(phase), &io).unwrap();
        }
        let head = list_snapshot_files(&dir).unwrap().pop().unwrap();
        assert!(head.delta);
        let resolved = resolve_chain(&dir, &head).unwrap();
        assert_eq!(resolved.phase, 6);
        assert_eq!(resolved.checkpoint, evolving(6), "merged state is exact");
    }

    #[test]
    fn broken_chain_reports_missing_parent() {
        let dir = test_dir("snap-chain-broken");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let names = vec!["a".to_string(), "b".to_string()];
        let mut snap = Snapshotter::new(5);
        for phase in [2u64, 4, 6] {
            snap.write(&dir, &names, &evolving(phase), &io).unwrap();
        }
        std::fs::remove_file(snapshot_path(&dir, 2)).unwrap();
        let head = list_snapshot_files(&dir).unwrap().pop().unwrap();
        let err = resolve_chain(&dir, &head).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn re_checkpoint_at_same_phase_writes_full() {
        let dir = test_dir("snap-rephase");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let names = vec!["a".to_string(), "b".to_string()];
        let mut snap = Snapshotter::new(10);
        snap.write(&dir, &names, &evolving(3), &io).unwrap();
        let out = snap.write(&dir, &names, &evolving(3), &io).unwrap();
        assert!(out.full, "same-phase rewrite must not self-parent");
    }
}
