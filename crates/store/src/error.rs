//! Store error types.

use ec_events::SnapshotError;
use std::fmt;
use std::path::PathBuf;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (path and the underlying error).
    Io {
        /// The path being accessed.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The store directory holds no write-ahead log.
    NotFound(PathBuf),
    /// A store file exists where a fresh store was to be created.
    AlreadyExists(PathBuf),
    /// The file's contents are not a valid store artifact (bad magic,
    /// impossible lengths, checksum mismatch in the *body* of the log).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A payload failed to decode.
    Snapshot(SnapshotError),
}

impl StoreError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, message: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::NotFound(path) => {
                write!(f, "no write-ahead log at {}", path.display())
            }
            StoreError::AlreadyExists(path) => write!(
                f,
                "{} already exists (restore it instead of creating a new store)",
                path.display()
            ),
            StoreError::Corrupt { path, message } => {
                write!(f, "{} is corrupt: {message}", path.display())
            }
            StoreError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> StoreError {
        StoreError::Snapshot(e)
    }
}
