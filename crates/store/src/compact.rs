//! Compaction: dropping WAL segments made replay-dead by a snapshot.
//!
//! A segment is *dead* once some durable snapshot's phase is at or
//! beyond the segment's last row — recovery restores from the snapshot
//! and replays only rows after it, so the segment can never be read
//! again. Compaction removes the dead prefix of the segment list:
//!
//! 1. write manifest generation `g+1` listing only the live suffix
//!    (temp file, fsync, rename — same protocol as rotation);
//! 2. only then remove the old manifest and the dead segment files,
//!    best-effort.
//!
//! A crash anywhere in between leaves either the old manifest (every
//! file it lists still present) or the new one (unlisted leftovers are
//! scrubbed on the next resume). Disk usage for a long-running durable
//! stream is therefore bounded by snapshot cadence × segment size, not
//! by stream lifetime.

use crate::error::StoreError;
use crate::io::{real_io, StoreIo};
use crate::manifest::{self, SegmentEntry};
use crate::wal::{segment_path, ContentsLayout};
use std::path::Path;
use std::sync::Arc;

/// What one compaction pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Sequence numbers of the segments dropped (possibly empty).
    pub removed_segments: Vec<u64>,
    /// Bytes those segments held on disk.
    pub removed_bytes: u64,
    /// Absolute rows compacted away, after this pass: the log now
    /// physically starts at this row index.
    pub base_rows: u64,
}

impl CompactReport {
    /// A pass that dropped nothing.
    pub fn noop(base_rows: u64) -> CompactReport {
        CompactReport {
            removed_segments: Vec::new(),
            removed_bytes: 0,
            base_rows,
        }
    }

    /// Whether anything was dropped.
    pub fn changed(&self) -> bool {
        !self.removed_segments.is_empty()
    }
}

/// Drops the dead prefix of `entries`: every sealed segment whose rows
/// all sit at or below `keep_phase`. Returns `None` when nothing is
/// dead, else the new entry list, new manifest generation, and report.
pub(crate) fn drop_dead_segments(
    dir: &Path,
    io: &Arc<dyn StoreIo>,
    entries: &[SegmentEntry],
    gen: u64,
    keep_phase: u64,
) -> Result<Option<(Vec<SegmentEntry>, u64, CompactReport)>, StoreError> {
    // Segment i holds rows [entries[i].first_row, entries[i+1].first_row)
    // — phases first_row+1 ..= next.first_row — so it is dead iff the
    // *next* segment starts at or below keep_phase. The active (last)
    // segment is never dropped.
    let mut dead = 0;
    while dead + 1 < entries.len() && entries[dead + 1].first_row <= keep_phase {
        dead += 1;
    }
    if dead == 0 {
        return Ok(None);
    }
    let new_entries = entries[dead..].to_vec();
    let new_gen = gen + 1;
    manifest::write_manifest(dir, new_gen, &new_entries, io)?;
    // The new generation is authoritative; everything below is cleanup
    // that a crash may skip and a later resume will redo.
    let _ = io.remove(&manifest::manifest_path(dir, gen));
    let mut removed_segments = Vec::with_capacity(dead);
    let mut removed_bytes = 0;
    for entry in &entries[..dead] {
        let path = segment_path(dir, entry.seq);
        if let Ok(meta) = std::fs::metadata(&path) {
            removed_bytes += meta.len();
        }
        let _ = io.remove(&path);
        removed_segments.push(entry.seq);
    }
    let report = CompactReport {
        removed_segments,
        removed_bytes,
        base_rows: new_entries[0].first_row,
    };
    Ok(Some((new_entries, new_gen, report)))
}

/// Offline compaction of the store in `dir` (the `ec store … compact`
/// path): finds the newest usable snapshot and drops every segment it
/// makes dead. A legacy single-file store, or one with no usable
/// snapshot, compacts to a no-op.
pub fn compact_store(dir: &Path) -> Result<CompactReport, StoreError> {
    compact_store_with(dir, &real_io())
}

/// [`compact_store`] through an explicit I/O plane.
pub fn compact_store_with(dir: &Path, io: &Arc<dyn StoreIo>) -> Result<CompactReport, StoreError> {
    let contents = crate::wal::read_wal(dir)?;
    let ContentsLayout::Segmented { gen, ref entries } = contents.layout else {
        return Ok(CompactReport::noop(0));
    };
    let committed = contents.base_rows + contents.rows.len() as u64;
    // The newest snapshot that both resolves and is replayable from
    // this log (phase within [base, committed]) bounds what is dead.
    let mut keep_phase = None;
    for head in crate::snapshot::list_snapshot_files(dir)?.iter().rev() {
        if head.phase > committed || head.phase < contents.base_rows {
            continue;
        }
        if crate::snapshot::resolve_chain(dir, head).is_ok() {
            keep_phase = Some(head.phase);
            break;
        }
    }
    let Some(keep_phase) = keep_phase else {
        return Ok(CompactReport::noop(contents.base_rows));
    };
    match drop_dead_segments(dir, io, entries, gen, keep_phase)? {
        None => Ok(CompactReport::noop(entries[0].first_row)),
        Some((_, _, report)) => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::test_dir;
    use crate::wal::{read_wal, WalOptions, WalWriter};
    use ec_core::EngineCheckpoint;
    use ec_events::Value;

    fn sources() -> Vec<String> {
        vec!["s".into()]
    }

    /// A store with one row per segment (phases 1..=n).
    fn tiny_segments(dir: &std::path::Path, n: u64) -> WalWriter {
        let mut w = WalWriter::create_with(
            dir,
            &sources(),
            WalOptions {
                segment_bytes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..n {
            w.append_row(&[Some(Value::Int(i as i64))]).unwrap();
        }
        w.sync().unwrap();
        w
    }

    fn snapshot_at(dir: &std::path::Path, phase: u64) {
        write_snapshot(
            dir,
            &sources(),
            &EngineCheckpoint {
                phase,
                vertices: vec![],
            },
        )
        .unwrap();
    }

    #[test]
    fn drops_segments_covered_by_snapshot() {
        let dir = test_dir("compact-basic");
        let mut w = tiny_segments(&dir, 3);
        assert_eq!(w.segment_count(), 3);
        let report = w.compact(2).unwrap();
        assert_eq!(report.removed_segments, vec![1, 2]);
        assert_eq!(report.base_rows, 2);
        assert!(report.removed_bytes > 0);
        assert_eq!(w.segment_count(), 1);
        assert_eq!(w.base_rows(), 2);
        assert_eq!(w.rows(), 3, "absolute row count unchanged");
        // The survivor still appends and reads back.
        w.append_row(&[Some(Value::Int(9))]).unwrap();
        drop(w);
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.base_rows, 2);
        assert_eq!(c.rows.len(), 2);
        assert_eq!(c.rows[1], vec![Some(Value::Int(9))]);
    }

    #[test]
    fn active_segment_is_never_dropped() {
        let dir = test_dir("compact-active");
        let mut w = tiny_segments(&dir, 3);
        let report = w.compact(u64::MAX).unwrap();
        assert_eq!(report.removed_segments, vec![1, 2]);
        assert_eq!(w.segment_count(), 1);
        // Compacting again is a no-op.
        let report = w.compact(u64::MAX).unwrap();
        assert!(!report.changed());
    }

    #[test]
    fn keep_phase_zero_is_a_noop() {
        let dir = test_dir("compact-keep0");
        let mut w = tiny_segments(&dir, 3);
        let report = w.compact(0).unwrap();
        assert!(!report.changed());
        assert_eq!(w.segment_count(), 3);
    }

    #[test]
    fn offline_compaction_uses_newest_usable_snapshot() {
        let dir = test_dir("compact-offline");
        drop(tiny_segments(&dir, 3));
        snapshot_at(&dir, 2);
        let report = compact_store(&dir).unwrap();
        assert_eq!(report.removed_segments, vec![1, 2]);
        let c = read_wal(&dir).unwrap();
        assert_eq!(c.base_rows, 2);
        assert_eq!(c.rows.len(), 1);
    }

    #[test]
    fn offline_compaction_without_snapshot_is_noop() {
        let dir = test_dir("compact-offline-nosnap");
        drop(tiny_segments(&dir, 3));
        let report = compact_store(&dir).unwrap();
        assert!(!report.changed());
        assert_eq!(read_wal(&dir).unwrap().segments.len(), 3);
    }

    #[test]
    fn snapshot_beyond_the_log_is_ignored() {
        let dir = test_dir("compact-overreach");
        drop(tiny_segments(&dir, 3));
        // Claims a phase the log never committed — unusable.
        snapshot_at(&dir, 50);
        let report = compact_store(&dir).unwrap();
        assert!(!report.changed());
    }

    #[test]
    fn crash_at_any_point_mid_compaction_recovers() {
        use crate::io::{FaultIo, FaultPlan};
        // First, count the ops a clean compaction takes.
        let dir = test_dir("compact-crash-probe");
        drop(tiny_segments(&dir, 3));
        snapshot_at(&dir, 2);
        let probe = FaultIo::new(FaultPlan::new());
        compact_store_with(&dir, &probe.handle()).unwrap();
        let total_ops = probe.ops();
        assert!(total_ops >= 4, "manifest swap alone is 4 ops");

        for kill_at in 0..total_ops {
            let dir = test_dir(&format!("compact-crash-{kill_at}"));
            drop(tiny_segments(&dir, 3));
            snapshot_at(&dir, 2);
            let io = FaultIo::new(FaultPlan::new().kill_at(kill_at));
            let _ = compact_store_with(&dir, &io.handle());
            // However far it got, the store still reads to the same
            // committed history.
            let c = read_wal(&dir).unwrap();
            assert_eq!(
                c.base_rows + c.rows.len() as u64,
                3,
                "kill at op {kill_at} lost rows"
            );
            // And a re-run with healthy I/O converges.
            compact_store(&dir).unwrap();
            let c = read_wal(&dir).unwrap();
            assert_eq!(c.base_rows, 2);
            assert_eq!(c.rows.len(), 1);
        }
    }
}
