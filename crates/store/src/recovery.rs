//! Opening a store and working out where to resume.
//!
//! [`Recovery`] reads the WAL (manifest + segments, or the legacy
//! single file), drops a torn tail, resolves the newest *usable*
//! snapshot chain (delta → … → full, see [`crate::snapshot`]), and
//! presents the pieces a runtime needs to resume: the committed rows
//! still on disk, the merged checkpoint to restore operator state
//! from, and the tail of rows after it that must be replayed through
//! the engine. Phase numbering is global and survives compaction: if
//! `B` rows were compacted away and the log holds `W` more, the run
//! resumes at phase `B + W + 1` — exactly where the crashed process
//! would have continued.
//!
//! A compacted store *requires* a usable snapshot: rows below the base
//! exist nowhere else. If every candidate is damaged, recovery reports
//! a typed [`StoreError::Corrupt`] rather than restarting from a
//! history it cannot have.

use crate::error::StoreError;
use crate::snapshot::{list_snapshot_files, resolve_chain, SnapshotData};
use crate::wal::{read_wal, ContentsLayout, Row, SegmentInfo, WalOptions, WalTail, WalWriter};
use std::path::{Path, PathBuf};

/// A store opened for recovery.
#[derive(Debug)]
pub struct Recovery {
    dir: PathBuf,
    /// Live source names (the WAL header).
    pub sources: Vec<String>,
    /// Valid committed rows still on disk, phase order (`rows[p]` =
    /// phase `base_rows + p + 1`).
    pub rows: Vec<Row>,
    /// State of the WAL tail (clean / torn / corrupt).
    pub tail: WalTail,
    /// The newest usable snapshot, delta chains already resolved into
    /// a complete state.
    pub snapshot: Option<SnapshotData>,
    /// Snapshot heads present but skipped (unreadable, broken chain,
    /// or outside the log's range), as `(path, reason)`.
    pub skipped_snapshots: Vec<(PathBuf, String)>,
    /// Rows compacted away before `rows[0]`.
    pub base_rows: u64,
    /// Per-segment accounting, log order.
    pub segments: Vec<SegmentInfo>,
    /// Manifest generations skipped as unreadable, `(path, reason)`.
    pub skipped_manifests: Vec<(PathBuf, String)>,
    valid_len: u64,
    resumable: bool,
    layout: ContentsLayout,
}

impl Recovery {
    /// Opens the store at `dir`.
    ///
    /// Errors when there is nothing to recover (no WAL, unreadable
    /// first header, a hole in the manifest chain) or when compacted
    /// history is unreachable (no usable snapshot at or beyond the
    /// base). A torn WAL tail is dropped silently — that is the
    /// expected shape of a crash — and damaged snapshots are skipped
    /// in favour of older ones whenever the log can fill the gap.
    pub fn open(dir: &Path) -> Result<Recovery, StoreError> {
        let contents = read_wal(dir)?;
        let committed = contents.base_rows + contents.rows.len() as u64;
        let mut skipped = Vec::new();
        let mut snapshot = None;
        for head in list_snapshot_files(dir)?.iter().rev() {
            if head.phase > committed {
                skipped.push((
                    head.path.clone(),
                    format!(
                        "snapshot at phase {} is ahead of the log ({committed} rows)",
                        head.phase
                    ),
                ));
                continue;
            }
            if head.phase < contents.base_rows {
                skipped.push((
                    head.path.clone(),
                    format!(
                        "snapshot at phase {} predates the compacted base ({})",
                        head.phase, contents.base_rows
                    ),
                ));
                continue;
            }
            match resolve_chain(dir, head) {
                Ok(data) => {
                    snapshot = Some(data);
                    break;
                }
                Err(reason) => skipped.push((head.path.clone(), reason)),
            }
        }
        if snapshot.is_none() && contents.base_rows > 0 {
            return Err(StoreError::corrupt(
                dir,
                format!(
                    "log starts at row {} (earlier segments compacted) but no usable \
                     snapshot covers the missing history",
                    contents.base_rows
                ),
            ));
        }
        Ok(Recovery {
            dir: dir.to_path_buf(),
            sources: contents.sources,
            rows: contents.rows,
            tail: contents.tail,
            snapshot,
            skipped_snapshots: skipped,
            base_rows: contents.base_rows,
            segments: contents.segments,
            skipped_manifests: contents.skipped_manifests,
            valid_len: contents.valid_len,
            resumable: contents.resumable,
            layout: contents.layout,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segmented rather than legacy single-file layout.
    pub fn is_segmented(&self) -> bool {
        matches!(self.layout, ContentsLayout::Segmented { .. })
    }

    /// Phases committed to the log, compacted history included.
    pub fn committed_phases(&self) -> u64 {
        self.base_rows + self.rows.len() as u64
    }

    /// The phase the resumed run will admit next.
    pub fn resume_phase(&self) -> u64 {
        self.committed_phases() + 1
    }

    /// The phase of the usable snapshot (0 = none; replay starts from
    /// the beginning). Always within `[base_rows, committed_phases]`.
    pub fn snapshot_phase(&self) -> u64 {
        self.snapshot.as_ref().map(|s| s.phase).unwrap_or(0)
    }

    /// Rows after the snapshot, which must be replayed through the
    /// engine to rebuild state up to the resume point.
    pub fn tail_rows(&self) -> &[Row] {
        &self.rows[(self.snapshot_phase() - self.base_rows) as usize..]
    }

    /// Reopens the WAL for appending with default [`WalOptions`].
    pub fn append_writer(&self) -> Result<WalWriter, StoreError> {
        self.append_writer_with(WalOptions::default())
    }

    /// Reopens the WAL for appending, truncating any torn tail so new
    /// commits extend the validated prefix. Refuses stores whose
    /// damage is not confined to the final segment.
    pub fn append_writer_with(&self, opts: WalOptions) -> Result<WalWriter, StoreError> {
        let ContentsLayout::Segmented { gen, ref entries } = self.layout else {
            return WalWriter::resume(&self.dir, self.valid_len, self.rows.len() as u64);
        };
        if !self.resumable {
            let last = entries.last().expect("manifest entries are non-empty");
            return Err(StoreError::corrupt(
                crate::wal::segment_path(&self.dir, last.seq),
                "damage before the final segment; refusing to resume",
            ));
        }
        let sealed_bytes = self
            .segments
            .iter()
            .take(self.segments.len().saturating_sub(1))
            .map(|s| s.bytes)
            .sum();
        WalWriter::resume_segmented(
            &self.dir,
            &self.sources,
            gen,
            entries,
            self.committed_phases(),
            self.valid_len,
            sealed_bytes,
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{write_snapshot, Snapshotter};
    use crate::test_dir;
    use crate::wal::segment_path;
    use ec_core::{EngineCheckpoint, VertexState};
    use ec_events::{StateSnapshot, Value};
    use ec_graph::VertexId;

    fn store_with_rows(dir: &Path, n: u64) {
        let mut w = WalWriter::create(dir, &["s".into()]).unwrap();
        for i in 0..n {
            w.append_row(&[Some(Value::Int(i as i64))]).unwrap();
        }
    }

    fn empty_checkpoint(phase: u64) -> EngineCheckpoint {
        EngineCheckpoint {
            phase,
            vertices: vec![],
        }
    }

    #[test]
    fn picks_newest_covered_snapshot() {
        let dir = test_dir("rec-pick");
        store_with_rows(&dir, 10);
        for phase in [2u64, 6] {
            write_snapshot(&dir, &["s".into()], &empty_checkpoint(phase)).unwrap();
        }
        // A snapshot *ahead* of the log (e.g. the log was truncated by
        // a torn tail) must be skipped.
        write_snapshot(&dir, &["s".into()], &empty_checkpoint(12)).unwrap();
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.committed_phases(), 10);
        assert_eq!(rec.resume_phase(), 11);
        assert_eq!(rec.snapshot_phase(), 6);
        assert_eq!(rec.tail_rows().len(), 4);
        assert_eq!(rec.skipped_snapshots.len(), 1);
    }

    #[test]
    fn damaged_snapshot_falls_back_to_older() {
        let dir = test_dir("rec-fallback");
        store_with_rows(&dir, 5);
        write_snapshot(&dir, &["s".into()], &empty_checkpoint(2)).unwrap();
        let newest = write_snapshot(&dir, &["s".into()], &empty_checkpoint(4)).unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.snapshot_phase(), 2);
        assert_eq!(rec.skipped_snapshots.len(), 1);
    }

    #[test]
    fn no_snapshot_replays_everything() {
        let dir = test_dir("rec-nosnap");
        store_with_rows(&dir, 4);
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.snapshot_phase(), 0);
        assert_eq!(rec.tail_rows().len(), 4);
        assert!(rec.snapshot.is_none());
    }

    #[test]
    fn torn_tail_reduces_committed_phases() {
        let dir = test_dir("rec-torn");
        store_with_rows(&dir, 3);
        let path = segment_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.committed_phases(), 2);
        assert!(matches!(rec.tail, WalTail::Torn { .. }));
        // Appending resumes cleanly past the dropped tail.
        let mut w = rec.append_writer().unwrap();
        w.append_row(&[Some(Value::Int(99))]).unwrap();
        drop(w);
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.committed_phases(), 3);
        assert!(matches!(rec.tail, WalTail::Clean));
    }

    fn vertex_state(phase: u64) -> EngineCheckpoint {
        EngineCheckpoint {
            phase,
            vertices: vec![VertexState {
                vertex: VertexId(0),
                module: StateSnapshot::Bytes(vec![phase as u8]),
                latest: vec![],
            }],
        }
    }

    #[test]
    fn delta_chain_resolves_during_recovery() {
        let dir = test_dir("rec-delta");
        store_with_rows(&dir, 6);
        let io = crate::io::real_io();
        let mut snap = Snapshotter::new(10);
        for phase in [2u64, 4] {
            snap.write(&dir, &["s".into()], &vertex_state(phase), &io)
                .unwrap();
        }
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.snapshot_phase(), 4);
        assert_eq!(rec.tail_rows().len(), 2);
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.checkpoint, vertex_state(4), "delta merged over full");
    }

    #[test]
    fn compacted_store_keeps_global_phase_numbering() {
        let dir = test_dir("rec-compacted");
        let mut w = WalWriter::create_with(
            &dir,
            &["s".into()],
            WalOptions {
                segment_bytes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            w.append_row(&[Some(Value::Int(i))]).unwrap();
        }
        write_snapshot(&dir, &["s".into()], &empty_checkpoint(3)).unwrap();
        let report = w.compact(3).unwrap();
        assert!(report.changed());
        drop(w);

        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.base_rows, 3);
        assert_eq!(rec.committed_phases(), 5);
        assert_eq!(rec.resume_phase(), 6);
        assert_eq!(rec.snapshot_phase(), 3);
        assert_eq!(rec.tail_rows().len(), 2);
        // And the store still appends.
        let mut w = rec.append_writer().unwrap();
        w.append_row(&[Some(Value::Int(5))]).unwrap();
        drop(w);
        assert_eq!(Recovery::open(&dir).unwrap().committed_phases(), 6);
    }

    #[test]
    fn compacted_store_without_usable_snapshot_is_corrupt() {
        let dir = test_dir("rec-compacted-nosnap");
        let mut w = WalWriter::create_with(
            &dir,
            &["s".into()],
            WalOptions {
                segment_bytes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            w.append_row(&[Some(Value::Int(i))]).unwrap();
        }
        write_snapshot(&dir, &["s".into()], &empty_checkpoint(3)).unwrap();
        w.compact(3).unwrap();
        drop(w);
        std::fs::remove_file(crate::snapshot::snapshot_path(&dir, 3)).unwrap();

        // Rows 0..3 exist nowhere: a typed error, not a wrong answer.
        assert!(matches!(
            Recovery::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
