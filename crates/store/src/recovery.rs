//! Opening a store and working out where to resume.
//!
//! [`Recovery`] reads the WAL (dropping a torn tail), finds the most
//! recent *valid* snapshot whose phase is covered by the log, and
//! presents the pieces a runtime needs to resume: the committed rows,
//! the checkpoint to restore operator state from, and the tail of rows
//! after it that must be replayed through the engine. Phase numbering
//! is global: if the log holds `W` rows, the run resumes at phase
//! `W + 1` — exactly where the crashed process would have continued.

use crate::error::StoreError;
use crate::snapshot::{list_snapshots, read_snapshot, SnapshotData};
use crate::wal::{read_wal, Row, WalTail, WalWriter};
use std::path::{Path, PathBuf};

/// A store opened for recovery.
#[derive(Debug)]
pub struct Recovery {
    dir: PathBuf,
    /// Live source names (the WAL header).
    pub sources: Vec<String>,
    /// All valid committed rows, phase order (`rows[p]` = phase `p+1`).
    pub rows: Vec<Row>,
    /// State of the WAL tail (clean / torn / corrupt).
    pub tail: WalTail,
    /// The newest usable snapshot, if any.
    pub snapshot: Option<SnapshotData>,
    /// Snapshots present but skipped (unreadable, damaged, or ahead of
    /// the log), as `(path, reason)`.
    pub skipped_snapshots: Vec<(PathBuf, String)>,
    valid_len: u64,
}

impl Recovery {
    /// Opens the store at `dir`.
    ///
    /// Errors only when there is nothing to recover (no WAL, or an
    /// unreadable header). A torn WAL tail is dropped silently — that
    /// is the expected shape of a crash — and damaged snapshots are
    /// skipped in favour of older ones (or none), since the WAL can
    /// always be replayed from phase 1.
    pub fn open(dir: &Path) -> Result<Recovery, StoreError> {
        let contents = read_wal(dir)?;
        let mut skipped = Vec::new();
        let mut snapshot = None;
        for (phase, path) in list_snapshots(dir)?.into_iter().rev() {
            if phase > contents.rows.len() as u64 {
                skipped.push((
                    path,
                    format!(
                        "snapshot at phase {phase} is ahead of the log ({} rows)",
                        contents.rows.len()
                    ),
                ));
                continue;
            }
            match read_snapshot(&path) {
                Ok(data) => {
                    snapshot = Some(data);
                    break;
                }
                Err(e) => skipped.push((path, e.to_string())),
            }
        }
        Ok(Recovery {
            dir: dir.to_path_buf(),
            sources: contents.sources,
            rows: contents.rows,
            tail: contents.tail,
            snapshot,
            skipped_snapshots: skipped,
            valid_len: contents.valid_len,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Phases committed to the log.
    pub fn committed_phases(&self) -> u64 {
        self.rows.len() as u64
    }

    /// The phase the resumed run will admit next.
    pub fn resume_phase(&self) -> u64 {
        self.committed_phases() + 1
    }

    /// The phase of the usable snapshot (0 = none; replay starts from
    /// the beginning).
    pub fn snapshot_phase(&self) -> u64 {
        self.snapshot.as_ref().map(|s| s.phase).unwrap_or(0)
    }

    /// Rows after the snapshot, which must be replayed through the
    /// engine to rebuild state up to the resume point.
    pub fn tail_rows(&self) -> &[Row] {
        &self.rows[self.snapshot_phase() as usize..]
    }

    /// Reopens the WAL for appending, truncating any torn/corrupt tail
    /// so new commits extend the validated prefix.
    pub fn append_writer(&self) -> Result<WalWriter, StoreError> {
        WalWriter::resume(&self.dir, self.valid_len, self.committed_phases())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::test_dir;
    use ec_core::EngineCheckpoint;
    use ec_events::Value;

    fn store_with_rows(dir: &Path, n: u64) {
        let mut w = WalWriter::create(dir, &["s".into()]).unwrap();
        for i in 0..n {
            w.append_row(&[Some(Value::Int(i as i64))]).unwrap();
        }
    }

    fn empty_checkpoint(phase: u64) -> EngineCheckpoint {
        EngineCheckpoint {
            phase,
            vertices: vec![],
        }
    }

    #[test]
    fn picks_newest_covered_snapshot() {
        let dir = test_dir("rec-pick");
        store_with_rows(&dir, 10);
        for phase in [2u64, 6] {
            write_snapshot(&dir, &["s".into()], &empty_checkpoint(phase)).unwrap();
        }
        // A snapshot *ahead* of the log (e.g. the log was truncated by
        // a torn tail) must be skipped.
        write_snapshot(&dir, &["s".into()], &empty_checkpoint(12)).unwrap();
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.committed_phases(), 10);
        assert_eq!(rec.resume_phase(), 11);
        assert_eq!(rec.snapshot_phase(), 6);
        assert_eq!(rec.tail_rows().len(), 4);
        assert_eq!(rec.skipped_snapshots.len(), 1);
    }

    #[test]
    fn damaged_snapshot_falls_back_to_older() {
        let dir = test_dir("rec-fallback");
        store_with_rows(&dir, 5);
        write_snapshot(&dir, &["s".into()], &empty_checkpoint(2)).unwrap();
        let newest = write_snapshot(&dir, &["s".into()], &empty_checkpoint(4)).unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.snapshot_phase(), 2);
        assert_eq!(rec.skipped_snapshots.len(), 1);
    }

    #[test]
    fn no_snapshot_replays_everything() {
        let dir = test_dir("rec-nosnap");
        store_with_rows(&dir, 4);
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.snapshot_phase(), 0);
        assert_eq!(rec.tail_rows().len(), 4);
        assert!(rec.snapshot.is_none());
    }

    #[test]
    fn torn_tail_reduces_committed_phases() {
        let dir = test_dir("rec-torn");
        store_with_rows(&dir, 3);
        let path = crate::wal::wal_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.committed_phases(), 2);
        assert!(matches!(rec.tail, WalTail::Torn { .. }));
        // Appending resumes cleanly past the dropped tail.
        let mut w = rec.append_writer().unwrap();
        w.append_row(&[Some(Value::Int(99))]).unwrap();
        let rec = Recovery::open(&dir).unwrap();
        assert_eq!(rec.committed_phases(), 3);
        assert!(matches!(rec.tail, WalTail::Clean));
    }
}
