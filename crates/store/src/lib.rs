//! # ec-store — durable checkpoint/restore for the streaming runtime
//!
//! The paper's serializability guarantee makes a live run *replayable*:
//! the committed `PhaseScript` (one row of source bins per admitted
//! phase) fed back through the sequential oracle reproduces the history
//! exactly. This crate makes that log **durable**, turning the
//! reproduction into a service that survives restarts:
//!
//! * [`WalWriter`] / [`read_wal`] — a crash-safe, length-prefixed and
//!   CRC-checksummed write-ahead log of committed rows, kept as a
//!   directory of size-bounded segments listed by a monotonically
//!   named manifest. Appends happen at epoch seal, *before* the phase
//!   is admitted: a row the outside world saw accepted is never lost.
//!   Recovery drops a torn tail record (crash mid-append) and reports
//!   real corruption. Pre-segmentation single-file stores (`wal.log`)
//!   are still read and resumed.
//! * [`write_snapshot`] / [`read_snapshot`] / [`Snapshotter`] —
//!   operator state ([`ec_core::EngineCheckpoint`]) at a retired phase
//!   boundary, written atomically; incremental deltas carry only the
//!   vertices that changed, with a full-snapshot fallback every K
//!   increments. Snapshots bound recovery time — and once a segment's
//!   every row is covered by one, [`compact_store`] (or
//!   [`WalWriter::compact`]) drops the segment, bounding disk usage.
//! * [`Recovery`] — opens a store, validates everything, resolves the
//!   newest usable snapshot chain and exposes the log tail to replay.
//!   The resumed run continues at the exact next phase with global
//!   phase numbering intact, compaction included.
//! * [`StoreIo`] / [`FaultIo`] — every mutating file operation goes
//!   through an injectable I/O plane, so tests drive the whole
//!   lifecycle through deterministic fault plans (torn writes, fsync
//!   failures, disk-full, kill-at-Nth-op) and prove recovery at every
//!   crash point.
//!
//! The streaming integration (`StreamRuntimeBuilder::durable`,
//! `StreamRuntime::restore`) lives in `ec-runtime`; this crate owns the
//! on-disk formats and is deliberately independent of the runtime so
//! future subsystems (multi-tenant session stores, sharded logs) can
//! reuse it.
//!
//! ## Store layout
//!
//! ```text
//! <dir>/wal/seg-<seq>.log            append-only row log segments
//! <dir>/wal/manifest-<gen>.ecm       authoritative segment list
//! <dir>/snapshot-<phase>.ecs         full operator state at a phase
//! <dir>/delta-<phase>.ecs            changed vertices since a parent
//! <dir>/wal.log                      legacy single-file log (read-only
//!                                    layout; still appendable)
//! ```

#![warn(missing_docs)]

mod compact;
mod crc;
mod error;
mod io;
mod manifest;
mod recovery;
mod snapshot;
mod wal;

pub use compact::{compact_store, compact_store_with, CompactReport};
pub use crc::crc32;
pub use error::StoreError;
pub use io::{real_io, Fault, FaultIo, FaultPlan, RealIo, StoreFile, StoreIo};
pub use manifest::SegmentEntry;
pub use recovery::Recovery;
pub use snapshot::{
    delta_path, list_snapshot_files, list_snapshots, read_snapshot, snapshot_path, write_snapshot,
    SnapshotData, SnapshotFile, SnapshotKind, SnapshotOutcome, Snapshotter,
};
pub use wal::{
    read_wal, segment_path, store_exists, wal_dir, wal_path, Row, SegmentInfo, WalContents,
    WalOptions, WalTail, WalWriter, DEFAULT_SEGMENT_BYTES, WAL_DIR, WAL_FILE,
};

/// The store directory for tenant session `name` under `root` — the
/// namespacing rule multi-tenant session pools use so every tenant gets
/// an independent WAL + snapshot directory.
///
/// The session name is sanitized into a single path component: ASCII
/// alphanumerics, `.`, `_` and `-` pass through, every other byte
/// (path separators included) becomes `_`, and a name that is empty or
/// all-dots maps to `"_"` — so a hostile or merely unusual tenant name
/// can never escape `root`.
pub fn session_dir(root: &std::path::Path, name: &str) -> std::path::PathBuf {
    let mut component: String = name
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '_' | '-' => c,
            _ => '_',
        })
        .collect();
    if component.is_empty() || component.chars().all(|c| c == '.') {
        component = "_".into();
    }
    root.join(component)
}

/// Fresh per-test directory under the system temp dir (no external
/// tempfile dependency in the offline build).
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ec-store-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod session_dir_tests {
    use super::session_dir;
    use std::path::Path;

    #[test]
    fn plain_names_pass_through() {
        assert_eq!(
            session_dir(Path::new("/root/store"), "tenant-1"),
            Path::new("/root/store/tenant-1")
        );
        assert_eq!(
            session_dir(Path::new("r"), "A.b_c-9"),
            Path::new("r/A.b_c-9")
        );
    }

    #[test]
    fn hostile_names_cannot_escape_root() {
        let root = Path::new("/root/store");
        for (name, want) in [
            ("../evil", ".._evil"),
            ("a/b", "a_b"),
            ("a\\b", "a_b"),
            ("..", "_"),
            (".", "_"),
            ("", "_"),
            ("spaced name", "spaced_name"),
        ] {
            let dir = session_dir(root, name);
            assert_eq!(dir, root.join(want), "{name:?}");
            assert!(dir.parent() == Some(root), "{name:?} escaped root");
        }
    }
}
