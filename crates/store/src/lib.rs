//! # ec-store — durable checkpoint/restore for the streaming runtime
//!
//! The paper's serializability guarantee makes a live run *replayable*:
//! the committed `PhaseScript` (one row of source bins per admitted
//! phase) fed back through the sequential oracle reproduces the history
//! exactly. This crate makes that log **durable**, turning the
//! reproduction into a service that survives restarts:
//!
//! * [`WalWriter`] / [`read_wal`] — a crash-safe, length-prefixed and
//!   CRC-checksummed write-ahead log of committed rows. Appends happen
//!   at epoch seal, *before* the phase is admitted: a row the outside
//!   world saw accepted is never lost. Recovery drops a torn tail
//!   record (crash mid-append) and reports real corruption.
//! * [`write_snapshot`] / [`read_snapshot`] — operator state
//!   ([`ec_core::EngineCheckpoint`]) at a retired phase boundary,
//!   written atomically. Snapshots bound recovery time; the WAL alone
//!   is always sufficient.
//! * [`Recovery`] — opens a store, validates everything, picks the
//!   newest usable snapshot and exposes the log tail to replay. The
//!   resumed run continues at the exact next phase with global phase
//!   numbering intact.
//!
//! The streaming integration (`StreamRuntimeBuilder::durable`,
//! `StreamRuntime::restore`) lives in `ec-runtime`; this crate owns the
//! on-disk formats and is deliberately independent of the runtime so
//! future subsystems (multi-tenant session stores, sharded logs) can
//! reuse it.
//!
//! ## Store layout
//!
//! ```text
//! <dir>/wal.log                      append-only row log
//! <dir>/snapshot-<phase>.ecs         operator state at a retired phase
//! ```

#![warn(missing_docs)]

mod crc;
mod error;
mod recovery;
mod snapshot;
mod wal;

pub use crc::crc32;
pub use error::StoreError;
pub use recovery::Recovery;
pub use snapshot::{list_snapshots, read_snapshot, snapshot_path, write_snapshot, SnapshotData};
pub use wal::{read_wal, wal_path, Row, WalContents, WalTail, WalWriter, WAL_FILE};

/// Fresh per-test directory under the system temp dir (no external
/// tempfile dependency in the offline build).
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ec-store-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
