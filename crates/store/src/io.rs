//! The store's injectable I/O plane.
//!
//! Every mutating filesystem operation the durability layer performs —
//! opening a file, appending bytes, fsyncing, renaming a temp file into
//! place, removing a dead segment — goes through [`StoreIo`]. Production
//! stores use [`RealIo`] (a thin veneer over `std::fs`); the crash/fault
//! test matrix wraps it in [`FaultIo`], which injects failures from a
//! deterministic [`FaultPlan`]: torn writes (a prefix of the buffer
//! lands, then the error), short writes, fsync failures, disk-full, and
//! *kill-at-Nth-op* — from that operation on, every call fails, exactly
//! as if the process had died there. Re-running the same plan replays
//! the same failure, so every recovery path is a reproducible test case
//! rather than a production surprise.
//!
//! Reads stay on plain `std::fs`: recovery always runs in a *new*
//! process whose reads see whatever the dead one managed to persist, so
//! fault injection on the read path would model nothing real.

use std::fmt;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// An open, append-only store file.
pub trait StoreFile: Send {
    /// Appends the whole buffer at the current end of file.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces everything appended so far to stable storage.
    fn fsync(&mut self) -> io::Result<()>;
    /// Truncates the file to `len` bytes and repositions at the new
    /// end — the repair step after a torn or failed append.
    fn truncate_to(&mut self, len: u64) -> io::Result<()>;
}

/// The mutating filesystem operations a store performs.
///
/// Implementations must be shareable across threads (`Arc<dyn
/// StoreIo>`): one store directory has one writer, but snapshots,
/// compaction and the WAL share the same plane.
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Opens `path` for appending. With `create_new` the file must not
    /// already exist; without it the file must exist (positioned at the
    /// current end).
    fn open(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn StoreFile>>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::fs`, no failures beyond the
/// operating system's own.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

/// A shared handle to the production I/O plane.
pub fn real_io() -> Arc<dyn StoreIo> {
    Arc::new(RealIo)
}

struct RealFile {
    file: std::fs::File,
}

impl StoreFile for RealFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }
}

impl StoreIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn open(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn StoreFile>> {
        let mut opts = std::fs::OpenOptions::new();
        opts.write(true);
        if create_new {
            opts.create_new(true);
        }
        let mut file = opts.open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(RealFile { file }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// An append writes roughly half its buffer, then fails — the torn
    /// frame a crash mid-`write` leaves behind. On non-append
    /// operations, a plain injected error.
    TornWrite,
    /// An append writes all but the final byte, then fails — the
    /// nastiest prefix, one byte short of a valid record.
    ShortWrite,
    /// The operation fails without touching the file (fsyncs report
    /// failure with the data still in the page cache; appends write
    /// nothing).
    FsyncFail,
    /// The operation fails with "no space left on device", writing
    /// nothing.
    Enospc,
}

impl Fault {
    fn error(self) -> io::Error {
        match self {
            Fault::TornWrite => io::Error::other("injected torn write"),
            Fault::ShortWrite => io::Error::other("injected short write"),
            Fault::FsyncFail => io::Error::other("injected fsync failure"),
            Fault::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                "no space left on device (injected)",
            ),
        }
    }

    /// Bytes of an `n`-byte append that land before the error.
    fn keep_of(self, n: usize) -> usize {
        match self {
            Fault::TornWrite => n / 2,
            Fault::ShortWrite => n.saturating_sub(1),
            Fault::FsyncFail | Fault::Enospc => 0,
        }
    }
}

/// A deterministic schedule of injected failures, keyed by the global
/// operation index ([`FaultIo`] counts every mutating call).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(u64, Fault)>,
    kill_at: Option<u64>,
}

impl FaultPlan {
    /// An empty plan: the wrapper only counts operations. Useful for a
    /// first pass that measures how many ops a scenario performs, so a
    /// matrix can then kill at every one of them.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects `fault` at operation index `op` (0-based).
    pub fn fail_at(mut self, op: u64, fault: Fault) -> FaultPlan {
        self.faults.push((op, fault));
        self
    }

    /// Kills the process model at operation `op`: that operation and
    /// every later one fail without touching the filesystem.
    pub fn kill_at(mut self, op: u64) -> FaultPlan {
        self.kill_at = Some(op);
        self
    }

    /// A pseudorandom plan derived from `seed`: each operation below
    /// `horizon` has a 1-in-8 chance of a random fault, and half of all
    /// seeds additionally kill at a random point. Same seed, same plan.
    pub fn seeded(seed: u64, horizon: u64) -> FaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        for op in 0..horizon {
            if next() % 8 == 0 {
                let fault = match next() % 4 {
                    0 => Fault::TornWrite,
                    1 => Fault::ShortWrite,
                    2 => Fault::FsyncFail,
                    _ => Fault::Enospc,
                };
                plan.faults.push((op, fault));
            }
        }
        if next() % 2 == 0 && horizon > 0 {
            plan.kill_at = Some(next() % horizon);
        }
        plan
    }

    /// The configured kill point, if any.
    pub fn kill_point(&self) -> Option<u64> {
        self.kill_at
    }

    fn fault_for(&self, op: u64) -> Option<Fault> {
        self.faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }
}

#[derive(Debug)]
struct FaultCore {
    inner: Arc<dyn StoreIo>,
    ops: AtomicU64,
    state: Mutex<FaultState>,
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    killed: bool,
}

impl FaultCore {
    /// Takes the next operation ticket: `Err` if the process model is
    /// dead or dies at this op, `Ok(Some(fault))` if this op faults,
    /// `Ok(None)` for a clean op.
    fn ticket(&self) -> io::Result<Option<Fault>> {
        let op = self.ops.fetch_add(1, Relaxed);
        let mut st = self.state.lock().unwrap();
        if st.killed {
            return Err(io::Error::other("injected kill: process is dead"));
        }
        if st.plan.kill_at.is_some_and(|at| op >= at) {
            st.killed = true;
            return Err(io::Error::other(format!("injected kill at op {op}")));
        }
        Ok(st.plan.fault_for(op))
    }
}

/// A [`StoreIo`] that injects failures from a [`FaultPlan`]. Cloning
/// yields handles to the same plan and operation counter.
///
/// Operations are counted globally across the handle and every file it
/// opened; the plan is keyed by that count, so a scenario replayed with
/// the same plan fails at exactly the same operation. Once the kill
/// point is reached the wrapper behaves like a dead process: every call
/// fails and nothing further reaches the disk.
#[derive(Debug, Clone)]
pub struct FaultIo {
    core: Arc<FaultCore>,
}

impl FaultIo {
    /// Wraps the production I/O plane with `plan`.
    pub fn new(plan: FaultPlan) -> FaultIo {
        FaultIo::wrapping(real_io(), plan)
    }

    /// Wraps an arbitrary inner plane with `plan`.
    pub fn wrapping(inner: Arc<dyn StoreIo>, plan: FaultPlan) -> FaultIo {
        FaultIo {
            core: Arc::new(FaultCore {
                inner,
                ops: AtomicU64::new(0),
                state: Mutex::new(FaultState {
                    plan,
                    killed: false,
                }),
            }),
        }
    }

    /// This handle as the trait object stores take.
    pub fn handle(&self) -> Arc<dyn StoreIo> {
        Arc::new(self.clone())
    }

    /// Mutating operations attempted so far (faulted ones included).
    pub fn ops(&self) -> u64 {
        self.core.ops.load(Relaxed)
    }

    /// Whether the kill point has been reached.
    pub fn killed(&self) -> bool {
        self.core.state.lock().unwrap().killed
    }
}

struct FaultFile {
    inner: Box<dyn StoreFile>,
    core: Arc<FaultCore>,
}

impl StoreFile for FaultFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.core.ticket()? {
            None => self.inner.append(buf),
            Some(fault) => {
                let keep = fault.keep_of(buf.len());
                if keep > 0 {
                    // The prefix lands even though the call fails —
                    // the torn frame recovery must cope with.
                    self.inner.append(&buf[..keep])?;
                }
                Err(fault.error())
            }
        }
    }

    fn fsync(&mut self) -> io::Result<()> {
        match self.core.ticket()? {
            None => self.inner.fsync(),
            Some(fault) => Err(fault.error()),
        }
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        match self.core.ticket()? {
            None => self.inner.truncate_to(len),
            Some(fault) => Err(fault.error()),
        }
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.core.ticket()? {
            None => self.core.inner.create_dir_all(dir),
            Some(fault) => Err(fault.error()),
        }
    }

    fn open(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn StoreFile>> {
        match self.core.ticket()? {
            None => {
                let inner = self.core.inner.open(path, create_new)?;
                Ok(Box::new(FaultFile {
                    inner,
                    core: Arc::clone(&self.core),
                }))
            }
            Some(fault) => Err(fault.error()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.core.ticket()? {
            None => self.core.inner.rename(from, to),
            Some(fault) => Err(fault.error()),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.core.ticket()? {
            None => self.core.inner.remove(path),
            Some(fault) => Err(fault.error()),
        }
    }
}

/// Best-effort removal of a stale file outside the faultable plane
/// (cleanup of our own earlier crash debris; never a durability step).
pub(crate) fn scrub(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn real_io_appends_and_truncates() {
        let dir = test_dir("io-real");
        std::fs::create_dir_all(&dir).unwrap();
        let io = real_io();
        let path = dir.join("f");
        let mut f = io.open(&path, true).unwrap();
        f.append(b"hello world").unwrap();
        f.truncate_to(5).unwrap();
        f.append(b"!").unwrap();
        f.fsync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello!");
        assert!(io.open(&path, true).is_err(), "create_new must refuse");
        io.rename(&path, &dir.join("g")).unwrap();
        io.remove(&dir.join("g")).unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let dir = test_dir("io-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new(FaultPlan::new().fail_at(1, Fault::TornWrite));
        let path = dir.join("f");
        let mut f = io.open(&path, true).unwrap(); // op 0
        assert!(f.append(b"0123456789").is_err()); // op 1: torn
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        f.append(b"ok").unwrap(); // op 2: clean again
        assert_eq!(io.ops(), 3);
    }

    #[test]
    fn kill_fails_everything_after() {
        let dir = test_dir("io-kill");
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new(FaultPlan::new().kill_at(2));
        let path = dir.join("f");
        let mut f = io.open(&path, true).unwrap(); // op 0
        f.append(b"a").unwrap(); // op 1
        assert!(f.append(b"b").is_err()); // op 2: dead
        assert!(f.fsync().is_err());
        assert!(io.remove(&path).is_err());
        assert!(io.killed());
        assert_eq!(std::fs::read(&path).unwrap(), b"a");
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 100);
        let b = FaultPlan::seeded(42, 100);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.kill_at, b.kill_at);
        let c = FaultPlan::seeded(43, 100);
        assert!(a.faults != c.faults || a.kill_at != c.kill_at);
    }
}
