//! Property tests for the WAL: encode → write → read is the identity
//! on arbitrary rows, and recovery never yields rows that were not
//! appended, whatever the truncation point.

use ec_events::Value;
use ec_store::{read_wal, segment_path, Row, WalTail, WalWriter};
use proptest::prelude::*;
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ec-store-props-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An arbitrary `Value` covering every variant, from three raw draws.
fn value_from(tag: u8, num: i64, frac: f64) -> Value {
    match tag % 6 {
        0 => Value::Unit,
        1 => Value::Bool(num % 2 == 0),
        2 => Value::Int(num),
        3 => Value::Float(frac),
        4 => Value::text(format!("s{num}")),
        _ => Value::vector(vec![frac, -frac, num as f64]),
    }
}

fn rows_from(cells: Vec<(u8, i64, f64)>, columns: usize) -> Vec<Row> {
    cells
        .chunks(columns)
        .filter(|chunk| chunk.len() == columns)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(tag, num, frac)| {
                    // tag high bit selects silence, giving sparse rows.
                    (tag < 192).then(|| value_from(tag, num, frac))
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary rows round-trip bit-exactly through the log.
    #[test]
    fn wal_round_trips_arbitrary_rows(
        columns in 1usize..5,
        cells in proptest::collection::vec((0u8..=255, -1000i64..1000, -1e6f64..1e6), 0..120),
    ) {
        let rows = rows_from(cells, columns);
        let dir = test_dir("roundtrip");
        let sources: Vec<String> = (0..columns).map(|i| format!("src{i}")).collect();
        let mut w = WalWriter::create(&dir, &sources).unwrap();
        for row in &rows {
            w.append_row(row).unwrap();
        }
        drop(w);
        let contents = read_wal(&dir).unwrap();
        prop_assert_eq!(contents.sources, sources);
        prop_assert_eq!(contents.tail, WalTail::Clean);
        prop_assert_eq!(contents.rows.len(), rows.len());
        for (got, want) in contents.rows.iter().zip(rows.iter()) {
            prop_assert_eq!(got.len(), want.len());
            for (g, w_) in got.iter().zip(want.iter()) {
                let same = match (g, w_) {
                    (None, None) => true,
                    (Some(a), Some(b)) => a.same_as(b),
                    _ => false,
                };
                prop_assert!(same, "cell mismatch: {:?} vs {:?}", g, w_);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the file anywhere yields a (possibly shorter) valid
    /// prefix of the appended rows — never garbage rows, never an error
    /// once the header is intact.
    #[test]
    fn truncation_yields_a_prefix(
        cells in proptest::collection::vec((0u8..=255, -50i64..50, -10.0f64..10.0), 2..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let rows = rows_from(cells, 2);
        let dir = test_dir("prefix");
        let mut w = WalWriter::create(&dir, &["a".into(), "b".into()]).unwrap();
        for row in &rows {
            w.append_row(row).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        let header_len = {
            let len = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize;
            8 + len
        };
        let cut = header_len + ((full.len() - header_len) as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let contents = read_wal(&dir).unwrap();
        prop_assert!(contents.rows.len() <= rows.len());
        for (got, want) in contents.rows.iter().zip(rows.iter()) {
            prop_assert_eq!(got.len(), want.len());
        }
        prop_assert!(
            !matches!(contents.tail, WalTail::Corrupt { .. }),
            "truncation must never read as corruption: {:?}",
            contents.tail
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
