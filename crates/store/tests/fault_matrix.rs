//! The crash/fault matrix: drive the full store lifecycle — append →
//! commit → rotate → snapshot → compact — through a fault-injecting
//! I/O plane, kill the "process" at every single I/O operation (and
//! under arbitrary seeded fault plans), then recover with healthy I/O
//! and check the outcome against the sequential oracle:
//!
//! * recovery never panics;
//! * every acknowledged row survives; recovered history is a prefix of
//!   the attempted history (`acked <= committed <= attempted`);
//! * recovered rows and the resolved snapshot state match what the
//!   oracle produced for those phases, bit for bit;
//! * the recovered store is live: it accepts appends and round-trips.
//!
//! Kill points cover mid-rotation, mid-compaction and mid-manifest-swap
//! by construction — with one row per segment, every lifecycle step
//! runs on every iteration, so the op counter sweeps through all of
//! them.

use ec_core::{EngineCheckpoint, VertexState};
use ec_events::{StateSnapshot, Value};
use ec_graph::VertexId;
use ec_store::{
    FaultIo, FaultPlan, Recovery, Snapshotter, StoreIo, WalOptions, WalTail, WalWriter,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ec-store-fm-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The oracle's row for `phase`.
fn oracle_row(phase: u64) -> Vec<Option<Value>> {
    vec![Some(Value::Int(phase as i64))]
}

/// The oracle's operator state at `phase`: one vertex whose state
/// never changes, one that tracks the phase — so deltas are exercised.
fn oracle_state(phase: u64) -> EngineCheckpoint {
    EngineCheckpoint {
        phase,
        vertices: vec![
            VertexState {
                vertex: VertexId(0),
                module: StateSnapshot::Bytes(vec![0xAB]),
                latest: vec![],
            },
            VertexState {
                vertex: VertexId(1),
                module: StateSnapshot::Stateless,
                latest: vec![Some(Value::Int(phase as i64))],
            },
        ],
    }
}

struct Outcome {
    /// Rows whose commit returned Ok before the crash.
    acked: u64,
    /// Rows staged (the most recovery may ever report).
    attempted: u64,
}

/// Runs the lifecycle script against `io`: one row per phase with one
/// row per segment (rotation every commit), an incremental snapshot
/// every 2 phases (full every 2nd write), compaction after each
/// successful snapshot. Errors are retried a bounded number of times;
/// persistent failure "crashes the process" (the script stops).
fn drive(dir: &Path, io: Arc<dyn StoreIo>, phases: u64) -> Outcome {
    let sources = vec!["s".to_string()];
    let opts = WalOptions {
        segment_bytes: 1,
        io: io.clone(),
    };
    // Bounded retry on creation too: a crashed first attempt leaves
    // only debris (segment without manifest), which create scrubs.
    let Some(mut w) = (0..3).find_map(|_| WalWriter::create_with(dir, &sources, opts.clone()).ok())
    else {
        return Outcome {
            acked: 0,
            attempted: 0,
        };
    };
    let mut snap = Snapshotter::new(2);
    let mut attempted = 0;
    for phase in 1..=phases {
        w.stage_row(&oracle_row(phase));
        attempted = phase;
        if !(0..3).any(|_| w.commit().is_ok()) {
            break;
        }
        if phase % 2 == 0 && snap.write(dir, &sources, &oracle_state(phase), &io).is_ok() {
            let keep = snap.last_phase().expect("just wrote one");
            let _ = w.compact(keep);
        }
    }
    Outcome {
        acked: w.rows(),
        attempted,
    }
}

/// Reboots the store with healthy I/O and checks it against the oracle.
fn verify(dir: &Path, out: &Outcome, tag: &str) {
    let rec = match Recovery::open(dir) {
        Ok(rec) => rec,
        Err(e) => {
            // A typed error is only acceptable when nothing was ever
            // acknowledged (e.g. killed before the store existed).
            assert_eq!(
                out.acked, 0,
                "{tag}: {} acked rows lost to recovery error: {e}",
                out.acked
            );
            return;
        }
    };
    let committed = rec.committed_phases();
    assert!(
        out.acked <= committed && committed <= out.attempted,
        "{tag}: committed {committed} outside [{}, {}]",
        out.acked,
        out.attempted
    );
    assert!(
        !matches!(rec.tail, WalTail::Corrupt { .. }),
        "{tag}: crash artifacts must read as clean/torn, got {:?}",
        rec.tail
    );
    // Every recovered row is the oracle's row for its global phase.
    for (i, row) in rec.rows.iter().enumerate() {
        let phase = rec.base_rows + i as u64 + 1;
        assert_eq!(row, &oracle_row(phase), "{tag}: row at phase {phase}");
    }
    // The resolved snapshot chain reproduces the oracle's state.
    if let Some(snap) = &rec.snapshot {
        assert!(snap.phase <= committed, "{tag}: snapshot ahead of log");
        assert_eq!(
            snap.checkpoint,
            oracle_state(snap.phase),
            "{tag}: snapshot chain diverged from oracle at phase {}",
            snap.phase
        );
        assert_eq!(
            rec.tail_rows().len() as u64,
            committed - snap.phase,
            "{tag}: replay tail length"
        );
    } else {
        assert_eq!(rec.base_rows, 0, "{tag}: compacted store needs a snapshot");
    }
    // The recovered store is fully live: append, re-open, re-verify.
    let mut w = rec
        .append_writer()
        .unwrap_or_else(|e| panic!("{tag}: resume failed: {e}"));
    w.append_row(&oracle_row(committed + 1))
        .unwrap_or_else(|e| panic!("{tag}: append after resume failed: {e}"));
    drop(w);
    let rec = Recovery::open(dir).unwrap_or_else(|e| panic!("{tag}: re-open failed: {e}"));
    assert_eq!(rec.committed_phases(), committed + 1, "{tag}: post-resume");
}

#[test]
fn clean_run_commits_every_phase_and_stays_bounded() {
    let dir = test_dir("clean");
    let probe = FaultIo::new(FaultPlan::new());
    let out = drive(&dir, probe.handle(), 8);
    assert_eq!(out.acked, 8);
    let rec = Recovery::open(&dir).unwrap();
    assert_eq!(rec.committed_phases(), 8);
    // Compaction kept the log bounded: segments at or below the last
    // snapshot (phase 8) are gone.
    assert_eq!(rec.base_rows, 7, "all but the active segment compacted");
    assert_eq!(rec.segments.len(), 1);
    verify(&dir, &out, "clean");
}

#[test]
fn kill_at_every_op_recovers_to_oracle() {
    // Phase A: count the ops a clean run takes.
    let dir = test_dir("kill-probe");
    let probe = FaultIo::new(FaultPlan::new());
    let out = drive(&dir, probe.handle(), 8);
    assert_eq!(out.acked, 8);
    let total_ops = probe.ops();
    assert!(
        total_ops > 40,
        "the script should sweep many ops: {total_ops}"
    );

    // Phase B: kill the process at every single one of them.
    for kill_at in 0..total_ops {
        let dir = test_dir(&format!("kill-{kill_at}"));
        let io = FaultIo::new(FaultPlan::new().kill_at(kill_at));
        let out = drive(&dir, io.handle(), 8);
        assert!(io.killed(), "kill point {kill_at} was never reached");
        verify(&dir, &out, &format!("kill at op {kill_at}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn single_fault_at_every_op_is_survivable() {
    use ec_store::Fault;
    let dir = test_dir("fault-probe");
    let probe = FaultIo::new(FaultPlan::new());
    let out = drive(&dir, probe.handle(), 6);
    assert_eq!(out.acked, 6);
    let total_ops = probe.ops();

    for fault in [
        Fault::TornWrite,
        Fault::ShortWrite,
        Fault::FsyncFail,
        Fault::Enospc,
    ] {
        for op in 0..total_ops {
            let dir = test_dir(&format!("fault-{fault:?}-{op}"));
            let io = FaultIo::new(FaultPlan::new().fail_at(op, fault));
            let out = drive(&dir, io.handle(), 6);
            // One transient fault is always absorbed by retry: the run
            // must reach the end with every row acknowledged.
            assert_eq!(
                out.acked, 6,
                "single {fault:?} at op {op} was not absorbed by retry"
            );
            verify(&dir, &out, &format!("{fault:?} at op {op}"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary seeded fault plans — random mixes of torn writes,
    /// short writes, fsync failures, disk-full, with a kill point on
    /// half the seeds — never lose an acknowledged row, never produce
    /// a wrong answer, never panic.
    #[test]
    fn seeded_fault_plans_recover_or_fail_typed(seed in 0u64..1 << 48) {
        let dir = test_dir(&format!("seed-{seed}"));
        let io = FaultIo::new(FaultPlan::seeded(seed, 256));
        let out = drive(&dir, io.handle(), 10);
        verify(&dir, &out, &format!("seed {seed}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
