//! Byte-compatibility pin for the WAL framing.
//!
//! `fixtures/wal_v1.bin` was written by the group-commit staging path
//! *before* the zero-copy scratch-buffer rework and is committed to the
//! repository. Two guarantees are pinned here:
//!
//! 1. the current writer, staging the same epochs, produces a
//!    byte-identical file — the framing never drifts, so stores written
//!    by any revision restore under any other;
//! 2. the committed fixture replays through the `Recovery` loader
//!    exactly — an *old* store opened by the *new* code yields the same
//!    rows, tail state and resume point.
//!
//! If this test fails, the on-disk format changed: that is a recovery
//! break for every existing store, not a refactor detail.

use ec_events::Value;
use ec_store::{read_wal, Recovery, WalTail, WalWriter};
use std::path::PathBuf;

const FIXTURE: &str = "fixtures/wal_v1.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(FIXTURE)
}

fn fixture_sources() -> Vec<String> {
    vec!["temp".into(), "pressure".into(), "alerts".into()]
}

/// Rows covering every `Value` variant, silent bins, and an empty
/// epoch, staged across several group commits (two epochs of three
/// rows, one of one) — the exact shapes the runtime's seal produces.
fn fixture_epochs() -> Vec<Vec<Vec<Option<Value>>>> {
    vec![
        vec![
            vec![Some(Value::Float(21.5)), Some(Value::Int(101325)), None],
            vec![
                Some(Value::Float(-3.25)),
                None,
                Some(Value::text("over-limit")),
            ],
            vec![None, None, None],
        ],
        vec![
            vec![
                Some(Value::vector(vec![1.0, -2.5, f64::NAN])),
                Some(Value::Bool(true)),
                Some(Value::Unit),
            ],
            vec![None, Some(Value::Float(99.875)), Some(Value::text(""))],
            vec![Some(Value::Int(i64::MIN)), Some(Value::Int(i64::MAX)), None],
        ],
        vec![vec![
            None,
            Some(Value::Bool(false)),
            Some(Value::vector(Vec::new())),
        ]],
    ]
}

fn write_store(dir: &std::path::Path) {
    let mut w = WalWriter::create(dir, &fixture_sources()).unwrap();
    for epoch in fixture_epochs() {
        for row in &epoch {
            w.stage_row(row);
        }
        w.commit().unwrap();
    }
    w.sync().unwrap();
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ec-store-fixture-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn staging_path_reproduces_committed_fixture_bytes() {
    let dir = test_dir("write");
    write_store(&dir);
    // The fixture predates segmentation, but a segment's bytes are
    // identical to the old single file: same header, same frames.
    let written = std::fs::read(ec_store::segment_path(&dir, 1)).unwrap();

    let fixture = fixture_path();
    if std::env::var_os("EC_BLESS_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture.parent().unwrap()).unwrap();
        std::fs::write(&fixture, &written).unwrap();
        panic!(
            "blessed {} — rerun without EC_BLESS_FIXTURES",
            fixture.display()
        );
    }
    let committed = std::fs::read(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); see module docs",
            fixture.display()
        )
    });
    assert_eq!(
        written, committed,
        "WAL bytes diverged from the committed v1 fixture: the on-disk \
         framing changed, which breaks recovery of existing stores"
    );
}

#[test]
fn committed_fixture_replays_under_recovery_loader() {
    // Copy the committed fixture into a store directory and open it the
    // way a restored runtime would.
    let dir = test_dir("replay");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(fixture_path(), ec_store::wal_path(&dir)).unwrap();

    let expected_rows: Vec<Vec<Option<Value>>> = fixture_epochs().into_iter().flatten().collect();

    let contents = read_wal(&dir).unwrap();
    assert_eq!(contents.sources, fixture_sources());
    assert_eq!(contents.tail, WalTail::Clean);
    assert_eq!(contents.rows.len(), expected_rows.len());
    for (got, want) in contents.rows.iter().zip(&expected_rows) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            // NaN round-trips by bits; PartialEq would reject it.
            match (g, w) {
                (Some(gv), Some(wv)) => assert!(gv.same_as(wv), "got {gv:?}, want {wv:?}"),
                (None, None) => {}
                _ => panic!("bin mismatch: got {g:?}, want {w:?}"),
            }
        }
    }

    let rec = Recovery::open(&dir).unwrap();
    assert_eq!(rec.committed_phases(), expected_rows.len() as u64);
    assert_eq!(rec.resume_phase(), expected_rows.len() as u64 + 1);
    assert_eq!(rec.tail_rows().len(), expected_rows.len());

    // And the store stays appendable: resuming over the fixture's clean
    // tail then appending keeps the log valid.
    let mut w = rec.append_writer().unwrap();
    w.append_row(&[Some(Value::Int(7)), None, None]).unwrap();
    let contents = read_wal(&dir).unwrap();
    assert_eq!(contents.rows.len(), expected_rows.len() + 1);
    assert_eq!(contents.tail, WalTail::Clean);
}
