//! Graph partitioning for multi-machine execution (§6 future work).
//!
//! The paper's §6: "We are investigating various ways of using networks
//! of multiprocessor machines … including methods for partitioning the
//! computation graph across multiple machines."
//!
//! This module partitions a graph into `k` blocks that are *contiguous
//! in schedule order*. Contiguity gives the crucial structural property
//! for distributed execution: since every edge goes from a lower to a
//! higher schedule index, **all cross-partition edges point from a
//! lower-numbered partition to a higher-numbered one** — partitions
//! form a pipeline with acyclic inter-machine traffic, and each machine
//! can run the single-machine algorithm locally while relaying boundary
//! messages downstream (see `ec-core`'s distributed simulation).
//!
//! Two contiguous strategies are provided: balanced by vertex count
//! ([`partition_balanced`]) and cut-minimising over contiguous
//! boundaries by dynamic programming ([`partition_min_cut`]), plus
//! quality metrics ([`PartitionQuality`]).

use crate::dag::{Dag, VertexId};
use crate::numbering::Numbering;

/// An assignment of vertices to `k` partitions (machines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `part_of[vertex.index()]` = partition id in `0..k`.
    part_of: Vec<u32>,
    /// Number of partitions.
    k: u32,
}

impl Partition {
    /// Builds from an explicit assignment (validated against `k`).
    pub fn new(part_of: Vec<u32>, k: u32) -> Partition {
        assert!(k >= 1, "need at least one partition");
        assert!(part_of.iter().all(|&p| p < k), "partition ids must be < k");
        Partition { part_of, k }
    }

    /// Partition of a vertex.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.part_of[v.index()]
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Vertices of one partition, in vertex-id order.
    pub fn members(&self, part: u32) -> Vec<VertexId> {
        self.part_of
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == part)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// Sizes of all partitions.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k as usize];
        for &p in &self.part_of {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// True if every edge goes from a lower-or-equal partition to a
    /// higher-or-equal one (required for pipeline-distributed
    /// execution).
    pub fn is_forward(&self, dag: &Dag) -> bool {
        dag.edges().all(|(a, b)| self.part_of(a) <= self.part_of(b))
    }

    /// Edges crossing partition boundaries.
    pub fn cross_edges(&self, dag: &Dag) -> Vec<(VertexId, VertexId)> {
        dag.edges()
            .filter(|&(a, b)| self.part_of(a) != self.part_of(b))
            .collect()
    }

    /// Quality metrics.
    pub fn quality(&self, dag: &Dag) -> PartitionQuality {
        let sizes = self.sizes();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let ideal = (dag.vertex_count() as f64 / self.k as f64).max(1.0);
        PartitionQuality {
            edge_cut: self.cross_edges(dag).len(),
            imbalance: max as f64 / ideal,
            sizes,
        }
    }
}

/// Edge-cut and balance of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of cross-partition edges (≈ inter-machine message
    /// channels).
    pub edge_cut: usize,
    /// Largest partition size over the ideal size (1.0 = perfectly
    /// balanced).
    pub imbalance: f64,
    /// Vertices per partition.
    pub sizes: Vec<usize>,
}

/// Splits schedule order into `k` contiguous blocks of (nearly) equal
/// size. `O(V)`; balanced by construction, cut not optimised.
pub fn partition_balanced(dag: &Dag, numbering: &Numbering, k: u32) -> Partition {
    let n = dag.vertex_count();
    assert!(k >= 1 && (k as usize) <= n.max(1), "1 ≤ k ≤ N required");
    let mut part_of = vec![0u32; n];
    for (pos, v) in numbering.schedule_order().enumerate() {
        // Proportional block assignment.
        let part = ((pos as u64 * k as u64) / n as u64) as u32;
        part_of[v.index()] = part.min(k - 1);
    }
    Partition::new(part_of, k)
}

/// Chooses the `k − 1` contiguous boundaries in schedule order that
/// minimise `edge_cut + λ·imbalance_penalty` by dynamic programming
/// over boundary positions. `O(N²·k)` with `O(N)` cut evaluation
/// amortised via prefix counts — fine for the graph sizes a single
/// fusion engine hosts.
pub fn partition_min_cut(dag: &Dag, numbering: &Numbering, k: u32, lambda: f64) -> Partition {
    let n = dag.vertex_count();
    assert!(k >= 1 && (k as usize) <= n.max(1), "1 ≤ k ≤ N required");
    if k == 1 {
        return Partition::new(vec![0; n], 1);
    }
    // Work in schedule positions 0..n. cut(a, b) = number of edges from
    // [0, b) into [b, n) minus those entirely inside previous segments…
    // Simpler: cost of a segment boundary at position b = edges that
    // cross it, i.e. edges (u, w) with pos(u) < b ≤ pos(w). Total cut of
    // a set of boundaries = Σ over edges of (number of boundaries the
    // edge spans)… but the true edge-cut counts each crossing edge
    // once. For contiguous partitions an edge from segment i to segment
    // j > i crosses j − i boundaries yet contributes 1 to the cut.
    // We therefore optimise the *boundary-crossing* relaxation (an
    // upper bound on cut that is exact when edges span one boundary)
    // and report the true cut in the result's quality metrics.
    let pos_of = |v: VertexId| (numbering.index_of(v) - 1) as usize;
    // crossings[b] = # edges with pos(u) < b ≤ pos(w), for b in 1..n,
    // built as a signed difference array then prefix-summed.
    let mut diff = vec![0i64; n + 2];
    for (u, w) in dag.edges() {
        let (a, b) = (pos_of(u), pos_of(w));
        // Edge spans boundaries a+1 ..= b.
        diff[a + 1] += 1;
        diff[b + 1] -= 1;
    }
    let mut crossings = vec![0i64; n + 1];
    for b in 1..=n {
        crossings[b] = crossings[b - 1] + diff[b];
        debug_assert!(crossings[b] >= 0);
    }
    // dp[j][e] = min cost splitting positions [0, e) into j segments.
    let ideal = n as f64 / k as f64;
    let seg_penalty = |start: usize, end: usize| -> f64 {
        let size = (end - start) as f64;
        lambda * ((size - ideal).abs() / ideal)
    };
    let kk = k as usize;
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; kk + 1];
    let mut choice = vec![vec![0usize; n + 1]; kk + 1];
    dp[0][0] = 0.0;
    for j in 1..=kk {
        for e in j..=n {
            for s in (j - 1)..e {
                if dp[j - 1][s] == inf {
                    continue;
                }
                let boundary_cost = if s == 0 { 0.0 } else { crossings[s] as f64 };
                let cost = dp[j - 1][s] + boundary_cost + seg_penalty(s, e);
                if cost < dp[j][e] {
                    dp[j][e] = cost;
                    choice[j][e] = s;
                }
            }
        }
    }
    // Recover boundaries.
    let mut bounds = Vec::with_capacity(kk + 1);
    let mut e = n;
    for j in (1..=kk).rev() {
        bounds.push(e);
        e = choice[j][e];
    }
    bounds.push(0);
    bounds.reverse();
    let mut part_of = vec![0u32; n];
    for (seg, w) in bounds.windows(2).enumerate() {
        for pos in w[0]..w[1] {
            let v = numbering.vertex_at(pos as u32 + 1);
            part_of[v.index()] = seg as u32;
        }
    }
    Partition::new(part_of, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn setup(dag: &Dag) -> Numbering {
        Numbering::compute(dag)
    }

    #[test]
    fn balanced_partition_is_forward_and_balanced() {
        let dag = generators::layered(6, 4, 2, 3);
        let numbering = setup(&dag);
        for k in [1u32, 2, 3, 4] {
            let p = partition_balanced(&dag, &numbering, k);
            assert!(p.is_forward(&dag), "k={k} not forward");
            let q = p.quality(&dag);
            assert!(q.imbalance <= 1.2, "k={k} imbalance {}", q.imbalance);
            assert_eq!(q.sizes.iter().sum::<usize>(), dag.vertex_count());
        }
    }

    #[test]
    fn min_cut_is_forward_and_never_worse_on_chain() {
        // On a chain every boundary cuts exactly one edge, so any k-way
        // contiguous partition has cut k − 1; min-cut must match.
        let dag = generators::chain(12);
        let numbering = setup(&dag);
        let p = partition_min_cut(&dag, &numbering, 3, 0.5);
        assert!(p.is_forward(&dag));
        assert_eq!(p.quality(&dag).edge_cut, 2);
    }

    #[test]
    fn min_cut_prefers_narrow_waists() {
        // Two fans joined by a single edge: the obvious 2-way split
        // cuts exactly that edge.
        let mut dag = Dag::new();
        let a_src = dag.add_vertices(4);
        let a_hub = dag.add_vertex("hub-a");
        for &s in &a_src {
            dag.add_edge(s, a_hub).unwrap();
        }
        let b_hub = dag.add_vertex("hub-b");
        dag.add_edge(a_hub, b_hub).unwrap(); // the waist
        let b_out = dag.add_vertices(4);
        for &t in &b_out {
            dag.add_edge(b_hub, t).unwrap();
        }
        let numbering = setup(&dag);
        let p = partition_min_cut(&dag, &numbering, 2, 0.1);
        assert!(p.is_forward(&dag));
        assert_eq!(p.quality(&dag).edge_cut, 1, "{:?}", p.quality(&dag));
        assert_ne!(p.part_of(a_hub), p.part_of(b_hub));
    }

    #[test]
    fn min_cut_respects_balance_pressure() {
        // With huge λ the min-cut partition degenerates to the balanced
        // one's sizes even if the cut worsens.
        let dag = generators::layered(4, 4, 2, 9);
        let numbering = setup(&dag);
        let p = partition_min_cut(&dag, &numbering, 4, 1e6);
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s == 4), "{sizes:?}");
    }

    #[test]
    fn members_and_sizes_consistent() {
        let dag = generators::diamond();
        let numbering = setup(&dag);
        let p = partition_balanced(&dag, &numbering, 2);
        let all: usize = (0..2).map(|k| p.members(k).len()).sum();
        assert_eq!(all, 4);
        for part in 0..2 {
            for v in p.members(part) {
                assert_eq!(p.part_of(v), part);
            }
        }
    }

    #[test]
    fn k_one_is_trivial() {
        let dag = generators::chain(5);
        let numbering = setup(&dag);
        for p in [
            partition_balanced(&dag, &numbering, 1),
            partition_min_cut(&dag, &numbering, 1, 1.0),
        ] {
            assert_eq!(p.quality(&dag).edge_cut, 0);
            assert_eq!(p.sizes(), vec![5]);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_k_larger_than_n() {
        let dag = generators::chain(3);
        let numbering = setup(&dag);
        let _ = partition_balanced(&dag, &numbering, 5);
    }

    #[test]
    #[should_panic]
    fn partition_new_validates_ids() {
        let _ = Partition::new(vec![0, 2], 2);
    }
}
