//! # ec-graph — computation-graph substrate
//!
//! This crate provides the directed-acyclic-graph substrate used by the
//! serializable Δ-dataflow engine of Zimmerman & Chandy, *A Parallel
//! Algorithm for Correlating Event Streams* (IPPS 2005).
//!
//! The paper models a data-fusion computation as an acyclic directed graph
//! in which vertices are computational modules and edges carry messages
//! (§2). The scheduling algorithm of §3 requires a vertex numbering that is
//! topologically sorted **and** satisfies an additional *serial-prefix*
//! restriction: for every `v`, the set `S(v)` of vertices all of whose
//! predecessors are indexed `v` or lower must be exactly `{1, …, m(v)}`
//! (§3.1.1). This crate provides:
//!
//! * [`Dag`] — a mutable DAG builder with cycle detection ([`dag`]).
//! * [`Numbering`] — construction (Kahn's algorithm with a FIFO ready
//!   queue) and independent verification of numberings satisfying the
//!   paper's restriction, together with the `m(v)` table ([`numbering`]).
//! * Topology analysis: levels, width, critical path ([`topology`]).
//! * Graph generators for the paper's figures and for synthetic workloads
//!   ([`generators`]).
//! * Graphviz DOT export ([`dot`]).
//!
//! ## Quick example
//!
//! ```
//! use ec_graph::{Dag, Numbering};
//!
//! let mut dag = Dag::new();
//! let a = dag.add_vertex("sensor-a");
//! let b = dag.add_vertex("sensor-b");
//! let f = dag.add_vertex("fuse");
//! dag.add_edge(a, f).unwrap();
//! dag.add_edge(b, f).unwrap();
//!
//! let numbering = Numbering::compute(&dag);
//! assert!(numbering.verify(&dag).is_ok());
//! // Sources occupy the first indices; m(0) is the number of sources.
//! assert_eq!(numbering.m(0), 2);
//! ```

#![warn(missing_docs)]

pub mod dag;
pub mod dot;
pub mod error;
pub mod generators;
pub mod numbering;
pub mod partition;
pub mod topology;

pub use dag::{Dag, EdgeId, VertexId};
pub use error::GraphError;
pub use numbering::{Numbering, NumberingError};
pub use partition::{partition_balanced, partition_min_cut, Partition, PartitionQuality};
pub use topology::Topology;
