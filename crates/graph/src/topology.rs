//! Structural analysis of computation graphs.
//!
//! The scheduler's achievable pipelining (§3.1, Figure 1) is bounded by
//! structural properties of the graph: its depth (number of levels)
//! bounds how many phases can be in flight simultaneously, and its width
//! bounds how many vertices of a single phase can run concurrently.
//! [`Topology`] computes these once, up front.

use crate::dag::{Dag, VertexId};
use crate::numbering::Numbering;

/// Precomputed structural facts about a [`Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `level[v]` = length of the longest path from any source to `v`
    /// (sources have level 0).
    levels: Vec<u32>,
    /// Number of distinct levels (= depth of the graph).
    depth: u32,
    /// Number of vertices at each level.
    level_widths: Vec<u32>,
    /// Vertices on one longest source→sink path.
    critical_path: Vec<VertexId>,
}

impl Topology {
    /// Analyses `dag`. `O(V + E)` apart from critical-path extraction.
    pub fn analyze(dag: &Dag) -> Topology {
        let n = dag.vertex_count();
        if n == 0 {
            return Topology {
                levels: Vec::new(),
                depth: 0,
                level_widths: Vec::new(),
                critical_path: Vec::new(),
            };
        }
        let numbering = Numbering::compute(dag);
        let mut levels = vec![0u32; n];
        // Process in schedule order: all predecessors come first.
        for v in numbering.schedule_order() {
            let lvl = dag
                .preds(v)
                .iter()
                .map(|&p| levels[p.index()] + 1)
                .max()
                .unwrap_or(0);
            levels[v.index()] = lvl;
        }
        let depth = levels.iter().copied().max().unwrap_or(0) + 1;
        let mut level_widths = vec![0u32; depth as usize];
        for &l in &levels {
            level_widths[l as usize] += 1;
        }

        // Critical path: walk back from a deepest vertex through a
        // predecessor one level shallower.
        let mut path = Vec::new();
        let deepest = dag
            .vertices()
            .max_by_key(|&v| levels[v.index()])
            .expect("non-empty");
        let mut cur = deepest;
        path.push(cur);
        while levels[cur.index()] > 0 {
            let want = levels[cur.index()] - 1;
            let prev = dag
                .preds(cur)
                .iter()
                .copied()
                .find(|&p| levels[p.index()] == want)
                .expect("longest-path predecessor must exist");
            path.push(prev);
            cur = prev;
        }
        path.reverse();

        Topology {
            levels,
            depth,
            level_widths,
            critical_path: path,
        }
    }

    /// Longest-path level of `v` (sources are level 0).
    #[inline]
    pub fn level(&self, v: VertexId) -> u32 {
        self.levels[v.index()]
    }

    /// Depth: number of levels. The maximum number of phases that can be
    /// pipelined simultaneously is bounded by this (Figure 1 shows a
    /// graph of depth ≥ 5 running 5 concurrent phases).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of vertices at each level, indexed by level.
    #[inline]
    pub fn level_widths(&self) -> &[u32] {
        &self.level_widths
    }

    /// Maximum level width (parallelism available within one phase).
    pub fn max_width(&self) -> u32 {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }

    /// One longest source→sink path (by vertex count).
    #[inline]
    pub fn critical_path(&self) -> &[VertexId] {
        &self.critical_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_graph() {
        let t = Topology::analyze(&Dag::new());
        assert_eq!(t.depth(), 0);
        assert!(t.critical_path().is_empty());
        assert_eq!(t.max_width(), 0);
    }

    #[test]
    fn chain_levels() {
        let dag = generators::chain(4);
        let t = Topology::analyze(&dag);
        assert_eq!(t.depth(), 4);
        for v in dag.vertices() {
            assert_eq!(t.level(v), v.0);
        }
        assert_eq!(t.level_widths(), &[1, 1, 1, 1]);
        assert_eq!(t.critical_path().len(), 4);
        assert_eq!(t.max_width(), 1);
    }

    #[test]
    fn diamond_levels() {
        let dag = generators::diamond();
        let t = Topology::analyze(&dag);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.level_widths(), &[1, 2, 1]);
        assert_eq!(t.max_width(), 2);
        assert_eq!(t.critical_path().len(), 3);
    }

    #[test]
    fn layered_depth_matches_layers() {
        let dag = generators::layered(6, 3, 2, 5);
        let t = Topology::analyze(&dag);
        assert_eq!(t.depth(), 6);
        assert_eq!(
            t.level_widths().iter().sum::<u32>() as usize,
            dag.vertex_count()
        );
    }

    #[test]
    fn fig1_supports_five_phase_pipeline() {
        // Figure 1's 10-node graph runs 5 phases concurrently; its depth
        // must therefore be at least 5.
        let dag = generators::fig1_graph();
        let t = Topology::analyze(&dag);
        assert!(t.depth() >= 5, "depth {} < 5", t.depth());
        assert_eq!(dag.vertex_count(), 10);
    }

    #[test]
    fn critical_path_is_a_real_path() {
        let dag = generators::layered(5, 4, 2, 11);
        let t = Topology::analyze(&dag);
        let p = t.critical_path();
        assert_eq!(p.len() as u32, t.depth());
        for w in p.windows(2) {
            assert!(dag.succs(w[0]).contains(&w[1]));
        }
    }
}
