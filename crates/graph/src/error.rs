//! Error types for graph construction and validation.

use crate::dag::VertexId;
use std::fmt;

/// Errors raised while building or validating a computation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint of an edge does not name an existing vertex.
    UnknownVertex(VertexId),
    /// Self-loops are not permitted in an acyclic computation graph.
    SelfLoop(VertexId),
    /// The edge already exists; the model has at most one channel per
    /// ordered vertex pair.
    DuplicateEdge(VertexId, VertexId),
    /// Adding the edge would create a directed cycle (the paper requires
    /// the computation graph to be acyclic, §2).
    WouldCycle(VertexId, VertexId),
    /// The graph is empty where a non-empty graph is required.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v:?}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v:?}"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge {u:?} -> {v:?}")
            }
            GraphError::WouldCycle(u, v) => {
                write!(f, "edge {u:?} -> {v:?} would create a cycle")
            }
            GraphError::Empty => write!(f, "graph is empty"),
        }
    }
}

impl std::error::Error for GraphError {}
