//! Graph generators: the paper's figure graphs and synthetic families.
//!
//! The synthetic families (chains, layered graphs, random DAGs, trees)
//! drive the benchmark harness; the `fig*` constructors reproduce the
//! exact graphs of the paper's figures so tests and benches can reference
//! them by name.

use crate::dag::{Dag, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simple chain `n0 -> n1 -> … -> n(k-1)`.
///
/// Chains maximise pipeline depth and minimise per-phase parallelism —
/// the best case for multi-phase pipelining and the worst case for
/// within-phase parallelism.
pub fn chain(k: usize) -> Dag {
    let mut dag = Dag::with_capacity(k);
    let vs = dag.add_vertices(k);
    for w in vs.windows(2) {
        dag.add_edge(w[0], w[1]).expect("chain edges are acyclic");
    }
    dag
}

/// The classic 4-vertex diamond: one source fanning out to two middle
/// vertices that join at one sink.
pub fn diamond() -> Dag {
    let mut dag = Dag::with_capacity(4);
    let vs = dag.add_vertices(4);
    dag.add_edge(vs[0], vs[1]).unwrap();
    dag.add_edge(vs[0], vs[2]).unwrap();
    dag.add_edge(vs[1], vs[3]).unwrap();
    dag.add_edge(vs[2], vs[3]).unwrap();
    dag
}

/// A layered graph: `layers` layers of `width` vertices; each non-source
/// vertex has `fan_in` predecessors drawn from the previous layer
/// (deterministically seeded).
///
/// Layered graphs model the "network of models" shape of §1: sensors feed
/// intermediate models feed sink conditions. Both pipeline depth and
/// per-phase width are tunable.
pub fn layered(layers: usize, width: usize, fan_in: usize, seed: u64) -> Dag {
    assert!(layers >= 1 && width >= 1, "need at least one vertex");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dag = Dag::with_capacity(layers * width);
    let mut prev: Vec<VertexId> = Vec::new();
    for layer in 0..layers {
        let cur: Vec<VertexId> = (0..width)
            .map(|i| dag.add_vertex(format!("l{layer}w{i}")))
            .collect();
        if layer > 0 {
            for &v in &cur {
                let fan = fan_in.min(prev.len()).max(1);
                // Sample distinct predecessors from the previous layer.
                let mut picks: Vec<usize> = (0..prev.len()).collect();
                for f in 0..fan {
                    let j = rng.gen_range(f..picks.len());
                    picks.swap(f, j);
                    dag.add_edge(prev[picks[f]], v)
                        .expect("layered edges are forward-only");
                }
            }
        }
        prev = cur;
    }
    dag
}

/// A complete binary in-tree of the given `depth` (leaves are sources,
/// the root is the unique sink). Total vertices: `2^depth - 1`.
///
/// Trees model aggregation/fusion hierarchies (e.g. county → state →
/// national disease-incidence rollups from §1).
pub fn binary_in_tree(depth: usize) -> Dag {
    assert!(depth >= 1);
    let n = (1usize << depth) - 1;
    let mut dag = Dag::with_capacity(n);
    let vs = dag.add_vertices(n);
    // Heap layout: vertex i has children 2i+1, 2i+2; edges run child→parent.
    for i in 0..n {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        if l < n {
            dag.add_edge(vs[l], vs[i]).unwrap();
        }
        if r < n {
            dag.add_edge(vs[r], vs[i]).unwrap();
        }
    }
    dag
}

/// A random DAG on `n` vertices: each ordered pair `(i, j)` with `i < j`
/// (in insertion order) is an edge with probability `p`. Isolated
/// non-source vertices are avoided by wiring each parentless non-first
/// vertex to a random earlier vertex when `connect` is set.
pub fn random_dag(n: usize, p: f64, connect: bool, seed: u64) -> Dag {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dag = Dag::with_capacity(n);
    let vs = dag.add_vertices(n);
    for j in 1..n {
        let mut has_pred = false;
        for i in 0..j {
            if rng.gen_bool(p) {
                dag.add_edge(vs[i], vs[j]).expect("forward edge");
                has_pred = true;
            }
        }
        if connect && !has_pred {
            let i = rng.gen_range(0..j);
            dag.add_edge(vs[i], vs[j]).expect("forward edge");
        }
    }
    dag
}

/// A "fan" graph: `sources` source vertices all feeding a single fusion
/// vertex, which feeds `sinks` sink vertices. Models wide sensor fusion
/// with a single correlation point.
pub fn fan(sources: usize, sinks: usize) -> Dag {
    assert!(sources >= 1 && sinks >= 1);
    let mut dag = Dag::with_capacity(sources + sinks + 1);
    let srcs: Vec<VertexId> = (0..sources)
        .map(|i| dag.add_vertex(format!("src{i}")))
        .collect();
    let hub = dag.add_vertex("fuse");
    let snks: Vec<VertexId> = (0..sinks)
        .map(|i| dag.add_vertex(format!("sink{i}")))
        .collect();
    for &s in &srcs {
        dag.add_edge(s, hub).unwrap();
    }
    for &t in &snks {
        dag.add_edge(hub, t).unwrap();
    }
    dag
}

/// The 10-node graph of **Figure 1**, in which 5 phases execute
/// concurrently. The figure shows a roughly layered 10-vertex DAG; we
/// build a 5-level graph (widths 2-2-2-2-2) so that 5 phases can be in
/// flight at once, matching the figure's depiction of nodes near the top
/// executing earlier phases than nodes near the bottom.
pub fn fig1_graph() -> Dag {
    let mut dag = Dag::with_capacity(10);
    let v: Vec<VertexId> = (0..10).map(|i| dag.add_vertex(format!("f1n{i}"))).collect();
    // Level 0: v0, v1 (sources). Level 1: v2, v3. Level 2: v4, v5.
    // Level 3: v6, v7. Level 4: v8, v9 (sinks).
    let edges = [
        (0, 2),
        (0, 3),
        (1, 3),
        (2, 4),
        (3, 4),
        (3, 5),
        (4, 6),
        (5, 6),
        (5, 7),
        (6, 8),
        (7, 8),
        (7, 9),
    ];
    for (a, b) in edges {
        dag.add_edge(v[a], v[b]).unwrap();
    }
    dag
}

/// The 7-node graph of **Figure 2**, with vertices inserted so that the
/// insertion order equals the paper's Figure 2(b) numbering (vertex id
/// `i` is the vertex the paper numbers `i+1`).
///
/// Edges (1-based paper labels): 1→4, 2→4, 2→5, 3→5, 3→6, 5→6, 4→7, 6→7.
/// With the identity numbering this graph's S-sets equal the right-hand
/// table of Figure 2, and swapping labels 4 and 5 yields the defective
/// left-hand table — see the tests in [`crate::numbering`].
pub fn fig2_graph() -> Dag {
    let mut dag = Dag::with_capacity(7);
    let v: Vec<VertexId> = (0..7)
        .map(|i| dag.add_vertex(format!("f2n{}", i + 1)))
        .collect();
    let edges_1based = [
        (1, 4),
        (2, 4),
        (2, 5),
        (3, 5),
        (3, 6),
        (5, 6),
        (4, 7),
        (6, 7),
    ];
    for (a, b) in edges_1based {
        dag.add_edge(v[a - 1], v[b - 1]).unwrap();
    }
    dag
}

/// The 6-node graph used for the execution trace of **Figure 3**.
///
/// The paper's figure shows a 6-vertex graph with two sources executing
/// two pipelined phases. We use sources {1, 2} feeding a join at 3, a
/// second join at 5 and a sink at 6 (1-based labels as in the figure):
/// 1→3, 2→3, 2→4, 3→5, 4→5, 5→6. The trace test in the integration
/// suite replays the caption's eight steps against this graph.
pub fn fig3_graph() -> Dag {
    let mut dag = Dag::with_capacity(6);
    let v: Vec<VertexId> = (0..6)
        .map(|i| dag.add_vertex(format!("f3n{}", i + 1)))
        .collect();
    let edges_1based = [(1, 3), (2, 3), (2, 4), (3, 5), (4, 5), (5, 6)];
    for (a, b) in edges_1based {
        dag.add_edge(v[a - 1], v[b - 1]).unwrap();
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numbering::Numbering;

    #[test]
    fn chain_shape() {
        let g = chain(6);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn diamond_shape() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn layered_shape_and_validity() {
        let g = layered(4, 3, 2, 1);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.sources().len(), 3);
        Numbering::compute(&g).verify(&g).unwrap();
    }

    #[test]
    fn layered_fan_in_capped_by_width() {
        let g = layered(3, 2, 5, 1);
        for v in g.vertices() {
            assert!(g.in_degree(v) <= 2);
        }
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_in_tree(3);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.sources().len(), 4); // leaves
        assert_eq!(g.sinks().len(), 1); // root
        Numbering::compute(&g).verify(&g).unwrap();
    }

    #[test]
    fn random_dag_connected_has_single_source_component() {
        let g = random_dag(50, 0.05, true, 9);
        // With connect=true, only vertex 0 may be parentless among 1..n
        // if it happened to get no edges; all others have a predecessor.
        for v in g.vertices().skip(1) {
            assert!(g.in_degree(v) >= 1);
        }
        Numbering::compute(&g).verify(&g).unwrap();
    }

    #[test]
    fn random_dag_deterministic_by_seed() {
        let a = random_dag(30, 0.1, true, 5);
        let b = random_dag(30, 0.1, true, 5);
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn fan_shape() {
        let g = fan(5, 3);
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.sources().len(), 5);
        assert_eq!(g.sinks().len(), 3);
        Numbering::compute(&g).verify(&g).unwrap();
    }

    #[test]
    fn fig1_graph_valid() {
        let g = fig1_graph();
        assert_eq!(g.vertex_count(), 10);
        Numbering::compute(&g).verify(&g).unwrap();
    }

    #[test]
    fn fig2_graph_shape() {
        let g = fig2_graph();
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.sources().len(), 3);
    }

    #[test]
    fn fig3_graph_shape() {
        let g = fig3_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.sources().len(), 2);
        Numbering::compute(&g).verify(&g).unwrap();
    }
}
