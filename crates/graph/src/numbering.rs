//! Vertex numbering with the serial-prefix restriction (§3.1.1).
//!
//! The scheduler needs a 1-based vertex numbering that is (a)
//! topologically sorted and (b) satisfies the paper's additional
//! restriction: for every `v` in `0..=N`, the set
//!
//! ```text
//! S(v) = { w | every predecessor u of w has index u ≤ v }      (eq. 1)
//! ```
//!
//! must be indexed sequentially, i.e. `S(v) = {1, 2, …, m(v)}` where
//! `m(v) = |S(v)|`. Under that restriction, knowing that all vertices
//! indexed `v` and lower have finished a phase implies that all vertices
//! indexed `m(v)` and lower have *all the information they need* (messages
//! or the absence thereof) to execute that phase — the key scheduling
//! fact of §3.1.2.
//!
//! ## Construction
//!
//! The paper states the restriction but gives no construction. We use
//! **Kahn's algorithm with a FIFO ready queue**: vertices are numbered in
//! the order in which they *become ready* (all predecessors numbered).
//!
//! *Why this satisfies the restriction:* vertices are appended to the
//! queue in readiness order and dequeued FIFO, so at every point the set
//! of vertices ever enqueued is a prefix of the final numbering. After the
//! edges of the vertex numbered `v` are processed, the ever-enqueued set
//! is exactly `S(v)` (a vertex is enqueued precisely when its last
//! predecessor receives a number `≤ v`), hence `S(v) = {1, …, m(v)}`.
//!
//! The independent [`Numbering::verify`] checker recomputes every `S(v)`
//! directly from equation (1) and checks the sequential-prefix property,
//! as well as the derived properties (2)–(4) of the paper:
//!
//! * (2) `m` is monotonically non-decreasing,
//! * (3) `v < m(v)` for `1 ≤ v < N`,
//! * (4) `m(N) = N`.

use crate::dag::{Dag, VertexId};
use std::collections::VecDeque;
use std::fmt;

/// A schedule index: the paper's 1-based vertex number.
pub type ScheduleIndex = u32;

/// Errors found by [`Numbering::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumberingError {
    /// The permutation has the wrong length or is not a permutation of
    /// `1..=N`.
    NotAPermutation,
    /// An edge runs from a higher index to a lower-or-equal index, so the
    /// numbering is not topologically sorted.
    NotTopological {
        /// Edge tail (producer).
        from: VertexId,
        /// Edge head (consumer).
        to: VertexId,
    },
    /// Some `S(v)` is not a sequential prefix `{1..m(v)}` (the paper's
    /// additional restriction, illustrated by Figure 2(a)).
    NotSerialPrefix {
        /// The prefix bound `v` whose `S(v)` is broken.
        v: ScheduleIndex,
        /// The smallest index missing from `S(v)`.
        missing: ScheduleIndex,
    },
}

impl fmt::Display for NumberingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumberingError::NotAPermutation => {
                write!(f, "index assignment is not a permutation of 1..=N")
            }
            NumberingError::NotTopological { from, to } => {
                write!(f, "edge {from:?} -> {to:?} violates topological order")
            }
            NumberingError::NotSerialPrefix { v, missing } => write!(
                f,
                "S({v}) is not a sequential prefix: index {missing} missing"
            ),
        }
    }
}

impl std::error::Error for NumberingError {}

/// A vertex numbering satisfying the paper's serial-prefix restriction,
/// together with the `m(v)` table used by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Numbering {
    /// `index_of[vertex.index()]` = 1-based schedule index.
    index_of: Vec<ScheduleIndex>,
    /// `vertex_at[i - 1]` = vertex with schedule index `i`.
    vertex_at: Vec<VertexId>,
    /// `m[v]` for `v` in `0..=N`: `|S(v)|`.
    m: Vec<ScheduleIndex>,
}

impl Numbering {
    /// Computes a valid numbering for `dag` by Kahn's algorithm with a
    /// FIFO ready queue (see module docs for why FIFO is essential).
    ///
    /// Runs in `O(V + E)`. For an empty graph the numbering is empty.
    pub fn compute(dag: &Dag) -> Numbering {
        let n = dag.vertex_count();
        let mut indegree: Vec<u32> = (0..n)
            .map(|i| dag.in_degree(VertexId(i as u32)) as u32)
            .collect();
        let mut queue: VecDeque<VertexId> = VecDeque::with_capacity(n);
        for v in dag.vertices() {
            if indegree[v.index()] == 0 {
                queue.push_back(v);
            }
        }

        let mut index_of = vec![0u32; n];
        let mut vertex_at = Vec::with_capacity(n);
        // m[0] = number of sources = initial queue length; m[v] is the
        // total enqueued count after the edges of index v are processed.
        let mut m = Vec::with_capacity(n + 1);
        let mut enqueued = queue.len() as u32;
        m.push(enqueued);

        while let Some(v) = queue.pop_front() {
            let idx = vertex_at.len() as u32 + 1;
            index_of[v.index()] = idx;
            vertex_at.push(v);
            for &s in dag.succs(v) {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push_back(s);
                    enqueued += 1;
                }
            }
            m.push(enqueued);
        }
        debug_assert_eq!(
            vertex_at.len(),
            n,
            "Dag is acyclic by construction; Kahn must number every vertex"
        );

        Numbering {
            index_of,
            vertex_at,
            m,
        }
    }

    /// Number of vertices `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertex_at.len()
    }

    /// True if the numbering covers no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_at.is_empty()
    }

    /// The 1-based schedule index of `v`.
    #[inline]
    pub fn index_of(&self, v: VertexId) -> ScheduleIndex {
        self.index_of[v.index()]
    }

    /// The vertex holding 1-based schedule index `i` (`1 ≤ i ≤ N`).
    #[inline]
    pub fn vertex_at(&self, i: ScheduleIndex) -> VertexId {
        self.vertex_at[(i - 1) as usize]
    }

    /// The paper's `m(v)`: the cardinality of `S(v)`, for `0 ≤ v ≤ N`.
    ///
    /// `m(0)` is the number of source vertices. When all vertices indexed
    /// `v` and lower have finished a phase, all vertices indexed `m(v)`
    /// and lower have sufficient information to execute it (§3.1.2).
    #[inline]
    pub fn m(&self, v: ScheduleIndex) -> ScheduleIndex {
        self.m[v as usize]
    }

    /// The full `m` table, `m[0..=N]`.
    #[inline]
    pub fn m_table(&self) -> &[ScheduleIndex] {
        &self.m
    }

    /// Number of source vertices (`m(0)`).
    #[inline]
    pub fn source_count(&self) -> ScheduleIndex {
        self.m[0]
    }

    /// Iterates over vertices in schedule order (index 1 to N).
    pub fn schedule_order(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_at.iter().copied()
    }

    /// Verifies this numbering against `dag` directly from the paper's
    /// definitions, independently of how it was constructed.
    ///
    /// Checks, in order: the indices form a permutation of `1..=N`; every
    /// edge is directed from a lower to a higher index; every `S(v)`
    /// computed from equation (1) is the sequential prefix `{1..m(v)}`;
    /// and the stored `m` table matches. Also asserts the derived
    /// properties (2)–(4).
    pub fn verify(&self, dag: &Dag) -> Result<(), NumberingError> {
        let n = dag.vertex_count();
        if self.index_of.len() != n || self.vertex_at.len() != n || self.m.len() != n + 1 {
            return Err(NumberingError::NotAPermutation);
        }
        let mut seen = vec![false; n + 1];
        for &i in &self.index_of {
            if i == 0 || i as usize > n || seen[i as usize] {
                return Err(NumberingError::NotAPermutation);
            }
            seen[i as usize] = true;
        }
        for (i, &v) in self.vertex_at.iter().enumerate() {
            if self.index_of[v.index()] != i as u32 + 1 {
                return Err(NumberingError::NotAPermutation);
            }
        }

        for (from, to) in dag.edges() {
            if self.index_of(from) >= self.index_of(to) {
                return Err(NumberingError::NotTopological { from, to });
            }
        }

        // S(v) from equation (1), for every prefix bound v.
        for v in 0..=n as u32 {
            let mut in_s = vec![false; n + 1];
            let mut count = 0u32;
            for w in dag.vertices() {
                if dag.preds(w).iter().all(|&u| self.index_of(u) <= v) {
                    in_s[self.index_of(w) as usize] = true;
                    count += 1;
                }
            }
            // Sequential-prefix restriction: S(v) == {1..count}.
            for i in 1..=count {
                if !in_s[i as usize] {
                    return Err(NumberingError::NotSerialPrefix { v, missing: i });
                }
            }
            if self.m[v as usize] != count {
                return Err(NumberingError::NotSerialPrefix {
                    v,
                    missing: count.min(self.m[v as usize]) + 1,
                });
            }
        }

        // Derived properties (2)-(4); these follow from the above but we
        // assert them anyway as a defence against checker bugs.
        for v in 1..n {
            debug_assert!(self.m[v] <= self.m[v + 1], "property (2) violated");
            debug_assert!((v as u32) < self.m[v], "property (3) violated");
        }
        if n > 0 {
            debug_assert_eq!(self.m[n], n as u32, "property (4) violated");
        }
        Ok(())
    }

    /// Builds a `Numbering` from an explicit index assignment
    /// (`assignment[vertex.index()]` = 1-based index), verifying it.
    ///
    /// Useful for testing numberings that come from outside (e.g. a spec
    /// file) and for demonstrating *invalid* numberings such as the
    /// paper's Figure 2(a).
    pub fn from_assignment(
        dag: &Dag,
        assignment: &[ScheduleIndex],
    ) -> Result<Numbering, NumberingError> {
        let n = dag.vertex_count();
        if assignment.len() != n {
            return Err(NumberingError::NotAPermutation);
        }
        let mut vertex_at = vec![VertexId(0); n];
        let mut seen = vec![false; n + 1];
        for (vi, &idx) in assignment.iter().enumerate() {
            if idx == 0 || idx as usize > n || seen[idx as usize] {
                return Err(NumberingError::NotAPermutation);
            }
            seen[idx as usize] = true;
            vertex_at[(idx - 1) as usize] = VertexId(vi as u32);
        }
        let mut m = Vec::with_capacity(n + 1);
        for v in 0..=n as u32 {
            let count = dag
                .vertices()
                .filter(|&w| dag.preds(w).iter().all(|&u| assignment[u.index()] <= v))
                .count() as u32;
            m.push(count);
        }
        let numbering = Numbering {
            index_of: assignment.to_vec(),
            vertex_at,
            m,
        };
        numbering.verify(dag)?;
        Ok(numbering)
    }

    /// Computes `S(v)` directly from equation (1) as a sorted list of
    /// schedule indices. Intended for diagnostics and tests; `O(V·E)` in
    /// the worst case.
    pub fn s_set(&self, dag: &Dag, v: ScheduleIndex) -> Vec<ScheduleIndex> {
        let mut s: Vec<ScheduleIndex> = dag
            .vertices()
            .filter(|&w| dag.preds(w).iter().all(|&u| self.index_of(u) <= v))
            .map(|w| self.index_of(w))
            .collect();
        s.sort_unstable();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_graph() {
        let dag = Dag::new();
        let n = Numbering::compute(&dag);
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
    }

    #[test]
    fn single_vertex() {
        let mut dag = Dag::new();
        let a = dag.add_vertex("a");
        let n = Numbering::compute(&dag);
        assert_eq!(n.index_of(a), 1);
        assert_eq!(n.vertex_at(1), a);
        assert_eq!(n.m_table(), &[1, 1]);
        n.verify(&dag).unwrap();
    }

    #[test]
    fn chain_numbering() {
        let dag = generators::chain(5);
        let n = Numbering::compute(&dag);
        n.verify(&dag).unwrap();
        // In a chain, S(v) = {1..v+1} for v < N.
        assert_eq!(n.m_table(), &[1, 2, 3, 4, 5, 5]);
    }

    #[test]
    fn diamond_numbering() {
        let dag = generators::diamond();
        let n = Numbering::compute(&dag);
        n.verify(&dag).unwrap();
        assert_eq!(n.source_count(), 1);
        assert_eq!(n.m(n.len() as u32), n.len() as u32);
    }

    /// Figure 2(b): the satisfactory numbering. Our FIFO-Kahn construction
    /// on the Figure 2 graph (inserted in index order) reproduces the
    /// paper's m-sequence [3, 3, 4, 5, 5, 6, 7, 7].
    #[test]
    fn fig2_satisfactory_numbering() {
        let dag = generators::fig2_graph();
        let n = Numbering::compute(&dag);
        n.verify(&dag).unwrap();
        assert_eq!(n.m_table(), &[3, 3, 4, 5, 5, 6, 7, 7]);
        // The identity assignment is exactly the paper's Figure 2(b).
        let identity: Vec<u32> = (1..=7).collect();
        let n2 = Numbering::from_assignment(&dag, &identity).unwrap();
        assert_eq!(n2.m_table(), n.m_table());
    }

    /// Figure 2(b) S-values, matching the right-hand table of Figure 2.
    #[test]
    fn fig2_satisfactory_s_values() {
        let dag = generators::fig2_graph();
        let identity: Vec<u32> = (1..=7).collect();
        let n = Numbering::from_assignment(&dag, &identity).unwrap();
        assert_eq!(n.s_set(&dag, 0), vec![1, 2, 3]);
        assert_eq!(n.s_set(&dag, 1), vec![1, 2, 3]);
        assert_eq!(n.s_set(&dag, 2), vec![1, 2, 3, 4]);
        assert_eq!(n.s_set(&dag, 3), vec![1, 2, 3, 4, 5]);
        assert_eq!(n.s_set(&dag, 4), vec![1, 2, 3, 4, 5]);
        assert_eq!(n.s_set(&dag, 5), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(n.s_set(&dag, 6), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(n.s_set(&dag, 7), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    /// Figure 2(a): transposing vertices 4 and 5 yields a topologically
    /// sorted numbering that violates the serial-prefix restriction
    /// (S(2) = {1,2,3,5} is missing 4), exactly as the paper shows.
    #[test]
    fn fig2_unsatisfactory_numbering_rejected() {
        let dag = generators::fig2_graph();
        // Swap indices of the vertices numbered 4 and 5 in Figure 2(b).
        let assignment: Vec<u32> = vec![1, 2, 3, 5, 4, 6, 7];
        let err = Numbering::from_assignment(&dag, &assignment).unwrap_err();
        assert_eq!(err, NumberingError::NotSerialPrefix { v: 2, missing: 4 });
    }

    /// Figure 2(a) S-values as printed in the left-hand table.
    #[test]
    fn fig2_unsatisfactory_s_values() {
        let dag = generators::fig2_graph();
        // Construct without verification to inspect raw S sets.
        let assignment: Vec<u32> = vec![1, 2, 3, 5, 4, 6, 7];
        let numbering = Numbering {
            index_of: assignment.clone(),
            vertex_at: {
                let mut v = vec![VertexId(0); 7];
                for (vi, &idx) in assignment.iter().enumerate() {
                    v[(idx - 1) as usize] = VertexId(vi as u32);
                }
                v
            },
            m: vec![0; 8], // unused by s_set
        };
        assert_eq!(numbering.s_set(&dag, 0), vec![1, 2, 3]);
        assert_eq!(numbering.s_set(&dag, 1), vec![1, 2, 3]);
        assert_eq!(numbering.s_set(&dag, 2), vec![1, 2, 3, 5]);
        assert_eq!(numbering.s_set(&dag, 3), vec![1, 2, 3, 4, 5]);
        assert_eq!(numbering.s_set(&dag, 4), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(numbering.s_set(&dag, 5), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(numbering.s_set(&dag, 6), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(numbering.s_set(&dag, 7), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn verify_rejects_non_permutation() {
        let dag = generators::chain(3);
        assert_eq!(
            Numbering::from_assignment(&dag, &[1, 1, 2]).unwrap_err(),
            NumberingError::NotAPermutation
        );
        assert_eq!(
            Numbering::from_assignment(&dag, &[0, 1, 2]).unwrap_err(),
            NumberingError::NotAPermutation
        );
        assert_eq!(
            Numbering::from_assignment(&dag, &[1, 2]).unwrap_err(),
            NumberingError::NotAPermutation
        );
    }

    #[test]
    fn verify_rejects_non_topological() {
        let dag = generators::chain(3);
        let err = Numbering::from_assignment(&dag, &[2, 1, 3]).unwrap_err();
        assert!(matches!(err, NumberingError::NotTopological { .. }));
    }

    #[test]
    fn properties_2_3_4_hold_on_layered_graph() {
        let dag = generators::layered(4, 5, 2, 42);
        let n = Numbering::compute(&dag);
        n.verify(&dag).unwrap();
        let nn = n.len() as u32;
        for v in 1..nn {
            assert!(n.m(v - 1) <= n.m(v), "property (2)");
            assert!(v < n.m(v), "property (3)");
        }
        assert_eq!(n.m(nn), nn, "property (4)");
    }

    #[test]
    fn schedule_order_roundtrip() {
        let dag = generators::layered(3, 4, 2, 7);
        let n = Numbering::compute(&dag);
        for (i, v) in n.schedule_order().enumerate() {
            assert_eq!(n.index_of(v), i as u32 + 1);
            assert_eq!(n.vertex_at(i as u32 + 1), v);
        }
    }

    #[test]
    fn sources_occupy_prefix() {
        let dag = generators::layered(5, 3, 2, 99);
        let n = Numbering::compute(&dag);
        let k = n.source_count();
        for i in 1..=k {
            assert!(dag.is_source(n.vertex_at(i)));
        }
        for i in (k + 1)..=(n.len() as u32) {
            assert!(!dag.is_source(n.vertex_at(i)));
        }
    }
}
