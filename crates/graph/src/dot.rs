//! Graphviz DOT export for computation graphs.
//!
//! Renders a [`Dag`] (optionally annotated with a [`Numbering`]) as a DOT
//! digraph so figures like the paper's Figure 2 can be regenerated with
//! `dot -Tpng`.

use crate::dag::Dag;
use crate::numbering::Numbering;
use std::fmt::Write;

/// Renders `dag` as a Graphviz digraph named `name`.
///
/// Vertex labels are the human-readable names; sources are drawn as
/// double circles and sinks as boxes.
pub fn to_dot(dag: &Dag, name: &str) -> String {
    render(dag, name, None)
}

/// Renders `dag` with each vertex labelled `"<index>: <name>"` using the
/// provided numbering, mirroring the index labels in Figure 2.
pub fn to_dot_numbered(dag: &Dag, name: &str, numbering: &Numbering) -> String {
    render(dag, name, Some(numbering))
}

fn render(dag: &Dag, name: &str, numbering: Option<&Numbering>) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {} {{", sanitize(name)).unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    for v in dag.vertices() {
        let label = match numbering {
            Some(n) => format!("{}: {}", n.index_of(v), dag.name(v)),
            None => dag.name(v).to_string(),
        };
        let shape = if dag.is_source(v) {
            "doublecircle"
        } else if dag.is_sink(v) {
            "box"
        } else {
            "ellipse"
        };
        writeln!(
            out,
            "  n{} [label=\"{}\", shape={}];",
            v.0,
            escape(&label),
            shape
        )
        .unwrap();
    }
    for (a, b) in dag.edges() {
        writeln!(out, "  n{} -> n{};", a.0, b.0).unwrap();
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn renders_all_vertices_and_edges() {
        let g = generators::diamond();
        let dot = to_dot(&g, "diamond");
        assert!(dot.starts_with("digraph diamond {"));
        assert_eq!(dot.matches("label=").count(), 4);
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn numbered_labels_include_indices() {
        let g = generators::fig2_graph();
        let n = crate::Numbering::compute(&g);
        let dot = to_dot_numbered(&g, "fig2", &n);
        for i in 1..=7 {
            assert!(dot.contains(&format!("{i}: ")), "missing index {i}");
        }
    }

    #[test]
    fn source_and_sink_shapes() {
        let g = generators::chain(3);
        let dot = to_dot(&g, "chain");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }

    #[test]
    fn name_sanitization() {
        let g = generators::chain(2);
        let dot = to_dot(&g, "2 bad-name");
        assert!(dot.starts_with("digraph g_2_bad_name {"));
    }

    #[test]
    fn label_escaping() {
        let mut g = Dag::new();
        g.add_vertex("quote\"and\\slash");
        let dot = to_dot(&g, "esc");
        assert!(dot.contains("quote\\\"and\\\\slash"));
    }
}
