//! Directed acyclic graph of computational modules.
//!
//! A [`Dag`] is the static structure of a data-fusion computation (§2 of
//! the paper): vertices are computational modules, edges are message
//! channels directed from producers to consumers. Vertices without
//! incoming edges are *sources* (fed by sensors / external feeds);
//! vertices without outgoing edges are *sinks* (read by I/O units outside
//! the fusion engine).
//!
//! The builder rejects self-loops, duplicate edges and any edge that would
//! close a directed cycle, so a successfully constructed [`Dag`] is acyclic
//! by construction.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a vertex, assigned in insertion order.
///
/// `VertexId` is *not* the paper's 1-based schedule index; the schedule
/// index is computed separately by [`crate::Numbering`] so that a graph can
/// be built in any order and renumbered without touching its structure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Stable identifier of an edge, assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed acyclic computation graph.
///
/// Adjacency is stored both forward (successors) and backward
/// (predecessors) because the scheduler needs successor fan-out when
/// routing messages and predecessor fan-in when deciding readiness.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dag {
    names: Vec<String>,
    succs: Vec<Vec<VertexId>>,
    preds: Vec<Vec<VertexId>>,
    edges: Vec<(VertexId, VertexId)>,
}

impl Dag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Dag {
            names: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            edges: Vec::new(),
        }
    }

    /// Adds a vertex with a human-readable name and returns its id.
    pub fn add_vertex(&mut self, name: impl Into<String>) -> VertexId {
        let id = VertexId(self.names.len() as u32);
        self.names.push(name.into());
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds `n` anonymous vertices and returns their ids.
    pub fn add_vertices(&mut self, n: usize) -> Vec<VertexId> {
        (0..n).map(|i| self.add_vertex(format!("n{i}"))).collect()
    }

    /// Adds a directed edge `from -> to`.
    ///
    /// Fails with [`GraphError::SelfLoop`], [`GraphError::DuplicateEdge`],
    /// [`GraphError::UnknownVertex`] or [`GraphError::WouldCycle`] as
    /// appropriate; on success the graph is still acyclic.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<EdgeId, GraphError> {
        let n = self.names.len() as u32;
        if from.0 >= n {
            return Err(GraphError::UnknownVertex(from));
        }
        if to.0 >= n {
            return Err(GraphError::UnknownVertex(to));
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.succs[from.index()].contains(&to) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        if self.reaches(to, from) {
            return Err(GraphError::WouldCycle(from, to));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.edges.push((from, to));
        Ok(id)
    }

    /// Returns true if `from` can reach `to` along directed edges.
    pub fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.names.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v.index()] {
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all vertex ids in insertion order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.names.len() as u32).map(VertexId)
    }

    /// Iterator over all edges as `(from, to)` pairs in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().copied()
    }

    /// The human-readable name of a vertex.
    pub fn name(&self, v: VertexId) -> &str {
        &self.names[v.index()]
    }

    /// Successors (out-neighbours) of `v`.
    #[inline]
    pub fn succs(&self, v: VertexId) -> &[VertexId] {
        &self.succs[v.index()]
    }

    /// Predecessors (in-neighbours) of `v`.
    #[inline]
    pub fn preds(&self, v: VertexId) -> &[VertexId] {
        &self.preds[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.succs[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.preds[v.index()].len()
    }

    /// True if `v` is a source vertex (no incoming edges, §2).
    #[inline]
    pub fn is_source(&self, v: VertexId) -> bool {
        self.preds[v.index()].is_empty()
    }

    /// True if `v` is a sink vertex (no outgoing edges, §2).
    #[inline]
    pub fn is_sink(&self, v: VertexId) -> bool {
        self.succs[v.index()].is_empty()
    }

    /// All source vertices, in insertion order.
    pub fn sources(&self) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.is_source(v)).collect()
    }

    /// All sink vertices, in insertion order.
    pub fn sinks(&self) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.is_sink(v)).collect()
    }

    /// Validates global structural invariants.
    ///
    /// A [`Dag`] is acyclic by construction, so this only checks
    /// non-emptiness (the scheduler needs at least one source) and that
    /// the adjacency lists are mutually consistent. Returns the graph's
    /// sources on success.
    pub fn validate(&self) -> Result<Vec<VertexId>, GraphError> {
        if self.is_empty() {
            return Err(GraphError::Empty);
        }
        debug_assert!(self.adjacency_consistent());
        Ok(self.sources())
    }

    /// Internal consistency between forward and backward adjacency.
    fn adjacency_consistent(&self) -> bool {
        for v in self.vertices() {
            for &s in self.succs(v) {
                if !self.preds(s).contains(&v) {
                    return false;
                }
            }
            for &p in self.preds(v) {
                if !self.succs(p).contains(&v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, Vec<VertexId>) {
        let mut g = Dag::new();
        let vs = g.add_vertices(4);
        g.add_edge(vs[0], vs[1]).unwrap();
        g.add_edge(vs[0], vs[2]).unwrap();
        g.add_edge(vs[1], vs[3]).unwrap();
        g.add_edge(vs[2], vs[3]).unwrap();
        (g, vs)
    }

    #[test]
    fn build_and_query() {
        let (g, vs) = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![vs[0]]);
        assert_eq!(g.sinks(), vec![vs[3]]);
        assert_eq!(g.succs(vs[0]), &[vs[1], vs[2]]);
        assert_eq!(g.preds(vs[3]), &[vs[1], vs[2]]);
        assert_eq!(g.out_degree(vs[0]), 2);
        assert_eq!(g.in_degree(vs[3]), 2);
        assert!(g.is_source(vs[0]) && !g.is_source(vs[1]));
        assert!(g.is_sink(vs[3]) && !g.is_sink(vs[2]));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Dag::new();
        let a = g.add_vertex("a");
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Dag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut g = Dag::new();
        let a = g.add_vertex("a");
        let ghost = VertexId(99);
        assert_eq!(g.add_edge(a, ghost), Err(GraphError::UnknownVertex(ghost)));
        assert_eq!(g.add_edge(ghost, a), Err(GraphError::UnknownVertex(ghost)));
    }

    #[test]
    fn rejects_cycle() {
        let mut g = Dag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.add_edge(c, a), Err(GraphError::WouldCycle(c, a)));
        // Two-cycle as well.
        assert_eq!(g.add_edge(b, a), Err(GraphError::WouldCycle(b, a)));
    }

    #[test]
    fn reachability() {
        let (g, vs) = diamond();
        assert!(g.reaches(vs[0], vs[3]));
        assert!(g.reaches(vs[1], vs[3]));
        assert!(!g.reaches(vs[3], vs[0]));
        assert!(!g.reaches(vs[1], vs[2]));
        assert!(g.reaches(vs[2], vs[2]));
    }

    #[test]
    fn validate_empty_fails() {
        let g = Dag::new();
        assert_eq!(g.validate(), Err(GraphError::Empty));
    }

    #[test]
    fn validate_returns_sources() {
        let (g, vs) = diamond();
        assert_eq!(g.validate().unwrap(), vec![vs[0]]);
    }

    #[test]
    fn names_preserved() {
        let mut g = Dag::new();
        let a = g.add_vertex("temperature");
        assert_eq!(g.name(a), "temperature");
    }

    #[test]
    fn edges_iterator_in_insertion_order() {
        let (g, vs) = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (vs[0], vs[1]),
                (vs[0], vs[2]),
                (vs[1], vs[3]),
                (vs[2], vs[3])
            ]
        );
    }

    #[test]
    fn serde_roundtrip_ids() {
        let v = VertexId(7);
        // serde support is exercised end-to-end in the spec crate; here we
        // only check the Display/Debug formats used by diagnostics.
        assert_eq!(format!("{v:?}"), "v7");
        assert_eq!(format!("{:?}", EdgeId(3)), "e3");
    }
}
