//! Online statistics used by correlation models.
//!
//! The paper's motivating predicates (§1) involve statistical regressions,
//! moving point averages and deviation tests. This module provides the
//! numeric substrate: Welford's online mean/variance, exponentially
//! weighted moving averages, and incremental simple linear regression
//! over a sliding window.

use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::window::RingBuffer;

/// Welford's online algorithm for mean and variance over an unbounded
/// stream — numerically stable, O(1) per sample.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean; `None` if no samples.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance; `None` if no samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample variance (n−1 denominator); `None` if fewer than 2 samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Z-score of `x`; `None` without samples or with zero spread.
    pub fn zscore(&self, x: f64) -> Option<f64> {
        let sd = self.stddev()?;
        (sd > 0.0).then(|| (x - self.mean) / sd)
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]` or NaN.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feeds a sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any samples were fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Serializes the current average (`alpha` is configuration).
    pub fn snapshot_into(&self, w: &mut StateWriter) {
        w.put_opt_f64(self.value);
    }

    /// Restores the average captured by
    /// [`snapshot_into`](Self::snapshot_into).
    pub fn restore_from(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.value = r.get_opt_f64()?;
        Ok(())
    }
}

/// Simple (x = sample index) linear regression over a sliding window,
/// maintained incrementally.
///
/// Models the paper's "regression model developed using data from a
/// one-month window" (§1): `predict` extrapolates the fitted line and
/// `residual` measures how far a new observation falls from it.
#[derive(Debug, Clone)]
pub struct WindowedRegression {
    ys: RingBuffer<f64>,
    /// Index of the *next* sample (monotonically increasing).
    t: u64,
}

impl WindowedRegression {
    /// Regression over the last `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        WindowedRegression {
            ys: RingBuffer::new(capacity),
            t: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, y: f64) {
        self.ys.push(y);
        self.t += 1;
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// True if no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Fits `y = a + b·x` over the window, where `x` is the global sample
    /// index. Returns `(a, b)`; `None` with fewer than 2 points or zero
    /// x-spread.
    pub fn fit(&self) -> Option<(f64, f64)> {
        let n = self.ys.len();
        if n < 2 {
            return None;
        }
        let x0 = self.t - n as u64; // global index of oldest sample
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, y) in self.ys.iter().enumerate() {
            let x = (x0 + i as u64) as f64;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let b = (nf * sxy - sx * sy) / denom;
        let a = (sy - b * sx) / nf;
        Some((a, b))
    }

    /// Predicted value at the next sample index.
    pub fn predict_next(&self) -> Option<f64> {
        let (a, b) = self.fit()?;
        Some(a + b * self.t as f64)
    }

    /// Residual of `y` against the prediction at the next index.
    pub fn residual(&self, y: f64) -> Option<f64> {
        Some(y - self.predict_next()?)
    }

    /// Serializes the window contents and the global sample index
    /// (the capacity is configuration).
    pub fn snapshot_into(&self, w: &mut StateWriter) {
        w.put_u64(self.t);
        w.put_u32(self.ys.len() as u32);
        for y in self.ys.iter() {
            w.put_f64(*y);
        }
    }

    /// Restores state captured by
    /// [`snapshot_into`](Self::snapshot_into).
    pub fn restore_from(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let t = r.get_u64()?;
        let n = r.get_u32()? as usize;
        self.ys.clear();
        for _ in 0..n {
            self.ys.push(r.get_f64()?);
        }
        self.t = t;
        Ok(())
    }

    /// Standard deviation of in-window residuals against the fitted line;
    /// `None` with fewer than 3 points.
    pub fn residual_stddev(&self) -> Option<f64> {
        let (a, b) = self.fit()?;
        let n = self.ys.len();
        if n < 3 {
            return None;
        }
        let x0 = self.t - n as u64;
        let ss: f64 = self
            .ys
            .iter()
            .enumerate()
            .map(|(i, y)| {
                let pred = a + b * (x0 + i as u64) as f64;
                (y - pred) * (y - pred)
            })
            .sum();
        Some((ss / n as f64).sqrt())
    }
}

/// P² (Jain & Chlamtac) streaming quantile estimator.
///
/// Tracks a single quantile of an unbounded stream in O(1) space —
/// e.g. the 99th-percentile transaction size a rate monitor compares
/// against. Exact for the first five samples, then maintains five
/// markers whose heights approximate the quantile via piecewise-
/// parabolic adjustment.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }
        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x within [h0, h4)")
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate; `None` before any samples. Exact for
    /// fewer than six samples.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            let pos = (self.q * (sorted.len() - 1) as f64).round() as usize;
            return Some(sorted[pos]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((w.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert_eq!(w.zscore(0.0), None);
    }

    #[test]
    fn welford_zscore() {
        let mut w = Welford::new();
        for &x in &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.zscore(9.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_single_sample() {
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.variance(), Some(0.0));
        assert_eq!(w.sample_variance(), None);
        assert_eq!(w.zscore(5.0), None); // zero spread
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(10.0), 10.0);
        assert_eq!(e.push(0.0), 5.0);
        assert_eq!(e.push(0.0), 2.5);
        for _ in 0..100 {
            e.push(3.0);
        }
        assert!((e.value().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn regression_recovers_line() {
        let mut r = WindowedRegression::new(10);
        for i in 0..10 {
            r.push(3.0 + 2.0 * i as f64);
        }
        let (a, b) = r.fit().unwrap();
        assert!((a - 3.0).abs() < 1e-9, "a = {a}");
        assert!((b - 2.0).abs() < 1e-9, "b = {b}");
        assert!((r.predict_next().unwrap() - 23.0).abs() < 1e-9);
        assert!((r.residual(25.0).unwrap() - 2.0).abs() < 1e-9);
        assert!(r.residual_stddev().unwrap() < 1e-9);
    }

    #[test]
    fn regression_window_slides() {
        let mut r = WindowedRegression::new(5);
        // First 20 samples follow one line, then the slope changes.
        for i in 0..20 {
            r.push(i as f64);
        }
        for i in 20..40 {
            r.push(19.0 + 5.0 * (i - 19) as f64);
        }
        // The window now covers only the second regime.
        let (_, b) = r.fit().unwrap();
        assert!((b - 5.0).abs() < 1e-6, "slope = {b}");
    }

    #[test]
    fn regression_underdetermined() {
        let mut r = WindowedRegression::new(5);
        assert_eq!(r.fit(), None);
        r.push(1.0);
        assert_eq!(r.fit(), None);
        assert_eq!(r.predict_next(), None);
        assert_eq!(r.residual(1.0), None);
        r.push(2.0);
        assert!(r.fit().is_some());
        assert_eq!(r.residual_stddev(), None); // needs 3 points
    }

    #[test]
    fn regression_len_tracks_window() {
        let mut r = WindowedRegression::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 3);
    }
}

#[cfg(test)]
mod p2_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_for_tiny_streams() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.push(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.push(1.0);
        p.push(2.0);
        // Median of {1,2,3} = 2.
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20_000 {
            p.push(rng.gen_range(0.0..100.0));
        }
        let est = p.estimate().unwrap();
        assert!((est - 50.0).abs() < 3.0, "median estimate {est}");
    }

    #[test]
    fn p99_of_uniform_stream() {
        let mut p = P2Quantile::new(0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50_000 {
            p.push(rng.gen_range(0.0..1.0));
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.99).abs() < 0.02, "p99 estimate {est}");
    }

    #[test]
    fn monotone_under_shifted_distributions() {
        // Estimates for higher quantiles must order correctly.
        let mut q25 = P2Quantile::new(0.25);
        let mut q75 = P2Quantile::new(0.75);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-5.0..5.0);
            q25.push(x);
            q75.push(x);
        }
        assert!(q25.estimate().unwrap() < q75.estimate().unwrap());
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn count_tracks_samples() {
        let mut p = P2Quantile::new(0.9);
        for i in 0..10 {
            p.push(i as f64);
        }
        assert_eq!(p.count(), 10);
    }
}
