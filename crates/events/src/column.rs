//! Pooled, shared per-source epoch columns.
//!
//! When the streaming runtime seals an epoch, each live source's
//! buffered events become one *column*: bin `r` is the source's value
//! in the `r`-th phase of the epoch (`None` = silent). The column is
//! frozen behind an [`Arc`] and handed simultaneously to the WAL
//! encoder, the engine's [`LiveFeed`](crate::LiveFeed) and the
//! committed script — one allocation shared by every consumer instead
//! of a clone per destination.
//!
//! [`ColumnPool`] closes the loop: it remembers the columns it issued
//! and, once every consumer has dropped its handle, reclaims the
//! backing buffer for the next epoch. In steady state (script recording
//! off, feeds draining promptly) sealing allocates nothing.

use crate::value::Value;
use std::ops::Deref;
use std::sync::Arc;

/// A sampled trace stamp riding out-of-band on a sealed column: the
/// event in bin `bin` was chosen for causal tracing when its producer
/// pushed it.
///
/// Stamps are observability metadata, not data: they are excluded from
/// [`PhaseColumn`] equality, never serialized to the WAL, and dropped
/// on pool reclamation, so a traced run commits a byte-identical
/// `PhaseScript` to an untraced one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinStamp {
    /// Index of the stamped bin within the column.
    pub bin: u32,
    /// Trace id assigned at push time (unique per runtime).
    pub trace_id: u64,
    /// Push timestamp, nanoseconds since the runtime's trace epoch.
    pub ingest_nanos: u64,
}

/// One source's bins for one sealed epoch, in phase order.
///
/// Immutable once built (consumers share it behind an [`Arc`]);
/// dereferences to the bin slice. May carry sampled [`BinStamp`]s;
/// equality compares bins only (stamps are observability metadata).
#[derive(Debug, Clone, Default)]
pub struct PhaseColumn {
    bins: Vec<Option<Value>>,
    stamps: Vec<BinStamp>,
}

impl PartialEq for PhaseColumn {
    fn eq(&self, other: &PhaseColumn) -> bool {
        self.bins == other.bins
    }
}

impl PhaseColumn {
    /// Wraps a bin vector as a frozen column.
    pub fn from_bins(bins: Vec<Option<Value>>) -> PhaseColumn {
        PhaseColumn {
            bins,
            stamps: Vec::new(),
        }
    }

    /// Wraps a bin vector plus its sampled trace stamps.
    pub fn from_stamped_bins(bins: Vec<Option<Value>>, stamps: Vec<BinStamp>) -> PhaseColumn {
        PhaseColumn { bins, stamps }
    }

    /// The bins, in phase order.
    pub fn bins(&self) -> &[Option<Value>] {
        &self.bins
    }

    /// Sampled trace stamps carried by this column (usually empty).
    pub fn stamps(&self) -> &[BinStamp] {
        &self.stamps
    }

    /// Unwraps the backing vector (pool reclamation); stamps are
    /// dropped.
    pub fn into_bins(self) -> Vec<Option<Value>> {
        self.bins
    }
}

impl Deref for PhaseColumn {
    type Target = [Option<Value>];

    fn deref(&self) -> &[Option<Value>] {
        &self.bins
    }
}

impl From<Vec<Option<Value>>> for PhaseColumn {
    fn from(bins: Vec<Option<Value>>) -> PhaseColumn {
        PhaseColumn::from_bins(bins)
    }
}

/// Recycler for column storage.
///
/// [`checkout`](ColumnPool::checkout) hands out an empty bin vector
/// (reusing a reclaimed buffer's capacity when one is available);
/// [`seal`](ColumnPool::seal) freezes a filled vector into a shared
/// [`Arc<PhaseColumn>`] and remembers it; on later calls the pool scans
/// its remembered columns and reclaims any whose every other holder has
/// dropped. Both lists are bounded, so a consumer that retains columns
/// forever (e.g. a recorded script) degrades to plain allocation, never
/// to unbounded pool growth.
#[derive(Debug, Default)]
pub struct ColumnPool {
    /// Empty buffers ready to hand out.
    spares: Vec<Vec<Option<Value>>>,
    /// Issued columns not yet reclaimed.
    pending: Vec<Arc<PhaseColumn>>,
}

/// Bound on buffers kept ready (beyond it, reclaimed buffers are
/// dropped).
const MAX_SPARES: usize = 64;
/// Bound on issued columns tracked for reclamation (beyond it, the
/// oldest are forgotten and simply freed by their last consumer).
const MAX_PENDING: usize = 256;

impl ColumnPool {
    /// New empty pool.
    pub fn new() -> ColumnPool {
        ColumnPool::default()
    }

    /// An empty bin vector, recycled when possible.
    pub fn checkout(&mut self) -> Vec<Option<Value>> {
        self.reclaim();
        self.spares.pop().unwrap_or_default()
    }

    /// Returns an unused buffer (e.g. from an epoch that sealed zero
    /// phases) to the spare list.
    pub fn give_back(&mut self, mut bins: Vec<Option<Value>>) {
        bins.clear();
        if self.spares.len() < MAX_SPARES {
            self.spares.push(bins);
        }
    }

    /// Freezes a filled bin vector into a shared column, tracked for
    /// reclamation once every consumer drops it.
    pub fn seal(&mut self, bins: Vec<Option<Value>>) -> Arc<PhaseColumn> {
        self.seal_stamped(bins, Vec::new())
    }

    /// [`seal`](ColumnPool::seal), carrying sampled trace stamps on the
    /// frozen column.
    pub fn seal_stamped(
        &mut self,
        bins: Vec<Option<Value>>,
        stamps: Vec<BinStamp>,
    ) -> Arc<PhaseColumn> {
        let col = Arc::new(PhaseColumn::from_stamped_bins(bins, stamps));
        if self.pending.len() >= MAX_PENDING {
            // A consumer is retaining columns (recorded script, slow
            // feed): stop tracking the oldest — their last holder frees
            // them normally.
            self.pending.drain(..MAX_PENDING / 2);
        }
        self.pending.push(Arc::clone(&col));
        col
    }

    /// Moves every fully released column's buffer back to the spare
    /// list.
    fn reclaim(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            if Arc::strong_count(&self.pending[i]) == 1 {
                let col = self.pending.swap_remove(i);
                // The count can only drop while we hold the last
                // handle, so the unwrap cannot race.
                let col = Arc::try_unwrap(col).unwrap_or_default();
                self.give_back(col.into_bins());
            } else {
                i += 1;
            }
        }
    }

    /// Issued columns still live somewhere (observability/tests).
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Buffers ready for reuse (observability/tests).
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_wraps_and_derefs() {
        let col = PhaseColumn::from_bins(vec![Some(Value::Int(1)), None]);
        assert_eq!(col.len(), 2);
        assert_eq!(col[0], Some(Value::Int(1)));
        assert_eq!(col.bins()[1], None);
        assert_eq!(col.clone().into_bins().len(), 2);
    }

    #[test]
    fn stamps_ride_along_but_never_affect_equality() {
        let bins = vec![Some(Value::Int(1)), None, Some(Value::Int(3))];
        let stamp = BinStamp {
            bin: 2,
            trace_id: 7,
            ingest_nanos: 123,
        };
        let plain = PhaseColumn::from_bins(bins.clone());
        let stamped = PhaseColumn::from_stamped_bins(bins, vec![stamp]);
        assert_eq!(plain, stamped);
        assert_eq!(stamped.stamps(), &[stamp]);
        assert!(plain.stamps().is_empty());
        // Reclamation drops stamps with the column wrapper.
        assert_eq!(stamped.into_bins().len(), 3);
    }

    #[test]
    fn pool_recycles_released_columns() {
        let mut pool = ColumnPool::new();
        let mut bins = pool.checkout();
        bins.reserve(128);
        let ptr = bins.as_ptr() as usize;
        let col = pool.seal(bins);
        assert_eq!(pool.outstanding(), 1);
        // Still held: the next checkout cannot reclaim it.
        let other = pool.checkout();
        assert_ne!(other.as_ptr() as usize, ptr);
        pool.give_back(other);
        drop(col);
        // Released: the buffer (and its capacity) comes back.
        let reused = pool.checkout();
        assert_eq!(reused.as_ptr() as usize, ptr);
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 128);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn retained_columns_never_grow_the_pool_unboundedly() {
        let mut pool = ColumnPool::new();
        let kept: Vec<_> = (0..2 * MAX_PENDING)
            .map(|i| pool.seal(vec![Some(Value::Int(i as i64))]))
            .collect();
        assert!(pool.outstanding() <= MAX_PENDING);
        drop(kept);
        pool.reclaim();
        assert!(pool.spare_count() <= MAX_SPARES);
    }

    #[test]
    fn give_back_clears_and_bounds() {
        let mut pool = ColumnPool::new();
        pool.give_back(vec![Some(Value::Int(9))]);
        let b = pool.checkout();
        assert!(b.is_empty());
    }
}
