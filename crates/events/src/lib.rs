//! # ec-events — event model and stream substrate
//!
//! Event primitives for the serializable Δ-dataflow correlation engine
//! (Zimmerman & Chandy, IPPS 2005):
//!
//! * [`Phase`] — logical execution phases. All events arriving at the
//!   same instant form one phase; phases are indexed sequentially (§2).
//! * [`Timestamp`] — event generation times. The paper assumes perfect
//!   timestamps and zero transmission delay, so events with timestamp `t`
//!   all belong to the phase at time `t`.
//! * [`Value`] — the typed payload carried on graph edges.
//! * [`Event`] — a timestamped value.
//! * [`sources`] — synthetic stream sources (sensors, random walks,
//!   rare-anomaly streams) used as workload generators. These replace the
//!   paper's proprietary sensor feeds with seeded generators exercising
//!   the same code paths (see DESIGN.md §3).
//! * [`window`], [`stats`] — ring buffers, sliding windows and online
//!   statistics (mean/σ, EWMA, linear regression) for the "predicates
//!   over event stream histories" the paper's §1 motivates, such as a
//!   moving average being two standard deviations away from a regression
//!   model.
//! * [`snapshot`] — the [`StateSnapshot`] capability and byte codec
//!   behind checkpoint/restore (`ec-store`).
//! * [`column`] — pooled, `Arc`-shared per-source epoch columns: the
//!   zero-copy unit the streaming runtime seals and fans out to the
//!   WAL, the live feeds and the committed script.

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod event;
pub mod live;
pub mod phase;
pub mod reorder;
pub mod snapshot;
pub mod sources;
pub mod stats;
pub mod timestamp;
pub mod value;
pub mod window;

pub use column::{BinStamp, ColumnPool, PhaseColumn};
pub use event::Event;
pub use live::{FeedWriter, LiveFeed};
pub use phase::Phase;
pub use snapshot::{SnapshotError, StateReader, StateSnapshot, StateWriter};
pub use sources::EventSource;
pub use timestamp::Timestamp;
pub use value::Value;
