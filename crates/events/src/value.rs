//! Typed event payloads.
//!
//! The paper's modules exchange heterogeneous data — temperatures, disease
//! incidence rates, transaction records, alarm flags. [`Value`] is the
//! dynamically typed payload carried on computation-graph edges. It is
//! cheap to clone (the scheduler fans one output out to many successors):
//! text payloads use `Arc<str>` and vectors use `Arc<[f64]>`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A dynamically typed event payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a payload; used for pure "tick"/signal events such as
    /// the phase signals delivered to source vertices (§3.1.2).
    Unit,
    /// Boolean flag (e.g. "condition detected").
    Bool(bool),
    /// Signed integer (e.g. a count or an id).
    Int(i64),
    /// Floating-point measurement (e.g. a temperature).
    Float(f64),
    /// Text payload (e.g. an alert description). Reference-counted so
    /// fan-out does not copy the string.
    Text(Arc<str>),
    /// Fixed vector of floats (e.g. a feature vector or model state).
    Vector(Arc<[f64]>),
}

impl Value {
    /// Builds a text value.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Builds a vector value.
    pub fn vector(v: impl Into<Vec<f64>>) -> Value {
        Value::Vector(Arc::from(v.into()))
    }

    /// Extracts a float, coercing `Int` and `Bool`.
    ///
    /// Returns `None` for non-numeric payloads. This is the conversion
    /// used by numeric operators in the fusion layer.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Extracts an integer (no coercion from float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a vector slice.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The name of the payload's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Vector(_) => "vector",
        }
    }

    /// Structural equality that treats `NaN == NaN` as true, used by
    /// change-detection operators: a module that would re-emit NaN every
    /// phase would defeat the absence-of-messages optimisation.
    pub fn same_as(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Vector(a), Value::Vector(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Unit.as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(
            Value::vector(vec![1.0, 2.0]).as_vector(),
            Some(&[1.0, 2.0][..])
        );
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Unit.as_bool(), None);
    }

    #[test]
    fn same_as_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert!(nan.same_as(&Value::Float(f64::NAN)));
        assert!(nan != Value::Float(f64::NAN)); // PartialEq is IEEE
        assert!(!nan.same_as(&Value::Float(1.0)));
        let v1 = Value::vector(vec![f64::NAN]);
        let v2 = Value::vector(vec![f64::NAN]);
        assert!(v1.same_as(&v2));
    }

    #[test]
    fn same_as_structural() {
        assert!(Value::Int(5).same_as(&Value::Int(5)));
        assert!(!Value::Int(5).same_as(&Value::Float(5.0)));
        assert!(Value::text("a").same_as(&Value::text("a")));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::vector(vec![1.0, 2.5]).to_string(), "[1, 2.5]");
        assert_eq!(Value::text("x").to_string(), "\"x\"");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from(2i64), Value::Int(2));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::text("s"));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Unit.type_name(), "unit");
        assert_eq!(Value::Float(0.0).type_name(), "float");
        assert_eq!(Value::vector(vec![]).type_name(), "vector");
    }
}
