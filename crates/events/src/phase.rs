//! Logical execution phases (§2 of the paper).
//!
//! Events arriving at the fusion engine at the same instant form a
//! *phase*; phases are indexed sequentially from 1 and the collection of
//! events in phase `k` is a snapshot of the environment at time `t_k`.
//! The scheduler pipelines multiple phases while preserving the logical
//! effect of executing them one at a time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 1-based phase number.
///
/// `Phase(0)` is reserved as the "before any phase" sentinel used by the
/// scheduler's `x_0 = N` convention; real phases start at [`Phase::FIRST`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Phase(pub u64);

impl Phase {
    /// The sentinel "zeroth" phase (no events; `x_0 = N`).
    pub const ZERO: Phase = Phase(0);
    /// The first real phase.
    pub const FIRST: Phase = Phase(1);

    /// The next phase.
    #[inline]
    #[must_use]
    pub fn next(self) -> Phase {
        Phase(self.0 + 1)
    }

    /// The previous phase; panics in debug builds on `Phase::ZERO`.
    #[inline]
    #[must_use]
    pub fn prev(self) -> Phase {
        debug_assert!(self.0 > 0, "Phase::ZERO has no predecessor");
        Phase(self.0 - 1)
    }

    /// Raw phase number.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// True for real phases (`p ≥ 1`).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0 >= 1
    }

    /// Iterator over phases `1..=n`.
    pub fn first_n(n: u64) -> impl Iterator<Item = Phase> {
        (1..=n).map(Phase)
    }
}

impl fmt::Debug for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Phase {
    fn from(p: u64) -> Self {
        Phase(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        assert!(Phase::ZERO < Phase::FIRST);
        assert_eq!(Phase::FIRST.next(), Phase(2));
        assert_eq!(Phase(5).prev(), Phase(4));
        assert!(Phase(3).is_real());
        assert!(!Phase::ZERO.is_real());
    }

    #[test]
    fn first_n_enumerates_real_phases() {
        let ps: Vec<Phase> = Phase::first_n(3).collect();
        assert_eq!(ps, vec![Phase(1), Phase(2), Phase(3)]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn prev_of_zero_panics_in_debug() {
        let _ = Phase::ZERO.prev();
    }

    #[test]
    fn formats() {
        assert_eq!(format!("{:?}", Phase(7)), "p7");
        assert_eq!(format!("{}", Phase(7)), "7");
    }
}
