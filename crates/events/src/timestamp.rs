//! Event timestamps.
//!
//! The paper assumes each event carries an accurate timestamp of the
//! instant it was generated and that it reaches the fusion engine with
//! zero delay (§2); under those assumptions all events with timestamp
//! `t_k` form phase `k`. `Timestamp` stores microseconds since an
//! arbitrary epoch; the mapping from distinct timestamps to sequential
//! phase indices is maintained by [`PhaseClock`].

use crate::phase::Phase;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Microseconds since an arbitrary epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Builds a timestamp from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Builds a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` in microseconds.
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}µs", self.0)
    }
}

/// Maps strictly increasing arrival timestamps to sequential phases.
///
/// All events bearing the same timestamp belong to the same phase; a
/// strictly larger timestamp starts the next phase. Out-of-order
/// timestamps are rejected because the paper assumes no delivery delay —
/// relaxing this is listed as future work (§6).
#[derive(Debug, Clone, Default)]
pub struct PhaseClock {
    last: Option<(Timestamp, Phase)>,
}

impl PhaseClock {
    /// New clock with no phases started.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the phase for an event generated at `t`.
    ///
    /// Equal timestamps map to the current phase; later timestamps open
    /// the next phase; earlier timestamps return `None` (a delivery-order
    /// violation under the paper's model).
    pub fn phase_for(&mut self, t: Timestamp) -> Option<Phase> {
        match self.last {
            None => {
                self.last = Some((t, Phase::FIRST));
                Some(Phase::FIRST)
            }
            Some((lt, lp)) => {
                if t == lt {
                    Some(lp)
                } else if t > lt {
                    let p = lp.next();
                    self.last = Some((t, p));
                    Some(p)
                } else {
                    None
                }
            }
        }
    }

    /// The most recently opened phase, if any.
    pub fn current(&self) -> Option<Phase> {
        self.last.map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Timestamp::from_secs(2).micros(), 2_000_000);
        assert_eq!(Timestamp::from_millis(3).micros(), 3_000);
        assert_eq!(Timestamp(10).since(Timestamp(4)), 6);
        assert_eq!(Timestamp(4).since(Timestamp(10)), 0);
    }

    #[test]
    fn phase_clock_groups_equal_timestamps() {
        let mut c = PhaseClock::new();
        assert_eq!(c.phase_for(Timestamp(100)), Some(Phase(1)));
        assert_eq!(c.phase_for(Timestamp(100)), Some(Phase(1)));
        assert_eq!(c.phase_for(Timestamp(200)), Some(Phase(2)));
        assert_eq!(c.phase_for(Timestamp(250)), Some(Phase(3)));
        assert_eq!(c.current(), Some(Phase(3)));
    }

    #[test]
    fn phase_clock_rejects_regression() {
        let mut c = PhaseClock::new();
        c.phase_for(Timestamp(100));
        assert_eq!(c.phase_for(Timestamp(50)), None);
        // Clock state unchanged by the rejected event.
        assert_eq!(c.phase_for(Timestamp(100)), Some(Phase(1)));
    }

    #[test]
    fn empty_clock() {
        let c = PhaseClock::new();
        assert_eq!(c.current(), None);
    }
}
