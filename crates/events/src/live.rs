//! Live-fed event sources.
//!
//! Every source in [`crate::sources`] is scripted: its whole event
//! stream is determined at construction. A live system needs the
//! opposite — a source whose per-phase values are decided *while the
//! engine runs*, by events arriving from the outside world.
//!
//! [`LiveFeed`] is that source. It polls per-phase bins from a shared
//! queue that a [`FeedWriter`] fills at runtime: the streaming runtime
//! stages exactly one bin per source before admitting each phase, so by
//! the time the engine polls the source, its value for that phase is
//! already fixed. This staging discipline is what keeps live execution
//! deterministic after the fact: the sequence of bins *is* the
//! materialized phase script, and replaying it through
//! [`Replay`](crate::sources::Replay) reproduces the run exactly.

use crate::phase::Phase;
use crate::snapshot::{SnapshotError, StateReader, StateSnapshot, StateWriter};
use crate::sources::EventSource;
use crate::value::Value;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Shared bin queue between a [`LiveFeed`] and its [`FeedWriter`].
#[derive(Debug, Default)]
struct FeedQueue {
    bins: VecDeque<Option<Value>>,
    /// Bins ever pushed (for diagnostics).
    pushed: u64,
    /// Polls that found no staged bin (should stay 0 under a correctly
    /// sequenced runtime; counted instead of panicking so a misuse is
    /// observable without bringing the engine down).
    underruns: u64,
}

/// An [`EventSource`] whose per-phase values are staged at runtime.
///
/// Poll order consumes bins FIFO. Polling with no staged bin yields
/// `None` (a silent phase) and increments the underrun counter — the
/// runtime that owns the feed treats underruns as a sequencing bug.
#[derive(Debug)]
pub struct LiveFeed {
    queue: Arc<Mutex<FeedQueue>>,
}

impl LiveFeed {
    /// Creates a live feed and the writer that fills it.
    pub fn channel() -> (LiveFeed, FeedWriter) {
        let queue = Arc::new(Mutex::new(FeedQueue::default()));
        (
            LiveFeed {
                queue: Arc::clone(&queue),
            },
            FeedWriter { queue },
        )
    }
}

impl EventSource for LiveFeed {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        match q.bins.pop_front() {
            Some(bin) => bin,
            None => {
                q.underruns += 1;
                None
            }
        }
    }

    fn kind(&self) -> &'static str {
        "live-feed"
    }

    /// Snapshots the staged-but-unconsumed bins plus the diagnostic
    /// counters. At a retired phase boundary (where checkpoints are
    /// taken) the bin queue is empty — every staged bin has been
    /// polled — so this is normally just the counters.
    fn snapshot_state(&self) -> StateSnapshot {
        let q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let mut w = StateWriter::new();
        w.put_u64(q.pushed);
        w.put_u64(q.underruns);
        w.put_u32(q.bins.len() as u32);
        for bin in &q.bins {
            w.put_opt_value(bin);
        }
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        let pushed = r.get_u64()?;
        let underruns = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut bins = VecDeque::with_capacity(n);
        for _ in 0..n {
            bins.push_back(r.get_opt_value()?);
        }
        r.finish()?;
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.pushed = pushed;
        q.underruns = underruns;
        q.bins = bins;
        Ok(())
    }
}

/// The staging half of a [`LiveFeed`].
///
/// Cloneable; all clones feed the same queue.
#[derive(Debug, Clone)]
pub struct FeedWriter {
    queue: Arc<Mutex<FeedQueue>>,
}

impl FeedWriter {
    /// Stages the bin for the next not-yet-staged phase: `Some(v)` for
    /// a value, `None` for a silent phase.
    pub fn stage(&self, bin: Option<Value>) {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.bins.push_back(bin);
        q.pushed += 1;
    }

    /// Bins staged but not yet consumed by the engine.
    pub fn staged(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .bins
            .len()
    }

    /// Polls that found no staged bin (0 under correct sequencing).
    pub fn underruns(&self) -> u64 {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .underruns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_bins_come_back_in_order() {
        let (mut feed, writer) = LiveFeed::channel();
        writer.stage(Some(Value::Int(1)));
        writer.stage(None);
        writer.stage(Some(Value::Int(3)));
        assert_eq!(writer.staged(), 3);
        assert_eq!(feed.poll(Phase(1)), Some(Value::Int(1)));
        assert_eq!(feed.poll(Phase(2)), None);
        assert_eq!(feed.poll(Phase(3)), Some(Value::Int(3)));
        assert_eq!(writer.staged(), 0);
        assert_eq!(writer.underruns(), 0);
    }

    #[test]
    fn underrun_is_silent_but_counted() {
        let (mut feed, writer) = LiveFeed::channel();
        assert_eq!(feed.poll(Phase(1)), None);
        assert_eq!(writer.underruns(), 1);
        writer.stage(Some(Value::Int(7)));
        assert_eq!(feed.poll(Phase(2)), Some(Value::Int(7)));
        assert_eq!(writer.underruns(), 1);
    }

    #[test]
    fn writer_clones_share_the_queue() {
        let (mut feed, writer) = LiveFeed::channel();
        let w2 = writer.clone();
        w2.stage(Some(Value::Int(9)));
        assert_eq!(writer.staged(), 1);
        assert_eq!(feed.poll(Phase(1)), Some(Value::Int(9)));
    }

    #[test]
    fn kind_reports_live_feed() {
        let (feed, _w) = LiveFeed::channel();
        assert_eq!(feed.kind(), "live-feed");
    }
}
