//! Live-fed event sources.
//!
//! Every source in [`crate::sources`] is scripted: its whole event
//! stream is determined at construction. A live system needs the
//! opposite — a source whose per-phase values are decided *while the
//! engine runs*, by events arriving from the outside world.
//!
//! [`LiveFeed`] is that source. It polls per-phase bins from a shared
//! queue that a [`FeedWriter`] fills at runtime: the streaming runtime
//! stages exactly one bin per source before admitting each phase, so by
//! the time the engine polls the source, its value for that phase is
//! already fixed. This staging discipline is what keeps live execution
//! deterministic after the fact: the sequence of bins *is* the
//! materialized phase script, and replaying it through
//! [`Replay`](crate::sources::Replay) reproduces the run exactly.
//!
//! Bins arrive as shared [`PhaseColumn`] segments — a whole sealed
//! epoch staged in one O(1) handoff
//! ([`stage_column`](FeedWriter::stage_column)) — with a cursor walking
//! each segment bin by bin. [`stage`](FeedWriter::stage) wraps a single
//! bin as a one-phase column for tests and manual drivers.

use crate::column::PhaseColumn;
use crate::phase::Phase;
use crate::snapshot::{SnapshotError, StateReader, StateSnapshot, StateWriter};
use crate::sources::EventSource;
use crate::value::Value;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// One staged epoch: a shared column plus the consumption cursor.
#[derive(Debug)]
struct Segment {
    col: Arc<PhaseColumn>,
    next: usize,
    /// Sparse segments serve only their `Some` bins: silent phases are
    /// never polled (the runtime skipped them at admission), so the
    /// cursor steps over `None`s instead of yielding them.
    sparse: bool,
}

impl Segment {
    /// Bins this segment will still yield to polls.
    fn remaining(&self) -> usize {
        if self.sparse {
            self.col[self.next..].iter().filter(|b| b.is_some()).count()
        } else {
            self.col.len() - self.next
        }
    }
}

/// Shared bin queue between a [`LiveFeed`] and its [`FeedWriter`].
#[derive(Debug, Default)]
struct FeedQueue {
    segments: VecDeque<Segment>,
    /// Bins ever staged (for diagnostics).
    pushed: u64,
    /// Polls that found no staged bin (should stay 0 under a correctly
    /// sequenced runtime; counted instead of panicking so a misuse is
    /// observable without bringing the engine down).
    underruns: u64,
}

impl FeedQueue {
    fn staged(&self) -> usize {
        self.segments.iter().map(Segment::remaining).sum()
    }

    fn remaining_bins(&self) -> impl Iterator<Item = &Option<Value>> {
        self.segments.iter().flat_map(|s| {
            s.col[s.next..]
                .iter()
                .filter(move |b| !s.sparse || b.is_some())
        })
    }
}

/// An [`EventSource`] whose per-phase values are staged at runtime.
///
/// Poll order consumes bins FIFO. Polling with no staged bin yields
/// `None` (a silent phase) and increments the underrun counter — the
/// runtime that owns the feed treats underruns as a sequencing bug.
#[derive(Debug)]
pub struct LiveFeed {
    queue: Arc<Mutex<FeedQueue>>,
}

impl LiveFeed {
    /// Creates a live feed and the writer that fills it.
    pub fn channel() -> (LiveFeed, FeedWriter) {
        let queue = Arc::new(Mutex::new(FeedQueue::default()));
        (
            LiveFeed {
                queue: Arc::clone(&queue),
            },
            FeedWriter { queue },
        )
    }
}

impl EventSource for LiveFeed {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let Some(seg) = q.segments.front_mut() else {
                q.underruns += 1;
                return None;
            };
            if seg.sparse {
                // Silent phases were never admitted for this source:
                // this poll belongs to the next value-bearing phase.
                while seg.next < seg.col.len() && seg.col[seg.next].is_none() {
                    seg.next += 1;
                }
            }
            if seg.next == seg.col.len() {
                // Exhausted segment: dropping the Arc here is what lets
                // the runtime's column pool reclaim the buffer.
                q.segments.pop_front();
                continue;
            }
            let bin = seg.col[seg.next].clone();
            seg.next += 1;
            if seg.next == seg.col.len() {
                q.segments.pop_front();
            }
            return bin;
        }
    }

    fn kind(&self) -> &'static str {
        "live-feed"
    }

    /// Snapshots the staged-but-unconsumed bins plus the diagnostic
    /// counters. At a retired phase boundary (where checkpoints are
    /// taken) the bin queue is empty — every staged bin has been
    /// polled — so this is normally just the counters.
    fn snapshot_state(&self) -> StateSnapshot {
        let q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let mut w = StateWriter::new();
        w.put_u64(q.pushed);
        w.put_u64(q.underruns);
        w.put_u32(q.staged() as u32);
        for bin in q.remaining_bins() {
            w.put_opt_value(bin);
        }
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        let pushed = r.get_u64()?;
        let underruns = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut bins = Vec::with_capacity(n);
        for _ in 0..n {
            bins.push(r.get_opt_value()?);
        }
        r.finish()?;
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.pushed = pushed;
        q.underruns = underruns;
        q.segments.clear();
        if !bins.is_empty() {
            q.segments.push_back(Segment {
                col: Arc::new(PhaseColumn::from_bins(bins)),
                next: 0,
                sparse: false,
            });
        }
        Ok(())
    }
}

/// The staging half of a [`LiveFeed`].
///
/// Cloneable; all clones feed the same queue.
#[derive(Debug, Clone)]
pub struct FeedWriter {
    queue: Arc<Mutex<FeedQueue>>,
}

impl FeedWriter {
    /// Stages the bin for the next not-yet-staged phase: `Some(v)` for
    /// a value, `None` for a silent phase.
    pub fn stage(&self, bin: Option<Value>) {
        self.stage_column(Arc::new(PhaseColumn::from_bins(vec![bin])));
    }

    /// Stages a whole sealed epoch at once: bin `r` of the column is
    /// this source's value for the epoch's `r`-th phase. O(1) — the
    /// column is shared, not copied. Empty columns are ignored.
    pub fn stage_column(&self, col: Arc<PhaseColumn>) {
        self.push_segment(col, false);
    }

    /// Like [`stage_column`](Self::stage_column), for a feed whose
    /// silent phases are skipped at admission (silence-aware admission):
    /// only the column's `Some` bins will ever be polled, one per
    /// value-bearing phase, in order. Columns with no values stage
    /// nothing.
    pub fn stage_column_sparse(&self, col: Arc<PhaseColumn>) {
        self.push_segment(col, true);
    }

    fn push_segment(&self, col: Arc<PhaseColumn>, sparse: bool) {
        let polls = if sparse {
            col.iter().filter(|b| b.is_some()).count()
        } else {
            col.len()
        };
        if polls == 0 {
            return;
        }
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.pushed += polls as u64;
        q.segments.push_back(Segment {
            col,
            next: 0,
            sparse,
        });
    }

    /// Bins staged but not yet consumed by the engine.
    pub fn staged(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .staged()
    }

    /// Polls that found no staged bin (0 under correct sequencing).
    pub fn underruns(&self) -> u64 {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .underruns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_bins_come_back_in_order() {
        let (mut feed, writer) = LiveFeed::channel();
        writer.stage(Some(Value::Int(1)));
        writer.stage(None);
        writer.stage(Some(Value::Int(3)));
        assert_eq!(writer.staged(), 3);
        assert_eq!(feed.poll(Phase(1)), Some(Value::Int(1)));
        assert_eq!(feed.poll(Phase(2)), None);
        assert_eq!(feed.poll(Phase(3)), Some(Value::Int(3)));
        assert_eq!(writer.staged(), 0);
        assert_eq!(writer.underruns(), 0);
    }

    #[test]
    fn staged_columns_interleave_with_single_bins() {
        let (mut feed, writer) = LiveFeed::channel();
        writer.stage_column(Arc::new(PhaseColumn::from_bins(vec![
            Some(Value::Int(1)),
            None,
            Some(Value::Int(3)),
        ])));
        writer.stage(Some(Value::Int(4)));
        writer.stage_column(Arc::new(PhaseColumn::from_bins(Vec::new()))); // ignored
        assert_eq!(writer.staged(), 4);
        let polled: Vec<_> = (1..=4).map(|p| feed.poll(Phase(p))).collect();
        assert_eq!(
            polled,
            vec![
                Some(Value::Int(1)),
                None,
                Some(Value::Int(3)),
                Some(Value::Int(4))
            ]
        );
        assert_eq!(writer.staged(), 0);
        assert_eq!(writer.underruns(), 0);
    }

    #[test]
    fn column_sharing_does_not_copy_payloads() {
        // The staged column and the polled value share one text
        // allocation: fan-out is pointer-counted, not copied.
        let (mut feed, writer) = LiveFeed::channel();
        let text: Arc<str> = Arc::from("shared");
        let col = Arc::new(PhaseColumn::from_bins(vec![Some(Value::Text(Arc::clone(
            &text,
        )))]));
        writer.stage_column(Arc::clone(&col));
        let polled = feed.poll(Phase(1)).unwrap();
        match (&polled, &col[0]) {
            (Value::Text(a), Some(Value::Text(b))) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("unexpected bins: {other:?}"),
        }
    }

    #[test]
    fn sparse_columns_serve_only_their_values() {
        let (mut feed, writer) = LiveFeed::channel();
        writer.stage_column_sparse(Arc::new(PhaseColumn::from_bins(vec![
            None,
            Some(Value::Int(1)),
            None,
            Some(Value::Int(2)),
        ])));
        writer.stage_column_sparse(Arc::new(PhaseColumn::from_bins(vec![None, None]))); // no-op
        writer.stage_column_sparse(Arc::new(PhaseColumn::from_bins(vec![Some(Value::Int(3))])));
        assert_eq!(writer.staged(), 3);
        // Only the value-bearing phases are polled under silence-aware
        // admission; the silent bins are stepped over.
        assert_eq!(feed.poll(Phase(2)), Some(Value::Int(1)));
        assert_eq!(feed.poll(Phase(4)), Some(Value::Int(2)));
        assert_eq!(feed.poll(Phase(5)), Some(Value::Int(3)));
        assert_eq!(writer.staged(), 0);
        assert_eq!(writer.underruns(), 0);
        // Snapshot after partial consumption excludes skipped silents.
        writer.stage_column_sparse(Arc::new(PhaseColumn::from_bins(vec![
            None,
            Some(Value::Int(9)),
        ])));
        let StateSnapshot::Bytes(bytes) = feed.snapshot_state() else {
            panic!("expected bytes")
        };
        let (mut restored, w2) = LiveFeed::channel();
        restored.restore_state(&bytes).unwrap();
        assert_eq!(w2.staged(), 1);
        assert_eq!(restored.poll(Phase(7)), Some(Value::Int(9)));
    }

    #[test]
    fn underrun_is_silent_but_counted() {
        let (mut feed, writer) = LiveFeed::channel();
        assert_eq!(feed.poll(Phase(1)), None);
        assert_eq!(writer.underruns(), 1);
        writer.stage(Some(Value::Int(7)));
        assert_eq!(feed.poll(Phase(2)), Some(Value::Int(7)));
        assert_eq!(writer.underruns(), 1);
    }

    #[test]
    fn snapshot_restores_partially_consumed_segments() {
        let (mut feed, writer) = LiveFeed::channel();
        writer.stage_column(Arc::new(PhaseColumn::from_bins(vec![
            Some(Value::Int(1)),
            Some(Value::Int(2)),
            None,
        ])));
        assert_eq!(feed.poll(Phase(1)), Some(Value::Int(1)));
        let snap = feed.snapshot_state();
        let StateSnapshot::Bytes(bytes) = snap else {
            panic!("expected bytes")
        };
        let (mut restored, w2) = LiveFeed::channel();
        restored.restore_state(&bytes).unwrap();
        assert_eq!(w2.staged(), 2);
        assert_eq!(restored.poll(Phase(2)), Some(Value::Int(2)));
        assert_eq!(restored.poll(Phase(3)), None);
        assert_eq!(w2.underruns(), 0);
        assert_eq!(restored.poll(Phase(4)), None);
        assert_eq!(w2.underruns(), 1);
    }

    #[test]
    fn writer_clones_share_the_queue() {
        let (mut feed, writer) = LiveFeed::channel();
        let w2 = writer.clone();
        w2.stage(Some(Value::Int(9)));
        assert_eq!(writer.staged(), 1);
        assert_eq!(feed.poll(Phase(1)), Some(Value::Int(9)));
    }

    #[test]
    fn kind_reports_live_feed() {
        let (feed, _w) = LiveFeed::channel();
        assert_eq!(feed.kind(), "live-feed");
    }
}
