//! Timestamped events.

use crate::timestamp::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A value generated at a specific instant.
///
/// Under the paper's model (§2) an event generated at time `t` arrives at
/// the fusion engine at time `t`; the engine groups simultaneous events
/// into phases via [`crate::timestamp::PhaseClock`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Generation (= arrival) time.
    pub timestamp: Timestamp,
    /// Payload.
    pub value: Value,
}

impl Event {
    /// Builds an event.
    pub fn new(timestamp: Timestamp, value: impl Into<Value>) -> Self {
        Event {
            timestamp,
            value: value.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = Event::new(Timestamp(5), 1.5);
        assert_eq!(e.timestamp, Timestamp(5));
        assert_eq!(e.value, Value::Float(1.5));
    }
}
