//! Operator-state snapshots: the byte-level capability behind
//! checkpoint/restore.
//!
//! A live correlation service is only as durable as its operators'
//! state: replaying a write-ahead log from phase 1 reproduces any run,
//! but a service that has retired millions of phases cannot afford
//! that. [`StateSnapshot`] is the capability every stateful component
//! (event sources, modules, operators) can implement to serialize its
//! internal state at a *retired phase boundary*, so recovery restores
//! the state and replays only the log tail.
//!
//! The encoding is deliberately hand-rolled ([`StateWriter`] /
//! [`StateReader`]): fixed-width little-endian scalars, length-prefixed
//! strings and [`Value`]s. No self-description — a snapshot is only
//! meaningful next to the code that wrote it, which recovery guarantees
//! by rebuilding the identical graph first.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// What a component reports when asked to snapshot its state.
#[derive(Debug, Clone, PartialEq)]
pub enum StateSnapshot {
    /// The component keeps no state across phases; nothing to save and
    /// nothing to restore.
    Stateless,
    /// Serialized internal state (decode with [`StateReader`]).
    Bytes(Vec<u8>),
    /// The component is stateful but cannot be snapshotted (e.g. it
    /// wraps an opaque RNG). A checkpoint containing such a component
    /// must fail rather than silently restore wrong state.
    Unsupported,
}

impl StateSnapshot {
    /// Shorthand: finishes a writer into a `Bytes` snapshot.
    pub fn from_writer(w: StateWriter) -> StateSnapshot {
        StateSnapshot::Bytes(w.into_bytes())
    }
}

/// Error decoding or applying a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl SnapshotError {
    /// Builds an error.
    pub fn new(msg: impl Into<String>) -> SnapshotError {
        SnapshotError(msg.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only encoder for snapshot payloads.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// New empty writer.
    pub fn new() -> StateWriter {
        StateWriter::default()
    }

    /// Writer over a recycled buffer: the buffer is cleared but its
    /// capacity is kept, so hot-path encoders (the WAL's per-row
    /// staging) re-encode into the same allocation every time.
    pub fn reuse(mut buf: Vec<u8>) -> StateWriter {
        buf.clear();
        StateWriter { buf }
    }

    /// Finishes into the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` (IEEE bits, so NaN round-trips exactly).
    pub fn put_f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Appends a boolean (one byte).
    pub fn put_bool(&mut self, x: bool) {
        self.buf.push(x as u8);
    }

    /// Appends `Some(f64)` or a none marker.
    pub fn put_opt_f64(&mut self, x: Option<f64>) {
        match x {
            Some(v) => {
                self.put_u8(1);
                self.put_f64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends `Some(u64)` or a none marker.
    pub fn put_opt_u64(&mut self, x: Option<u64>) {
        match x {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a [`Value`] (tagged).
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(x) => {
                self.put_u8(3);
                self.put_f64(*x);
            }
            Value::Text(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Value::Vector(xs) => {
                self.put_u8(5);
                self.put_u32(xs.len() as u32);
                for &x in xs.iter() {
                    self.put_f64(x);
                }
            }
        }
    }

    /// Appends `Some(value)` or a none marker — the encoding of one
    /// phase-script bin.
    pub fn put_opt_value(&mut self, v: &Option<Value>) {
        self.put_bin(v.as_ref());
    }

    /// Like [`put_opt_value`](Self::put_opt_value) for a borrowed bin —
    /// identical bytes, no owned `Option` required (columnar callers
    /// hold `Option<&Value>`).
    pub fn put_bin(&mut self, v: Option<&Value>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_value(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based decoder matching [`StateWriter`].
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Reader over a snapshot payload.
    pub fn new(buf: &'a [u8]) -> StateReader<'a> {
        StateReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::new(format!(
                "{} trailing bytes in snapshot",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::new(format!(
                "truncated snapshot: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from IEEE bits.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    /// Reads a boolean.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::new(format!("bad bool byte {other}"))),
        }
    }

    /// Reads an optional `f64`.
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_f64()?)),
            other => Err(SnapshotError::new(format!("bad option tag {other}"))),
        }
    }

    /// Reads an optional `u64`.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            other => Err(SnapshotError::new(format!("bad option tag {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::new("snapshot string is not UTF-8"))
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.get_u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a [`Value`].
    pub fn get_value(&mut self) -> Result<Value, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(Value::Unit),
            1 => Ok(Value::Bool(self.get_bool()?)),
            2 => Ok(Value::Int(self.get_i64()?)),
            3 => Ok(Value::Float(self.get_f64()?)),
            4 => Ok(Value::Text(Arc::from(self.get_str()?.as_str()))),
            5 => {
                let n = self.get_u32()? as usize;
                let mut xs = Vec::with_capacity(n);
                for _ in 0..n {
                    xs.push(self.get_f64()?);
                }
                Ok(Value::Vector(Arc::from(xs)))
            }
            other => Err(SnapshotError::new(format!("bad value tag {other}"))),
        }
    }

    /// Reads an optional [`Value`] (one phase-script bin).
    pub fn get_opt_value(&mut self) -> Result<Option<Value>, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_value()?)),
            other => Err(SnapshotError::new(format!("bad option tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(1.5));
        w.put_opt_u64(Some(9));
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn values_round_trip() {
        let values = [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(f64::NAN),
            Value::text("correlation"),
            Value::vector(vec![1.0, -2.5, f64::INFINITY]),
        ];
        for v in &values {
            let mut w = StateWriter::new();
            w.put_value(v);
            w.put_opt_value(&Some(v.clone()));
            w.put_opt_value(&None);
            let bytes = w.into_bytes();
            let mut r = StateReader::new(&bytes);
            assert!(r.get_value().unwrap().same_as(v));
            assert!(r.get_opt_value().unwrap().unwrap().same_as(v));
            assert_eq!(r.get_opt_value().unwrap(), None);
            r.finish().unwrap();
        }
    }

    #[test]
    fn truncation_and_trailing_detected() {
        let mut w = StateWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());
        let mut r = StateReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bad_tags_rejected() {
        let mut r = StateReader::new(&[9]);
        assert!(r.get_value().is_err());
        let mut r = StateReader::new(&[7]);
        assert!(r.get_bool().is_err());
        let mut r = StateReader::new(&[3]);
        assert!(r.get_opt_f64().is_err());
    }
}
