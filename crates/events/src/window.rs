//! Ring buffers and sliding windows over event histories.
//!
//! The paper's predicates are defined over *event stream histories* (§1):
//! one-week moving averages, one-month regression windows, and so on.
//! [`RingBuffer`] is a fixed-capacity FIFO; [`SlidingWindow`] specialises
//! it to `f64` samples and maintains running sums so mean and variance
//! are O(1) per update.

use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// A fixed-capacity FIFO buffer; pushing to a full buffer evicts the
/// oldest element.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    head: usize,
    len: usize,
    capacity: usize,
}

impl<T: Clone> RingBuffer<T> {
    /// Creates a buffer holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingBuffer capacity must be positive");
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            capacity,
        }
    }

    /// Pushes `item`, returning the evicted element if the buffer was full.
    pub fn push(&mut self, item: T) -> Option<T> {
        if self.len < self.capacity {
            if self.buf.len() < self.capacity {
                self.buf.push(item);
            } else {
                let idx = (self.head + self.len) % self.capacity;
                self.buf[idx] = item;
            }
            self.len += 1;
            None
        } else {
            let evicted = std::mem::replace(&mut self.buf[self.head], item);
            self.head = (self.head + 1) % self.capacity;
            Some(evicted)
        }
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Maximum number of elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The `i`-th oldest element (0 = oldest).
    pub fn get(&self, i: usize) -> Option<&T> {
        if i < self.len {
            Some(&self.buf[(self.head + i) % self.capacity])
        } else {
            None
        }
    }

    /// Oldest element.
    pub fn front(&self) -> Option<&T> {
        self.get(0)
    }

    /// Newest element.
    pub fn back(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.get(self.len - 1)
        }
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }
}

/// A sliding window of `f64` samples with O(1) mean and variance.
///
/// Maintains `Σx` and `Σx²` incrementally as samples enter and leave.
/// For the window sizes used in stream predicates (tens to thousands of
/// samples) the incremental sums are numerically adequate; the unit tests
/// compare against direct summation.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    ring: RingBuffer<f64>,
    sum: f64,
    sum_sq: f64,
}

impl SlidingWindow {
    /// Creates a window over the last `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        SlidingWindow {
            ring: RingBuffer::new(capacity),
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a sample, evicting the oldest if full.
    pub fn push(&mut self, x: f64) {
        if let Some(old) = self.ring.push(x) {
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Number of samples currently in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if the window holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// True once the window has reached capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// Window mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.sum / self.ring.len() as f64)
        }
    }

    /// Population variance; `None` when empty. Clamped at zero to guard
    /// against negative values from floating-point cancellation.
    pub fn variance(&self) -> Option<f64> {
        let n = self.ring.len() as f64;
        if self.ring.is_empty() {
            return None;
        }
        let mean = self.sum / n;
        Some((self.sum_sq / n - mean * mean).max(0.0))
    }

    /// Population standard deviation; `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Z-score of `x` against the window; `None` when the window is empty
    /// or has zero spread.
    pub fn zscore(&self, x: f64) -> Option<f64> {
        let sd = self.stddev()?;
        if sd == 0.0 {
            None
        } else {
            Some((x - self.mean()?) / sd)
        }
    }

    /// Iterates samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.ring.iter().copied()
    }

    /// Newest sample.
    pub fn last(&self) -> Option<f64> {
        self.ring.back().copied()
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }

    /// Serializes the window contents (not the capacity — that is
    /// configuration, re-established by whoever rebuilds the owner).
    pub fn snapshot_into(&self, w: &mut StateWriter) {
        w.put_u32(self.ring.len() as u32);
        for x in self.iter() {
            w.put_f64(x);
        }
    }

    /// Restores contents captured by
    /// [`snapshot_into`](Self::snapshot_into), re-pushing each sample so
    /// the running sums are rebuilt from scratch.
    pub fn restore_from(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_u32()? as usize;
        self.clear();
        for _ in 0..n {
            self.push(r.get_f64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fills_then_evicts_fifo() {
        let mut r = RingBuffer::new(3);
        assert_eq!(r.push(1), None);
        assert_eq!(r.push(2), None);
        assert_eq!(r.push(3), None);
        assert!(r.is_full());
        assert_eq!(r.push(4), Some(1));
        assert_eq!(r.push(5), Some(2));
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, vec![3, 4, 5]);
        assert_eq!(r.front(), Some(&3));
        assert_eq!(r.back(), Some(&5));
    }

    #[test]
    fn ring_get_out_of_range() {
        let mut r = RingBuffer::new(2);
        r.push(10);
        assert_eq!(r.get(0), Some(&10));
        assert_eq!(r.get(1), None);
    }

    #[test]
    fn ring_clear() {
        let mut r = RingBuffer::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.front(), None);
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic]
    fn ring_zero_capacity_panics() {
        let _ = RingBuffer::<i32>::new(0);
    }

    #[test]
    fn window_mean_and_variance_match_direct() {
        let mut w = SlidingWindow::new(4);
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for (i, &x) in data.iter().enumerate() {
            w.push(x);
            let lo = i.saturating_sub(3);
            let slice = &data[lo..=i];
            let n = slice.len() as f64;
            let mean = slice.iter().sum::<f64>() / n;
            let var = slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            assert!((w.mean().unwrap() - mean).abs() < 1e-12);
            assert!((w.variance().unwrap() - var).abs() < 1e-9);
        }
    }

    #[test]
    fn window_empty_stats() {
        let w = SlidingWindow::new(3);
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert_eq!(w.stddev(), None);
        assert_eq!(w.zscore(1.0), None);
        assert_eq!(w.last(), None);
    }

    #[test]
    fn zscore_flags_outlier() {
        let mut w = SlidingWindow::new(100);
        for i in 0..100 {
            w.push((i % 5) as f64); // mean 2, bounded spread
        }
        let z = w.zscore(50.0).unwrap();
        assert!(z > 10.0, "z = {z}");
    }

    #[test]
    fn zscore_zero_spread_is_none() {
        let mut w = SlidingWindow::new(5);
        for _ in 0..5 {
            w.push(2.0);
        }
        assert_eq!(w.zscore(3.0), None);
    }

    #[test]
    fn variance_never_negative() {
        let mut w = SlidingWindow::new(8);
        for _ in 0..100 {
            w.push(1e9 + 0.001); // cancellation-prone values
        }
        assert!(w.variance().unwrap() >= 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// RingBuffer behaves exactly like a capacity-capped VecDeque.
        #[test]
        fn ring_matches_model(
            capacity in 1usize..16,
            ops in proptest::collection::vec(0i32..1000, 0..64),
        ) {
            let mut ring = RingBuffer::new(capacity);
            let mut model: VecDeque<i32> = VecDeque::new();
            for x in ops {
                let evicted = ring.push(x);
                model.push_back(x);
                let expect_evicted = if model.len() > capacity {
                    model.pop_front()
                } else {
                    None
                };
                prop_assert_eq!(evicted, expect_evicted);
                prop_assert_eq!(ring.len(), model.len());
                prop_assert_eq!(ring.front().copied(), model.front().copied());
                prop_assert_eq!(ring.back().copied(), model.back().copied());
                let got: Vec<i32> = ring.iter().copied().collect();
                let want: Vec<i32> = model.iter().copied().collect();
                prop_assert_eq!(got, want);
            }
        }

        /// SlidingWindow statistics match direct recomputation over the
        /// window contents, for arbitrary inputs.
        #[test]
        fn window_stats_match_direct(
            capacity in 1usize..12,
            xs in proptest::collection::vec(-1e3f64..1e3, 1..48),
        ) {
            let mut w = SlidingWindow::new(capacity);
            for (i, &x) in xs.iter().enumerate() {
                w.push(x);
                let lo = (i + 1).saturating_sub(capacity);
                let slice = &xs[lo..=i];
                let n = slice.len() as f64;
                let mean = slice.iter().sum::<f64>() / n;
                let var = slice
                    .iter()
                    .map(|v| (v - mean) * (v - mean))
                    .sum::<f64>() / n;
                prop_assert!((w.mean().unwrap() - mean).abs() < 1e-6);
                prop_assert!((w.variance().unwrap() - var).abs() < 1e-4);
                prop_assert_eq!(w.len(), slice.len());
                prop_assert_eq!(w.last(), Some(x));
            }
        }
    }
}
