//! Delayed and out-of-order delivery (the paper's §6 future work).
//!
//! The paper assumes events with timestamp `t` arrive at time `t`. §6
//! relaxes this: "In reality, clocks in sensors are noisy and message
//! delays may be significant and random. The fusion engine must wait
//! long enough after time `t` to ensure that sensor data taken at time
//! `t` arrives with high probability."
//!
//! [`ReorderBuffer`] is that waiting mechanism: events are buffered by
//! generation timestamp and a *watermark* trails the current time by a
//! configurable `max_delay`; when the watermark passes `t`, all events
//! generated at `t` are released as one closed batch (one phase).
//! Events arriving after their batch closed are **late** — they are
//! counted (and optionally inspected) so the false-negative probability
//! of a given `max_delay` can be quantified, which is exactly the error
//! analysis §6 calls for.
//!
//! [`DelayModel`] simulates the network: it wraps per-event random
//! delays (uniform in a configurable range) so tests and benches can
//! generate realistic arrival processes from the deterministic sources
//! in [`crate::sources`].

use crate::timestamp::Timestamp;
use crate::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// An event annotated with both generation and arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayedEvent {
    /// When the sensor generated the event.
    pub generated: Timestamp,
    /// When the fusion engine received it.
    pub arrival: Timestamp,
    /// Payload.
    pub value: Value,
}

impl DelayedEvent {
    /// Delivery delay in microseconds.
    pub fn delay(&self) -> u64 {
        self.arrival.since(self.generated)
    }
}

/// Outcome of offering an event to the buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Offer {
    /// Buffered; will be released when the watermark passes its
    /// generation time.
    Accepted,
    /// The event's phase already closed; it is counted as late and
    /// dropped (a potential false negative).
    Late {
        /// How far behind the watermark the event was, in µs.
        behind: u64,
    },
}

/// A batch of simultaneous events released by the watermark — the raw
/// material of one phase (§2's "snapshot of the system at time t").
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedBatch {
    /// The generation instant this batch snapshots.
    pub timestamp: Timestamp,
    /// Values generated at that instant, in arrival order.
    pub values: Vec<Value>,
}

/// Watermark-based reorder buffer.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    max_delay: u64,
    pending: BTreeMap<Timestamp, Vec<Value>>,
    watermark: Option<Timestamp>,
    late_events: u64,
    accepted_events: u64,
}

impl ReorderBuffer {
    /// Waits `max_delay` microseconds past each generation time before
    /// closing its batch.
    pub fn new(max_delay: u64) -> Self {
        ReorderBuffer {
            max_delay,
            pending: BTreeMap::new(),
            watermark: None,
            late_events: 0,
            accepted_events: 0,
        }
    }

    /// The configured wait.
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }

    /// Generation times ≤ the watermark are closed.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Events dropped because they arrived after their batch closed.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Events accepted into batches.
    pub fn accepted_events(&self) -> u64 {
        self.accepted_events
    }

    /// Fraction of offered events that were late (potential false
    /// negatives) — the §6 error quantity.
    pub fn late_fraction(&self) -> f64 {
        let total = self.late_events + self.accepted_events;
        if total == 0 {
            0.0
        } else {
            self.late_events as f64 / total as f64
        }
    }

    /// Offers an event that was `generated` at the given instant.
    pub fn offer(&mut self, generated: Timestamp, value: Value) -> Offer {
        if let Some(w) = self.watermark {
            if generated <= w {
                self.late_events += 1;
                return Offer::Late {
                    behind: w.since(generated),
                };
            }
        }
        self.accepted_events += 1;
        self.pending.entry(generated).or_default().push(value);
        Offer::Accepted
    }

    /// Advances time to `now`, closing every batch whose generation
    /// time is at least `max_delay` old. Returns closed batches in
    /// generation-time order (ready to become consecutive phases).
    pub fn advance(&mut self, now: Timestamp) -> Vec<ClosedBatch> {
        // Until `max_delay` has elapsed from the epoch nothing can
        // close (checked_sub, not saturating: a watermark of 0 would
        // wrongly close generation time 0 immediately).
        let Some(w) = now.micros().checked_sub(self.max_delay) else {
            return Vec::new();
        };
        let new_watermark = Timestamp(w);
        if self.watermark.is_some_and(|w| new_watermark <= w) {
            return Vec::new();
        }
        let mut closed = Vec::new();
        let keys: Vec<Timestamp> = self
            .pending
            .range(..=new_watermark)
            .map(|(t, _)| *t)
            .collect();
        for t in keys {
            let values = self.pending.remove(&t).expect("key just seen");
            closed.push(ClosedBatch {
                timestamp: t,
                values,
            });
        }
        self.watermark = Some(new_watermark);
        closed
    }

    /// Number of buffered (not yet closed) generation instants.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drains everything regardless of the watermark (end of stream).
    pub fn flush(&mut self) -> Vec<ClosedBatch> {
        let batches = std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(timestamp, values)| ClosedBatch { timestamp, values })
            .collect();
        if let Some((t, _)) = self.pending.last_key_value() {
            self.watermark = Some(*t);
        }
        batches
    }
}

/// Simulates random per-event delivery delays.
#[derive(Debug, Clone)]
pub struct DelayModel {
    rng: SmallRng,
    min_delay: u64,
    max_delay: u64,
}

impl DelayModel {
    /// Uniform delays in `[min_delay, max_delay]` microseconds.
    pub fn uniform(min_delay: u64, max_delay: u64, seed: u64) -> Self {
        assert!(min_delay <= max_delay);
        DelayModel {
            rng: SmallRng::seed_from_u64(seed),
            min_delay,
            max_delay,
        }
    }

    /// Stamps an arrival time onto an event generated at `generated`.
    pub fn deliver(&mut self, generated: Timestamp, value: Value) -> DelayedEvent {
        let delay = self.rng.gen_range(self.min_delay..=self.max_delay);
        DelayedEvent {
            generated,
            arrival: Timestamp(generated.micros() + delay),
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery_batches_by_timestamp() {
        let mut buf = ReorderBuffer::new(10);
        buf.offer(Timestamp(100), Value::Int(1));
        buf.offer(Timestamp(100), Value::Int(2));
        buf.offer(Timestamp(200), Value::Int(3));
        // Nothing closes before the watermark reaches t + max_delay.
        assert!(buf.advance(Timestamp(105)).is_empty());
        let closed = buf.advance(Timestamp(110));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].timestamp, Timestamp(100));
        assert_eq!(closed[0].values, vec![Value::Int(1), Value::Int(2)]);
        let closed = buf.advance(Timestamp(500));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].timestamp, Timestamp(200));
    }

    #[test]
    fn out_of_order_within_delay_is_reassembled() {
        let mut buf = ReorderBuffer::new(50);
        buf.offer(Timestamp(200), Value::Int(2));
        buf.offer(Timestamp(100), Value::Int(1)); // arrives later, generated earlier
        let closed = buf.advance(Timestamp(250));
        let times: Vec<u64> = closed.iter().map(|b| b.timestamp.micros()).collect();
        assert_eq!(times, vec![100, 200]);
        assert_eq!(buf.late_events(), 0);
    }

    #[test]
    fn late_events_are_counted_not_delivered() {
        let mut buf = ReorderBuffer::new(10);
        buf.offer(Timestamp(100), Value::Int(1));
        buf.advance(Timestamp(200)); // watermark = 190
        let offer = buf.offer(Timestamp(150), Value::Int(9));
        assert_eq!(offer, Offer::Late { behind: 40 });
        assert_eq!(buf.late_events(), 1);
        assert_eq!(buf.accepted_events(), 1);
        assert!((buf.late_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn watermark_never_regresses() {
        let mut buf = ReorderBuffer::new(10);
        buf.advance(Timestamp(100));
        assert_eq!(buf.watermark(), Some(Timestamp(90)));
        buf.advance(Timestamp(50)); // time going backwards: ignored
        assert_eq!(buf.watermark(), Some(Timestamp(90)));
    }

    #[test]
    fn flush_releases_everything() {
        let mut buf = ReorderBuffer::new(1_000_000);
        buf.offer(Timestamp(1), Value::Int(1));
        buf.offer(Timestamp(2), Value::Int(2));
        let batches = buf.flush();
        assert_eq!(batches.len(), 2);
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn larger_max_delay_reduces_late_fraction() {
        // The §6 trade-off, measured: with random delivery delays up to
        // 100 µs, waiting only 20 µs loses events; waiting strictly
        // longer than the max delay (110 µs) loses none, at the cost of
        // latency. (Waiting exactly 100 µs can still lose delay-100
        // events when the clock advances past their arrival first —
        // the wait must strictly exceed the worst-case delay.)
        let run = |wait: u64| -> f64 {
            let mut model = DelayModel::uniform(0, 100, 42);
            let mut buf = ReorderBuffer::new(wait);
            // Events generated every 10 µs; arrivals processed in
            // arrival order.
            let mut deliveries: Vec<DelayedEvent> = (0..500u64)
                .map(|i| model.deliver(Timestamp(i * 10), Value::Int(i as i64)))
                .collect();
            deliveries.sort_by_key(|e| e.arrival);
            for e in deliveries {
                buf.advance(e.arrival);
                buf.offer(e.generated, e.value);
            }
            buf.late_fraction()
        };
        let short = run(20);
        let long = run(110);
        assert!(
            short > 0.0,
            "20 µs wait must lose some 0-100 µs-delayed events"
        );
        assert_eq!(long, 0.0, "waiting past the max delay loses nothing");
        assert!(short > long);
    }

    #[test]
    fn delay_model_is_deterministic_and_bounded() {
        let mut a = DelayModel::uniform(5, 15, 7);
        let mut b = DelayModel::uniform(5, 15, 7);
        for i in 0..100 {
            let ea = a.deliver(Timestamp(i * 100), Value::Int(i as i64));
            let eb = b.deliver(Timestamp(i * 100), Value::Int(i as i64));
            assert_eq!(ea, eb);
            assert!((5..=15).contains(&ea.delay()));
        }
    }
}
