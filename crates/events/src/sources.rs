//! Synthetic event stream sources (workload generators).
//!
//! The paper's evaluation feeds its engine from simulated sensors driven
//! by "random seeds … for the generation of random values by source
//! vertices" (§4). These generators are the Rust equivalent: every
//! source is seeded and fully deterministic, so parallel runs can be
//! compared against the sequential oracle event-for-event.
//!
//! A source is polled once per phase. Returning `None` means the source
//! has *no new information* this phase — under Δ-dataflow that absence
//! itself carries information and produces no message. The
//! [`Sparse`] wrapper turns any inner source into a rare-change stream,
//! reproducing the paper's 1-in-a-million anomalous-transaction argument
//! (§1).

use crate::phase::Phase;
use crate::snapshot::{SnapshotError, StateReader, StateSnapshot, StateWriter};
use crate::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic generator polled once per phase.
pub trait EventSource: Send {
    /// The value generated for `phase`, or `None` if this source has
    /// nothing new to report (no message will be sent).
    fn poll(&mut self, phase: Phase) -> Option<Value>;

    /// Human-readable kind, for diagnostics.
    fn kind(&self) -> &'static str {
        "source"
    }

    /// Serializes the source's internal state for checkpointing.
    ///
    /// The default is [`StateSnapshot::Unsupported`]: a checkpoint
    /// containing a source that cannot save its state fails loudly
    /// instead of restoring wrong replay positions. Deterministic
    /// scripted sources ([`Counter`], [`Replay`], [`StepChange`],
    /// [`Constant`]) and the live feed support snapshots; seeded RNG
    /// sources do not (their generator state is opaque).
    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot::Unsupported
    }

    /// Restores state captured by
    /// [`snapshot_state`](EventSource::snapshot_state).
    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), SnapshotError> {
        Err(SnapshotError::new(format!(
            "source {:?} does not support state restore",
            self.kind()
        )))
    }
}

/// Emits the same value every phase.
#[derive(Debug, Clone)]
pub struct Constant {
    value: Value,
}

impl Constant {
    /// A source that reports `value` each phase.
    pub fn new(value: impl Into<Value>) -> Self {
        Constant {
            value: value.into(),
        }
    }
}

impl EventSource for Constant {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        Some(self.value.clone())
    }
    fn kind(&self) -> &'static str {
        "constant"
    }
    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot::Stateless
    }
    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), SnapshotError> {
        Ok(())
    }
}

/// Replays a fixed sequence of optional values, one per phase, then
/// yields `None` forever. Used to script exact scenarios in tests.
#[derive(Debug, Clone)]
pub struct Replay {
    items: Vec<Option<Value>>,
    pos: usize,
}

impl Replay {
    /// Replays `items` in order.
    pub fn new(items: Vec<Option<Value>>) -> Self {
        Replay { items, pos: 0 }
    }

    /// Convenience: replays `values`, emitting every phase.
    pub fn dense(values: Vec<Value>) -> Self {
        Replay::new(values.into_iter().map(Some).collect())
    }
}

impl EventSource for Replay {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        let item = self.items.get(self.pos).cloned().flatten();
        self.pos += 1;
        item
    }
    fn kind(&self) -> &'static str {
        "replay"
    }
    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_u64(self.pos as u64);
        StateSnapshot::from_writer(w)
    }
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.pos = r.get_u64()? as usize;
        r.finish()
    }
}

/// A seeded Gaussian-ish random walk: `x += step · (2·U − 1)` with
/// uniform `U`. Models drifting sensor measurements (temperature, load).
#[derive(Debug, Clone)]
pub struct RandomWalk {
    rng: SmallRng,
    x: f64,
    step: f64,
}

impl RandomWalk {
    /// Walk starting at `start`, moving at most `step` per phase.
    pub fn new(start: f64, step: f64, seed: u64) -> Self {
        RandomWalk {
            rng: SmallRng::seed_from_u64(seed),
            x: start,
            step,
        }
    }
}

impl EventSource for RandomWalk {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        let u: f64 = self.rng.gen();
        self.x += self.step * (2.0 * u - 1.0);
        Some(Value::Float(self.x))
    }
    fn kind(&self) -> &'static str {
        "random-walk"
    }
}

/// A diurnal sine wave plus seeded noise — the paper's temperature
/// example (§1: 15 °C at midnight, 30 °C at noon).
#[derive(Debug, Clone)]
pub struct Diurnal {
    rng: SmallRng,
    mean: f64,
    amplitude: f64,
    period: u64,
    noise: f64,
}

impl Diurnal {
    /// Sine of the given `period` (phases per cycle) around `mean` with
    /// the given `amplitude`, plus uniform noise in `±noise`.
    pub fn new(mean: f64, amplitude: f64, period: u64, noise: f64, seed: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Diurnal {
            rng: SmallRng::seed_from_u64(seed),
            mean,
            amplitude,
            period,
            noise,
        }
    }
}

impl EventSource for Diurnal {
    fn poll(&mut self, phase: Phase) -> Option<Value> {
        let theta = (phase.get() % self.period) as f64 / self.period as f64 * std::f64::consts::TAU;
        let eps: f64 = self.rng.gen_range(-1.0..=1.0) * self.noise;
        Some(Value::Float(self.mean + self.amplitude * theta.sin() + eps))
    }
    fn kind(&self) -> &'static str {
        "diurnal"
    }
}

/// Wraps an inner source so it reports only with probability `p` per
/// phase — the paper's anomalous-transaction stream: "if one in a million
/// transactions is anomalous then the rate of events … is only a
/// millionth" (§1).
pub struct Sparse {
    inner: Box<dyn EventSource>,
    rng: SmallRng,
    p: f64,
}

impl Sparse {
    /// Emits the inner source's value with probability `p` per phase.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(inner: Box<dyn EventSource>, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Sparse {
            inner,
            rng: SmallRng::seed_from_u64(seed),
            p,
        }
    }

    /// Sparse stream over integer event ids, convenient for tests.
    pub fn counter(p: f64, seed: u64) -> Self {
        Sparse::new(Box::new(Counter::new()), p, seed)
    }
}

impl EventSource for Sparse {
    fn poll(&mut self, phase: Phase) -> Option<Value> {
        // Poll the inner source unconditionally so the underlying stream
        // advances deterministically regardless of gating.
        let v = self.inner.poll(phase);
        if self.rng.gen_bool(self.p) {
            v
        } else {
            None
        }
    }
    fn kind(&self) -> &'static str {
        "sparse"
    }
}

/// Emits 1, 2, 3, … — a deterministic heartbeat used in tests and
/// benchmarks where every phase must carry a distinguishable value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    n: i64,
}

impl Counter {
    /// Counter starting at 1.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSource for Counter {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        self.n += 1;
        Some(Value::Int(self.n))
    }
    fn kind(&self) -> &'static str {
        "counter"
    }
    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_i64(self.n);
        StateSnapshot::from_writer(w)
    }
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.n = r.get_i64()?;
        r.finish()
    }
}

/// A step function: emits `before` until `at`, then `after` — but only
/// *reports* on the phase where the value changes (and the very first
/// phase). Models a sensor that notifies when its assumption is violated.
#[derive(Debug, Clone)]
pub struct StepChange {
    before: Value,
    after: Value,
    at: Phase,
    reported_initial: bool,
    reported_step: bool,
}

impl StepChange {
    /// Emits `before` at phase 1, then nothing until `at`, where it emits
    /// `after`; silent afterwards.
    pub fn new(before: impl Into<Value>, after: impl Into<Value>, at: Phase) -> Self {
        StepChange {
            before: before.into(),
            after: after.into(),
            at,
            reported_initial: false,
            reported_step: false,
        }
    }
}

impl EventSource for StepChange {
    fn poll(&mut self, phase: Phase) -> Option<Value> {
        if !self.reported_initial {
            self.reported_initial = true;
            return Some(self.before.clone());
        }
        if phase >= self.at && !self.reported_step {
            self.reported_step = true;
            return Some(self.after.clone());
        }
        None
    }
    fn kind(&self) -> &'static str {
        "step-change"
    }
    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_bool(self.reported_initial);
        w.put_bool(self.reported_step);
        StateSnapshot::from_writer(w)
    }
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.reported_initial = r.get_bool()?;
        self.reported_step = r.get_bool()?;
        r.finish()
    }
}

/// Poisson-ish burst source: each phase emits a batch size drawn from a
/// geometric approximation with the given mean; emits `None` for zero.
/// Used to stress multi-message phases.
pub struct Bursty {
    rng: SmallRng,
    mean: f64,
}

impl Bursty {
    /// Mean burst size per phase (may be < 1 for sparse bursts).
    pub fn new(mean: f64, seed: u64) -> Self {
        assert!(mean >= 0.0);
        Bursty {
            rng: SmallRng::seed_from_u64(seed),
            mean,
        }
    }
}

impl EventSource for Bursty {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        // Geometric sampling: number of successes before failure with
        // success probability mean/(1+mean) has mean `mean`.
        let p = self.mean / (1.0 + self.mean);
        let mut k = 0i64;
        while self.rng.gen_bool(p) && k < 1_000_000 {
            k += 1;
        }
        (k > 0).then_some(Value::Int(k))
    }
    fn kind(&self) -> &'static str {
        "bursty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut dyn EventSource, phases: u64) -> Vec<Option<Value>> {
        Phase::first_n(phases).map(|p| src.poll(p)).collect()
    }

    #[test]
    fn constant_always_emits() {
        let mut s = Constant::new(5i64);
        let out = drain(&mut s, 3);
        assert!(out.iter().all(|v| v == &Some(Value::Int(5))));
        assert_eq!(s.kind(), "constant");
    }

    #[test]
    fn replay_in_order_then_silent() {
        let mut s = Replay::new(vec![Some(Value::Int(1)), None, Some(Value::Int(3))]);
        assert_eq!(
            drain(&mut s, 5),
            vec![Some(Value::Int(1)), None, Some(Value::Int(3)), None, None]
        );
    }

    #[test]
    fn replay_dense() {
        let mut s = Replay::dense(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            drain(&mut s, 2),
            vec![Some(Value::Int(1)), Some(Value::Int(2))]
        );
    }

    #[test]
    fn random_walk_deterministic_and_bounded_steps() {
        let mut a = RandomWalk::new(0.0, 0.5, 42);
        let mut b = RandomWalk::new(0.0, 0.5, 42);
        let va = drain(&mut a, 50);
        let vb = drain(&mut b, 50);
        assert_eq!(va, vb);
        let mut prev = 0.0;
        for v in va {
            let x = v.unwrap().as_f64().unwrap();
            assert!((x - prev).abs() <= 0.5 + 1e-12);
            prev = x;
        }
    }

    #[test]
    fn diurnal_period_and_range() {
        let mut s = Diurnal::new(20.0, 10.0, 24, 0.0, 1);
        let vals: Vec<f64> = drain(&mut s, 48)
            .into_iter()
            .map(|v| v.unwrap().as_f64().unwrap())
            .collect();
        for &v in &vals {
            assert!((10.0..=30.0).contains(&v), "v = {v}");
        }
        // Periodicity: phase p and p+24 coincide with zero noise.
        for i in 0..24 {
            assert!((vals[i] - vals[i + 24]).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_rate_matches_probability() {
        let mut s = Sparse::counter(0.01, 7);
        let emitted = drain(&mut s, 10_000).iter().filter(|v| v.is_some()).count();
        // Binomial(10000, 0.01): mean 100, σ ≈ 10. Allow ±5σ.
        assert!((50..=150).contains(&emitted), "emitted = {emitted}");
    }

    #[test]
    fn sparse_p_zero_and_one() {
        let mut never = Sparse::counter(0.0, 1);
        assert!(drain(&mut never, 100).iter().all(|v| v.is_none()));
        let mut always = Sparse::counter(1.0, 1);
        assert!(drain(&mut always, 100).iter().all(|v| v.is_some()));
    }

    #[test]
    fn counter_sequence() {
        let mut c = Counter::new();
        let out: Vec<i64> = drain(&mut c, 4)
            .into_iter()
            .map(|v| v.unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn step_change_emits_twice() {
        let mut s = StepChange::new(15.0, 10.0, Phase(5));
        let out = drain(&mut s, 8);
        assert_eq!(out[0], Some(Value::Float(15.0)));
        for v in &out[1..4] {
            assert_eq!(*v, None);
        }
        assert_eq!(out[4], Some(Value::Float(10.0)));
        for v in &out[5..] {
            assert_eq!(*v, None);
        }
    }

    #[test]
    fn bursty_mean_is_plausible() {
        let mut s = Bursty::new(2.0, 3);
        let total: i64 = drain(&mut s, 5_000)
            .into_iter()
            .flatten()
            .map(|v| v.as_i64().unwrap())
            .sum();
        let mean = total as f64 / 5_000.0;
        assert!((1.5..=2.5).contains(&mean), "mean = {mean}");
    }
}
