//! CSV trace parsing and replay.
//!
//! The paper's motivating feeds — disease incidence rates, banking
//! transactions, sensor logs — arrive in practice as recorded traces.
//! This module provides a small dependency-free CSV parser (RFC-4180
//! quoting: quoted fields, escaped quotes, embedded separators and
//! newlines) and [`CsvReplay`], an [`EventSource`] that replays one
//! numeric column phase by phase. Empty cells become silent phases, so
//! a sparse trace drives the Δ-dataflow absence machinery exactly like
//! a live sparse sensor.

use crate::phase::Phase;
use crate::sources::EventSource;
use crate::value::Value;
use std::fmt;

/// CSV parse error with 1-based record position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// Record (row) number, counting from 1.
    pub record: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV error in record {}: {}", self.record, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into records of fields.
///
/// Handles quoted fields (`"a,b"`), escaped quotes (`""`), embedded
/// newlines inside quotes, and both `\n` and `\r\n` record separators.
/// A trailing newline does not produce an empty final record.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut record_no = 1usize;
    let mut any_content = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CsvError {
                        record: record_no,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
                any_content = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any_content = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                record_no += 1;
                any_content = false;
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                record_no += 1;
                any_content = false;
            }
            _ => {
                field.push(c);
                any_content = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            record: record_no,
            message: "unterminated quoted field".into(),
        });
    }
    if any_content || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// A parsed numeric trace: optional header plus one value column.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Column name if the file had a header.
    pub column: Option<String>,
    /// One entry per record; `None` = empty cell = silent phase.
    pub samples: Vec<Option<f64>>,
}

impl Trace {
    /// Extracts column `col` (0-based) from CSV text. If `has_header`,
    /// the first record names the column and is not a sample.
    pub fn from_csv(input: &str, col: usize, has_header: bool) -> Result<Trace, CsvError> {
        let records = parse_csv(input)?;
        let mut iter = records.into_iter().enumerate();
        let mut column = None;
        if has_header {
            if let Some((_, header)) = iter.next() {
                column = header.get(col).cloned();
            }
        }
        let mut samples = Vec::new();
        for (i, record) in iter {
            let cell = record.get(col).ok_or_else(|| CsvError {
                record: i + 1,
                message: format!("record has {} fields, column {col} requested", record.len()),
            })?;
            let trimmed = cell.trim();
            if trimmed.is_empty() {
                samples.push(None);
            } else {
                let x: f64 = trimmed.parse().map_err(|_| CsvError {
                    record: i + 1,
                    message: format!("not a number: {trimmed:?}"),
                })?;
                samples.push(Some(x));
            }
        }
        Ok(Trace { column, samples })
    }

    /// Number of records (phases) in the trace.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Turns the trace into a replayable source.
    pub fn into_source(self) -> CsvReplay {
        CsvReplay {
            samples: self.samples,
            pos: 0,
            looped: false,
        }
    }
}

/// Replays a [`Trace`] one record per phase; empty cells are silent.
#[derive(Debug, Clone)]
pub struct CsvReplay {
    samples: Vec<Option<f64>>,
    pos: usize,
    looped: bool,
}

impl CsvReplay {
    /// Parses CSV text and replays column `col`.
    pub fn from_csv(input: &str, col: usize, has_header: bool) -> Result<CsvReplay, CsvError> {
        Ok(Trace::from_csv(input, col, has_header)?.into_source())
    }

    /// Restart from the beginning when the trace ends, instead of going
    /// permanently silent.
    pub fn looping(mut self) -> Self {
        self.looped = true;
        self
    }
}

impl EventSource for CsvReplay {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        if self.pos >= self.samples.len() {
            if self.looped && !self.samples.is_empty() {
                self.pos = 0;
            } else {
                return None;
            }
        }
        let sample = self.samples[self.pos];
        self.pos += 1;
        sample.map(Value::Float)
    }

    fn kind(&self) -> &'static str {
        "csv-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_records() {
        let got = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(
            got,
            vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]
                .into_iter()
                .map(|r| r.into_iter().map(String::from).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn quoting_rules() {
        let got = parse_csv("\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\n").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], vec!["a,b", "say \"hi\"", "two\nlines"]);
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let got = parse_csv("1,2\r\n3,4").unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], vec!["3", "4"]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(parse_csv("").unwrap().len(), 0);
    }

    #[test]
    fn errors_on_unterminated_quote() {
        let err = parse_csv("\"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn errors_on_stray_quote() {
        let err = parse_csv("ab\"c\n").unwrap_err();
        assert!(err.message.contains("quote inside unquoted"));
    }

    #[test]
    fn trace_with_header_and_gaps() {
        let csv = "time,temp\n1,20.5\n2,\n3,21.0\n";
        let t = Trace::from_csv(csv, 1, true).unwrap();
        assert_eq!(t.column.as_deref(), Some("temp"));
        assert_eq!(t.samples, vec![Some(20.5), None, Some(21.0)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn trace_errors() {
        assert!(Trace::from_csv("h\nnope\n", 0, true)
            .unwrap_err()
            .message
            .contains("not a number"));
        assert!(Trace::from_csv("1\n", 3, false)
            .unwrap_err()
            .message
            .contains("column 3 requested"));
    }

    #[test]
    fn replay_emits_then_silences() {
        let mut src = CsvReplay::from_csv("v\n1.5\n\n2.5\n", 0, true).unwrap();
        let out: Vec<Option<Value>> = Phase::first_n(5).map(|p| src.poll(p)).collect();
        assert_eq!(
            out,
            vec![
                Some(Value::Float(1.5)),
                None,
                Some(Value::Float(2.5)),
                None,
                None
            ]
        );
    }

    #[test]
    fn looping_replay_wraps() {
        let mut src = CsvReplay::from_csv("1\n2\n", 0, false).unwrap().looping();
        let out: Vec<f64> = Phase::first_n(5)
            .map(|p| src.poll(p).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(out, vec![1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn header_column_names_survive() {
        let csv = "time,reading\n1,10\n2,\n3,30\n";
        let t = Trace::from_csv(csv, 1, true).unwrap();
        assert_eq!(t.column.as_deref(), Some("reading"));
        let mut src = t.into_source();
        let vals: Vec<Option<Value>> = Phase::first_n(3).map(|p| src.poll(p)).collect();
        assert_eq!(vals[0], Some(Value::Float(10.0)));
        assert_eq!(vals[1], None);
        assert_eq!(vals[2], Some(Value::Float(30.0)));
        assert_eq!(src.kind(), "csv-replay");
    }
}
