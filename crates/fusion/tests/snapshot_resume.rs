//! Snapshot/restore equivalence for every shipped operator.
//!
//! The durability contract (`ec-store`) requires that restoring an
//! operator from a state snapshot and feeding it the remaining input
//! produces exactly the emissions an uninterrupted instance produces.
//! This test drives each operator directly through its `Module`
//! interface, snapshots at *every* split point, and compares the tail
//! emissions of the restored instance against the uninterrupted run.

use ec_core::{Emission, ExecCtx, InputView, Module};
use ec_events::{Phase, StateSnapshot, Value};
use ec_fusion::models::{BoilerModel, KMeansTracker};
use ec_fusion::prelude::*;
use ec_graph::VertexId;

/// A named operator factory for the resume-equivalence sweep.
type Case = (&'static str, Box<dyn Fn() -> Box<dyn Module>>);

/// Executes one phase of a module fed by `arity` input edges.
/// `bins[i]` is the fresh message (or silence) on edge `i`; `latest`
/// mirrors the engine's per-edge latest-value memory.
fn drive(
    m: &mut dyn Module,
    phase: u64,
    latest: &mut Vec<Option<Value>>,
    bins: &[Option<Value>],
) -> Emission {
    let preds: Vec<VertexId> = (0..bins.len() as u32).map(VertexId).collect();
    let mut fresh: Vec<(VertexId, Value)> = Vec::new();
    for (i, bin) in bins.iter().enumerate() {
        if let Some(v) = bin {
            latest[i] = Some(v.clone());
            fresh.push((preds[i], v.clone()));
        }
    }
    if fresh.is_empty() {
        // The engine never executes a vertex without a fresh message.
        return Emission::Silent;
    }
    m.execute(ExecCtx {
        phase: Phase(phase),
        vertex: VertexId(99),
        inputs: InputView {
            preds: &preds,
            latest,
            fresh: &fresh,
        },
        is_source: false,
    })
}

/// For every split point: run `prefix` on a fresh instance, snapshot,
/// restore into another fresh instance, feed the suffix, and require
/// the suffix emissions to match the uninterrupted run's.
fn assert_resume_equivalent(
    name: &str,
    make: &dyn Fn() -> Box<dyn Module>,
    rows: &[Vec<Option<Value>>],
) {
    let arity = rows[0].len();
    let run_full = |m: &mut dyn Module| -> Vec<Emission> {
        let mut latest = vec![None; arity];
        rows.iter()
            .enumerate()
            .map(|(i, bins)| drive(m, i as u64 + 1, &mut latest, bins))
            .collect()
    };
    let mut full_instance = make();
    let full = run_full(&mut *full_instance);

    for split in 0..=rows.len() {
        let mut original = make();
        let mut latest = vec![None; arity];
        for (i, bins) in rows[..split].iter().enumerate() {
            drive(&mut *original, i as u64 + 1, &mut latest, bins);
        }
        let mut restored = make();
        match original.snapshot_state() {
            StateSnapshot::Stateless => {}
            StateSnapshot::Bytes(bytes) => restored
                .restore_state(&bytes)
                .unwrap_or_else(|e| panic!("{name}: restore failed: {e}")),
            StateSnapshot::Unsupported => panic!("{name}: operator does not support snapshots"),
        }
        // `latest` memory is restored by the engine (VertexSlot), not
        // the module; carry it over as the engine would.
        let tail: Vec<Emission> = rows[split..]
            .iter()
            .enumerate()
            .map(|(i, bins)| drive(&mut *restored, (split + i) as u64 + 1, &mut latest, bins))
            .collect();
        assert_eq!(
            &full[split..],
            &tail[..],
            "{name}: tail after restore at split {split} diverges"
        );
    }
}

fn unary_rows(xs: &[Option<f64>]) -> Vec<Vec<Option<Value>>> {
    xs.iter().map(|x| vec![x.map(Value::Float)]).collect()
}

fn binary_rows(a: &[Option<f64>], b: &[Option<f64>]) -> Vec<Vec<Option<Value>>> {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| vec![x.map(Value::Float), y.map(Value::Float)])
        .collect()
}

#[test]
fn unary_operators_resume_from_snapshots() {
    let signal: Vec<Option<f64>> = vec![
        Some(1.0),
        Some(8.0),
        None,
        Some(3.5),
        Some(3.5),
        Some(-2.0),
        None,
        Some(12.0),
        Some(0.5),
        Some(7.0),
    ];
    let cases: Vec<Case> = vec![
        ("threshold", Box::new(|| Box::new(Threshold::above(4.0)))),
        (
            "hysteresis",
            Box::new(|| Box::new(Hysteresis::new(1.0, 6.0))),
        ),
        (
            "moving-average",
            Box::new(|| Box::new(MovingAverage::new(3))),
        ),
        ("ewma", Box::new(|| Box::new(EwmaSmoother::new(0.5)))),
        (
            "zscore-anomaly",
            Box::new(|| Box::new(ZScoreAnomaly::new(4, 2.0))),
        ),
        (
            "regression-outlier",
            Box::new(|| Box::new(RegressionOutlier::new(4, 2.0))),
        ),
        (
            "change-detector",
            Box::new(|| Box::new(ChangeDetector::new(1.0))),
        ),
        ("debounce", Box::new(|| Box::new(Debounce::new(2)))),
        ("aggregate-sum", Box::new(|| Box::new(Aggregate::sum()))),
        ("aggregate-max", Box::new(|| Box::new(Aggregate::max()))),
        ("all-of", Box::new(|| Box::new(AllOf::new()))),
        ("any-of", Box::new(|| Box::new(AnyOf::new()))),
        ("true-count", Box::new(|| Box::new(TrueCount::new()))),
        (
            "rate-monitor",
            Box::new(|| Box::new(RateMonitor::new(3, 1))),
        ),
        ("kmeans", Box::new(|| Box::new(KMeansTracker::new(2, 0.1)))),
        (
            "condition",
            Box::new(|| Box::new(Condition::between(0.0, 5.0).into_module())),
        ),
    ];
    let rows = unary_rows(&signal);
    for (name, make) in &cases {
        assert_resume_equivalent(name, make, &rows);
    }
}

#[test]
fn binary_operators_resume_from_snapshots() {
    let a: Vec<Option<f64>> = vec![
        Some(1.0),
        None,
        Some(4.0),
        Some(9.0),
        None,
        Some(2.0),
        Some(2.0),
        Some(11.0),
    ];
    let b: Vec<Option<f64>> = vec![
        None,
        Some(3.0),
        Some(1.0),
        None,
        Some(5.0),
        Some(5.0),
        None,
        Some(1.0),
    ];
    let cases: Vec<Case> = vec![
        ("arith-sub", Box::new(|| Box::new(Arith::sub()))),
        ("arith-div", Box::new(|| Box::new(Arith::div()))),
        ("sample-hold", Box::new(|| Box::new(SampleHold::new()))),
        (
            "pair-correlation",
            Box::new(|| Box::new(PairCorrelation::new(4))),
        ),
        (
            "coincidence-join",
            Box::new(|| Box::new(CoincidenceJoin::new(2))),
        ),
        (
            "boiler",
            Box::new(|| Box::new(BoilerModel::new(20.0, 10.0, 1.0, 0.0))),
        ),
    ];
    let rows = binary_rows(&a, &b);
    for (name, make) in &cases {
        assert_resume_equivalent(name, make, &rows);
    }
}
