//! Test harness for operators: drive a module through the real engine.
//!
//! Operators are tested end-to-end rather than by hand-building
//! execution contexts: [`run_unary`] wires `source → module` into a
//! two-vertex graph and runs the sequential executor over a scripted
//! input, returning the module's emissions phase by phase. [`run_binary`]
//! does the same with two sources. This exercises exactly the code path
//! production uses (latest-value memory, change propagation, sink
//! recording).

use ec_core::{Module, Sequential, SourceModule};
use ec_events::sources::Replay;
use ec_events::Value;
use ec_graph::Dag;

/// Runs `module` with a single scripted input stream; returns the
/// module's outputs as `(phase, value)` pairs.
///
/// `inputs[k]` is the message (or silence) the source sends in phase
/// `k + 1`; the run covers exactly `inputs.len()` phases.
pub fn run_unary(module: impl Module + 'static, inputs: Vec<Option<Value>>) -> Vec<(u64, Value)> {
    let phases = inputs.len() as u64;
    let mut dag = Dag::new();
    let src = dag.add_vertex("src");
    let op = dag.add_vertex("op");
    dag.add_edge(src, op).expect("acyclic");
    let modules: Vec<Box<dyn Module>> = vec![
        Box::new(SourceModule::new(Replay::new(inputs))),
        Box::new(module),
    ];
    let mut seq = Sequential::new(&dag, modules).expect("valid harness graph");
    seq.run(phases).expect("harness run");
    seq.into_history()
        .sink_outputs_of(op)
        .into_iter()
        .map(|(p, v)| (p.get(), v))
        .collect()
}

/// Runs `module` with two scripted input streams (same length); returns
/// the module's outputs as `(phase, value)` pairs.
pub fn run_binary(
    module: impl Module + 'static,
    a: Vec<Option<Value>>,
    b: Vec<Option<Value>>,
) -> Vec<(u64, Value)> {
    assert_eq!(a.len(), b.len(), "input scripts must cover the same phases");
    let phases = a.len() as u64;
    let mut dag = Dag::new();
    let sa = dag.add_vertex("a");
    let sb = dag.add_vertex("b");
    let op = dag.add_vertex("op");
    dag.add_edge(sa, op).expect("acyclic");
    dag.add_edge(sb, op).expect("acyclic");
    let modules: Vec<Box<dyn Module>> = vec![
        Box::new(SourceModule::new(Replay::new(a))),
        Box::new(SourceModule::new(Replay::new(b))),
        Box::new(module),
    ];
    let mut seq = Sequential::new(&dag, modules).expect("valid harness graph");
    seq.run(phases).expect("harness run");
    seq.into_history()
        .sink_outputs_of(op)
        .into_iter()
        .map(|(p, v)| (p.get(), v))
        .collect()
}

/// Shorthand: dense float input script.
pub fn floats(xs: &[f64]) -> Vec<Option<Value>> {
    xs.iter().map(|&x| Some(Value::Float(x))).collect()
}

/// Shorthand: float script with gaps (`None` = silent phase).
pub fn sparse_floats(xs: &[Option<f64>]) -> Vec<Option<Value>> {
    xs.iter().map(|x| x.map(Value::Float)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::PassThrough;

    #[test]
    fn unary_passthrough_roundtrip() {
        let out = run_unary(PassThrough, floats(&[1.0, 2.0]));
        assert_eq!(out, vec![(1, Value::Float(1.0)), (2, Value::Float(2.0))]);
    }

    #[test]
    fn unary_silence_produces_no_output() {
        let out = run_unary(PassThrough, sparse_floats(&[Some(1.0), None, Some(3.0)]));
        assert_eq!(out, vec![(1, Value::Float(1.0)), (3, Value::Float(3.0))]);
    }

    #[test]
    fn binary_sum() {
        let out = run_binary(
            ec_core::SumModule,
            floats(&[1.0, 2.0]),
            floats(&[10.0, 20.0]),
        );
        assert_eq!(out, vec![(1, Value::Float(11.0)), (2, Value::Float(22.0))]);
    }

    #[test]
    #[should_panic]
    fn binary_rejects_mismatched_lengths() {
        let _ = run_binary(ec_core::SumModule, floats(&[1.0]), floats(&[1.0, 2.0]));
    }
}
