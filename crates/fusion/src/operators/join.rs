//! Cross-stream correlation operators — the "correlating event
//! streams" of the paper's title.

use super::emit_if_changed;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::window::SlidingWindow;
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Maintains sliding windows over two input streams and emits their
/// Pearson correlation coefficient whenever either stream delivers a
/// fresh sample (and both windows have enough data).
///
/// Missing samples are filled with the stream's latest value — the
/// Δ-dataflow reading of "no message" as "unchanged".
#[derive(Debug, Clone)]
pub struct PairCorrelation {
    a: SlidingWindow,
    b: SlidingWindow,
    min_samples: usize,
}

impl PairCorrelation {
    /// Correlation over the last `window` paired samples.
    pub fn new(window: usize) -> Self {
        PairCorrelation {
            a: SlidingWindow::new(window),
            b: SlidingWindow::new(window),
            min_samples: 3,
        }
    }

    fn pearson(&self) -> Option<f64> {
        let n = self.a.len().min(self.b.len());
        if n < self.min_samples {
            return None;
        }
        let (ma, mb) = (self.a.mean()?, self.b.mean()?);
        let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
        for (x, y) in self.a.iter().zip(self.b.iter()) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        if va <= 0.0 || vb <= 0.0 {
            return None;
        }
        Some(cov / (va.sqrt() * vb.sqrt()))
    }
}

impl Module for PairCorrelation {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        debug_assert!(ctx.inputs.arity() >= 2, "PairCorrelation needs two inputs");
        // Latest-value semantics: each phase with any fresh input
        // appends the current (possibly held) value of both streams.
        let xa = ctx.inputs.current_at(0).and_then(|v| v.as_f64());
        let xb = ctx.inputs.current_at(1).and_then(|v| v.as_f64());
        let (Some(xa), Some(xb)) = (xa, xb) else {
            return Emission::Silent; // one stream has never reported
        };
        self.a.push(xa);
        self.b.push(xb);
        match self.pearson() {
            Some(r) => Emission::Broadcast(Value::Float(r)),
            None => Emission::Silent,
        }
    }

    fn name(&self) -> &str {
        "pair-correlation"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        self.a.snapshot_into(&mut w);
        self.b.snapshot_into(&mut w);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.a.restore_from(&mut r)?;
        self.b.restore_from(&mut r)?;
        r.finish()
    }
}

/// Detects *coincident* events: emits `Bool(true)` when both inputs
/// have delivered a fresh message within `window_phases` of each other,
/// and `Bool(false)` when the coincidence expires. The composite
/// condition "intrusion alarm AND badge-reader anomaly within 5 ticks"
/// is this module.
#[derive(Debug, Clone)]
pub struct CoincidenceJoin {
    window_phases: u64,
    last_a: Option<u64>,
    last_b: Option<u64>,
    last_emitted: Option<Value>,
}

impl CoincidenceJoin {
    /// Coincidence window in phases.
    pub fn new(window_phases: u64) -> Self {
        CoincidenceJoin {
            window_phases,
            last_a: None,
            last_b: None,
            last_emitted: None,
        }
    }

    fn coincident(&self, now: u64) -> bool {
        match (self.last_a, self.last_b) {
            (Some(a), Some(b)) => {
                a.abs_diff(b) <= self.window_phases
                    && now.saturating_sub(a.max(b)) <= self.window_phases
            }
            _ => false,
        }
    }
}

impl Module for CoincidenceJoin {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        debug_assert!(ctx.inputs.arity() >= 2, "CoincidenceJoin needs two inputs");
        let now = ctx.phase.get();
        if ctx.inputs.changed(ctx.inputs.preds[0]) {
            self.last_a = Some(now);
        }
        if ctx.inputs.changed(ctx.inputs.preds[1]) {
            self.last_b = Some(now);
        }
        let verdict = self.coincident(now);
        emit_if_changed(&mut self.last_emitted, Value::Bool(verdict))
    }

    fn name(&self) -> &str {
        "coincidence-join"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_u64(self.last_a);
        w.put_opt_u64(self.last_b);
        w.put_opt_value(&self.last_emitted);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last_a = r.get_opt_u64()?;
        self.last_b = r.get_opt_u64()?;
        self.last_emitted = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_binary, sparse_floats};

    #[test]
    fn correlation_of_identical_streams_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let out = run_binary(PairCorrelation::new(8), floats(&xs), floats(&xs));
        let last = out.last().unwrap().1.as_f64().unwrap();
        assert!((last - 1.0).abs() < 1e-9, "r = {last}");
    }

    #[test]
    fn correlation_of_opposite_streams_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        let out = run_binary(PairCorrelation::new(8), floats(&a), floats(&b));
        let last = out.last().unwrap().1.as_f64().unwrap();
        assert!((last + 1.0).abs() < 1e-9, "r = {last}");
    }

    #[test]
    fn correlation_waits_for_both_streams() {
        let out = run_binary(
            PairCorrelation::new(8),
            floats(&[1.0, 2.0]),
            sparse_floats(&[None, None]),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn coincidence_within_window() {
        let out = run_binary(
            CoincidenceJoin::new(2),
            sparse_floats(&[Some(1.0), None, None, None, None]),
            sparse_floats(&[None, None, Some(1.0), None, None]),
        );
        // First message announces the initial (false) state; events at
        // phases 1 and 3 differ by 2 ≤ window → coincident at phase 3.
        assert_eq!(out, vec![(1, Value::Bool(false)), (3, Value::Bool(true))]);
    }

    #[test]
    fn coincidence_outside_window_stays_false() {
        let out = run_binary(
            CoincidenceJoin::new(1),
            sparse_floats(&[Some(1.0), None, None, None, None]),
            sparse_floats(&[None, None, None, None, Some(1.0)]),
        );
        // First fresh message at phase 1 emits the initial false; the
        // distant second event (gap 4 > 1) does not flip it.
        assert_eq!(out, vec![(1, Value::Bool(false))]);
    }

    #[test]
    fn coincidence_expires() {
        let out = run_binary(
            CoincidenceJoin::new(1),
            sparse_floats(&[Some(1.0), None, None, None, Some(1.0)]),
            sparse_floats(&[Some(1.0), None, None, None, None]),
        );
        // Coincident at phase 1; expires when a fresh event at phase 5
        // finds the partner stale (5 − 1 = 4 > 1 apart).
        assert_eq!(out, vec![(1, Value::Bool(true)), (5, Value::Bool(false))]);
    }
}
