//! Event-rate monitoring.

use super::emit_if_changed;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};
use std::collections::VecDeque;

/// Counts fresh messages over a sliding window of phases and emits
/// `Bool(true)`/`Bool(false)` as the rate crosses a limit — "disease
/// incidence rate above threshold" style conditions (§1).
///
/// The monitor is evaluated whenever a message arrives. Because a silent
/// vertex is never executed, the rate can only be *observed* to fall on
/// the next arrival; this is the correct Δ-dataflow semantics (no event,
/// no re-evaluation) and matches how the paper's modules learn about the
/// world only through messages and their absence.
#[derive(Debug, Clone)]
pub struct RateMonitor {
    window_phases: u64,
    limit: usize,
    arrivals: VecDeque<u64>,
    last: Option<Value>,
}

impl RateMonitor {
    /// Triggered while more than `limit` messages arrived in the last
    /// `window_phases` phases.
    pub fn new(window_phases: u64, limit: usize) -> Self {
        assert!(window_phases >= 1);
        RateMonitor {
            window_phases,
            limit,
            arrivals: VecDeque::new(),
            last: None,
        }
    }

    /// Current arrival count in-window at `now`.
    fn count_at(&mut self, now: u64) -> usize {
        let cutoff = now.saturating_sub(self.window_phases - 1);
        while let Some(&front) = self.arrivals.front() {
            if front < cutoff {
                self.arrivals.pop_front();
            } else {
                break;
            }
        }
        self.arrivals.len()
    }
}

impl Module for RateMonitor {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let fresh_count = ctx.inputs.fresh.len();
        if fresh_count == 0 {
            return Emission::Silent;
        }
        let now = ctx.phase.get();
        for _ in 0..fresh_count {
            self.arrivals.push_back(now);
        }
        let count = self.count_at(now);
        emit_if_changed(&mut self.last, Value::Bool(count > self.limit))
    }

    fn name(&self) -> &str {
        "rate-monitor"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_u32(self.arrivals.len() as u32);
        for &p in &self.arrivals {
            w.put_u64(p);
        }
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        let n = r.get_u32()? as usize;
        let mut arrivals = VecDeque::with_capacity(n);
        for _ in 0..n {
            arrivals.push_back(r.get_u64()?);
        }
        self.last = r.get_opt_value()?;
        r.finish()?;
        self.arrivals = arrivals;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_unary, sparse_floats};

    #[test]
    fn triggers_on_burst() {
        // Window 3 phases, limit 2: three arrivals within 3 phases trip it.
        let out = run_unary(
            RateMonitor::new(3, 2),
            sparse_floats(&[Some(1.0), Some(1.0), Some(1.0), None, None]),
        );
        assert_eq!(out, vec![(1, Value::Bool(false)), (3, Value::Bool(true))]);
    }

    #[test]
    fn resets_after_quiet_period() {
        let out = run_unary(
            RateMonitor::new(2, 1),
            sparse_floats(&[
                Some(1.0),
                Some(1.0), // 2 in window of 2 → above limit 1
                None,
                None,
                Some(1.0), // old arrivals expired → back under
            ]),
        );
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)),
                (2, Value::Bool(true)),
                (5, Value::Bool(false)),
            ]
        );
    }

    #[test]
    fn limit_zero_fires_on_first_event() {
        let out = run_unary(RateMonitor::new(5, 0), sparse_floats(&[Some(1.0)]));
        assert_eq!(out, vec![(1, Value::Bool(true))]);
    }
}
