//! Moving averages and smoothing.

use super::fresh_f64;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::stats::Ewma;
use ec_events::window::SlidingWindow;
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Sliding-window moving average — the paper's "one-week moving point
/// average" building block (§1).
///
/// Emits the updated mean whenever a fresh sample arrives (the mean
/// changes almost surely with each sample, so this module is
/// change-driven by construction: no input message, no output).
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: SlidingWindow,
}

impl MovingAverage {
    /// Average over the last `window` samples.
    pub fn new(window: usize) -> Self {
        MovingAverage {
            window: SlidingWindow::new(window),
        }
    }
}

impl Module for MovingAverage {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        self.window.push(x);
        Emission::Broadcast(Value::Float(
            self.window.mean().expect("just pushed a sample"),
        ))
    }

    fn name(&self) -> &str {
        "moving-average"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        self.window.snapshot_into(&mut w);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.window.restore_from(&mut r)?;
        r.finish()
    }
}

/// Exponentially weighted smoothing of a stream.
#[derive(Debug, Clone)]
pub struct EwmaSmoother {
    ewma: Ewma,
}

impl EwmaSmoother {
    /// Smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        EwmaSmoother {
            ewma: Ewma::new(alpha),
        }
    }
}

impl Module for EwmaSmoother {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        Emission::Broadcast(Value::Float(self.ewma.push(x)))
    }

    fn name(&self) -> &str {
        "ewma"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        self.ewma.snapshot_into(&mut w);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.ewma.restore_from(&mut r)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_unary, sparse_floats};

    #[test]
    fn moving_average_over_window() {
        let out = run_unary(MovingAverage::new(2), floats(&[1.0, 3.0, 5.0]));
        let vals: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn moving_average_silent_without_input() {
        let out = run_unary(
            MovingAverage::new(3),
            sparse_floats(&[Some(2.0), None, Some(4.0)]),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1, Value::Float(2.0)));
        assert_eq!(out[1], (3, Value::Float(3.0)));
    }

    #[test]
    fn ewma_smooths() {
        let out = run_unary(EwmaSmoother::new(0.5), floats(&[10.0, 0.0, 0.0]));
        let vals: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![10.0, 5.0, 2.5]);
    }
}
