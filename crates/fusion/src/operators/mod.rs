//! The operator library.
//!
//! Each operator is a [`ec_core::Module`] following the Δ-dataflow
//! contract: silent unless its answer changed. Operators that consume a
//! single input read the most recent fresh message; multi-input
//! operators combine the latest value remembered per input edge (the
//! engine maintains that memory — "using previous values for any inputs
//! it has not received", §3.1.2).

pub mod aggregate;
pub mod anomaly;
pub mod arith;
pub mod delta;
pub mod hysteresis;
pub mod join;
pub mod logic;
pub mod moving;
pub mod rate;
pub mod threshold;

use ec_core::ExecCtx;
use ec_events::Value;

/// Extracts the newest fresh numeric sample from the context, if any.
pub(crate) fn fresh_f64(ctx: &ExecCtx<'_>) -> Option<f64> {
    ctx.inputs.fresh.last().and_then(|(_, v)| v.as_f64())
}

/// Emits `value` only if it differs from `*last` (updating `*last`).
pub(crate) fn emit_if_changed(last: &mut Option<Value>, value: Value) -> ec_core::Emission {
    match last {
        Some(prev) if prev.same_as(&value) => ec_core::Emission::Silent,
        _ => {
            *last = Some(value.clone());
            ec_core::Emission::Broadcast(value)
        }
    }
}
