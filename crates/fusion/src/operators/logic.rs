//! Boolean combinators over condition streams.
//!
//! These fuse the outputs of detectors into composite conditions —
//! "hospital occupancy high AND blood supply low" — emitting only when
//! the composite verdict changes. Unknown inputs (no message ever
//! received on an edge) are treated as `false`, so composites become
//! meaningful as soon as any detector reports.

use super::emit_if_changed;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

fn truthy(v: Option<&Value>) -> bool {
    match v {
        Some(Value::Bool(b)) => *b,
        Some(other) => other.as_f64().map(|x| x != 0.0).unwrap_or(false),
        None => false,
    }
}

/// Emits `Bool` of the conjunction of all inputs' latest values,
/// whenever the conjunction changes.
#[derive(Debug, Clone, Default)]
pub struct AllOf {
    last: Option<Value>,
}

impl AllOf {
    /// New conjunction.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for AllOf {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        let verdict = (0..ctx.inputs.arity()).all(|i| truthy(ctx.inputs.current_at(i)));
        emit_if_changed(&mut self.last, Value::Bool(verdict))
    }

    fn name(&self) -> &str {
        "all-of"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

/// Emits `Bool` of the disjunction of all inputs' latest values,
/// whenever the disjunction changes.
#[derive(Debug, Clone, Default)]
pub struct AnyOf {
    last: Option<Value>,
}

impl AnyOf {
    /// New disjunction.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for AnyOf {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        let verdict = (0..ctx.inputs.arity()).any(|i| truthy(ctx.inputs.current_at(i)));
        emit_if_changed(&mut self.last, Value::Bool(verdict))
    }

    fn name(&self) -> &str {
        "any-of"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

/// Emits the number of inputs whose latest value is truthy, whenever
/// that count changes — "at least k sensors agree" conditions.
#[derive(Debug, Clone, Default)]
pub struct TrueCount {
    last: Option<Value>,
}

impl TrueCount {
    /// New counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for TrueCount {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        let count = (0..ctx.inputs.arity())
            .filter(|&i| truthy(ctx.inputs.current_at(i)))
            .count() as i64;
        emit_if_changed(&mut self.last, Value::Int(count))
    }

    fn name(&self) -> &str {
        "true-count"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_binary;

    fn bools(xs: &[Option<bool>]) -> Vec<Option<Value>> {
        xs.iter().map(|x| x.map(Value::Bool)).collect()
    }

    #[test]
    fn all_of_waits_for_both() {
        let out = run_binary(
            AllOf::new(),
            bools(&[Some(true), None, None, Some(false)]),
            bools(&[None, Some(true), None, None]),
        );
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)), // only input 0 known (true), input 1 unknown=false
                (2, Value::Bool(true)),  // both true
                (4, Value::Bool(false)), // input 0 went false
            ]
        );
    }

    #[test]
    fn any_of_fires_on_first_true() {
        let out = run_binary(
            AnyOf::new(),
            bools(&[Some(false), Some(true), None, Some(false)]),
            bools(&[Some(false), None, None, None]),
        );
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)),
                (2, Value::Bool(true)),
                (4, Value::Bool(false)),
            ]
        );
    }

    #[test]
    fn true_count_tracks_changes_only() {
        let out = run_binary(
            TrueCount::new(),
            bools(&[Some(true), Some(true), Some(false)]),
            bools(&[None, Some(true), None]),
        );
        assert_eq!(
            out,
            vec![(1, Value::Int(1)), (2, Value::Int(2)), (3, Value::Int(1))]
        );
    }

    #[test]
    fn numeric_inputs_coerce_to_truth() {
        let out = run_binary(
            AnyOf::new(),
            vec![Some(Value::Float(0.0)), Some(Value::Float(2.5))],
            vec![Some(Value::Int(0)), None],
        );
        assert_eq!(out, vec![(1, Value::Bool(false)), (2, Value::Bool(true))]);
    }
}
