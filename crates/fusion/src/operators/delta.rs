//! Change-shaping operators: detectors, debouncers, sample-and-hold.

use super::fresh_f64;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Forwards a sample only when it differs from the last *forwarded*
/// sample by more than `epsilon` — converts a chatty stream into a
/// change stream (the sensor of §1 that reports only when its
/// assumption is violated).
#[derive(Debug, Clone)]
pub struct ChangeDetector {
    epsilon: f64,
    last_forwarded: Option<f64>,
}

impl ChangeDetector {
    /// Forward when `|x − last| > epsilon` (the first sample is always
    /// forwarded).
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0);
        ChangeDetector {
            epsilon,
            last_forwarded: None,
        }
    }
}

impl Module for ChangeDetector {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        match self.last_forwarded {
            Some(prev) if (x - prev).abs() <= self.epsilon => Emission::Silent,
            _ => {
                self.last_forwarded = Some(x);
                Emission::Broadcast(Value::Float(x))
            }
        }
    }

    fn name(&self) -> &str {
        "change-detector"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_f64(self.last_forwarded);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last_forwarded = r.get_opt_f64()?;
        r.finish()
    }
}

/// Rate-limits a stream: after forwarding a message, swallows further
/// messages for the next `hold_phases` phases.
#[derive(Debug, Clone)]
pub struct Debounce {
    hold_phases: u64,
    open_at: u64,
}

impl Debounce {
    /// Forward at most one message every `hold_phases + 1` phases.
    pub fn new(hold_phases: u64) -> Self {
        Debounce {
            hold_phases,
            open_at: 0,
        }
    }
}

impl Module for Debounce {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some((_, v)) = ctx.inputs.fresh.last() else {
            return Emission::Silent;
        };
        if ctx.phase.get() < self.open_at {
            return Emission::Silent;
        }
        self.open_at = ctx.phase.get() + self.hold_phases + 1;
        Emission::Broadcast(v.clone())
    }

    fn name(&self) -> &str {
        "debounce"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_u64(self.open_at);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.open_at = r.get_u64()?;
        r.finish()
    }
}

/// Samples its *first* input whenever its *second* input (the trigger)
/// fires: classic sample-and-hold. With one input, forwards on every
/// trigger-free fresh message.
#[derive(Debug, Clone, Default)]
pub struct SampleHold;

impl SampleHold {
    /// New sample-and-hold; input edge 0 is the signal, edge 1 the
    /// trigger.
    pub fn new() -> Self {
        SampleHold
    }
}

impl Module for SampleHold {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.arity() < 2 {
            // Degenerate: act as a latch on the single input.
            return match ctx.inputs.fresh.last() {
                Some((_, v)) => Emission::Broadcast(v.clone()),
                None => Emission::Silent,
            };
        }
        let trigger = ctx.inputs.preds[1];
        if !ctx.inputs.changed(trigger) {
            return Emission::Silent;
        }
        match ctx.inputs.current_at(0) {
            Some(v) => Emission::Broadcast(v.clone()),
            None => Emission::Silent, // nothing sampled yet
        }
    }

    fn name(&self) -> &str {
        "sample-hold"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot::Stateless
    }

    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), SnapshotError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_binary, run_unary, sparse_floats};

    #[test]
    fn change_detector_filters_small_moves() {
        let out = run_unary(
            ChangeDetector::new(1.0),
            floats(&[10.0, 10.5, 10.9, 12.0, 12.5, 9.0]),
        );
        let vals: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![10.0, 12.0, 9.0]);
    }

    #[test]
    fn change_detector_epsilon_zero_forwards_changes_only() {
        let out = run_unary(ChangeDetector::new(0.0), floats(&[1.0, 1.0, 2.0, 2.0]));
        let phases: Vec<u64> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(phases, vec![1, 3]);
    }

    #[test]
    fn debounce_rate_limits() {
        let out = run_unary(
            Debounce::new(2),
            floats(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]),
        );
        let phases: Vec<u64> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(phases, vec![1, 4, 7]);
    }

    #[test]
    fn debounce_zero_hold_forwards_everything() {
        let out = run_unary(Debounce::new(0), floats(&[1.0, 2.0]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn sample_hold_samples_on_trigger() {
        // Signal on input 0 evolves; trigger on input 1 fires at phases 2, 4.
        let out = run_binary(
            SampleHold::new(),
            floats(&[10.0, 20.0, 30.0, 40.0]),
            sparse_floats(&[None, Some(1.0), None, Some(1.0)]),
        );
        assert_eq!(out, vec![(2, Value::Float(20.0)), (4, Value::Float(40.0))]);
    }

    #[test]
    fn sample_hold_holds_last_signal_value() {
        // Signal stops updating; trigger still samples the held value.
        let out = run_binary(
            SampleHold::new(),
            sparse_floats(&[Some(5.0), None, None]),
            sparse_floats(&[None, None, Some(1.0)]),
        );
        assert_eq!(out, vec![(3, Value::Float(5.0))]);
    }

    #[test]
    fn sample_hold_trigger_before_any_signal() {
        let out = run_binary(
            SampleHold::new(),
            sparse_floats(&[None, Some(2.0)]),
            sparse_floats(&[Some(1.0), None]),
        );
        assert!(out.is_empty());
    }
}
