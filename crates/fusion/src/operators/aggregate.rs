//! N-ary aggregation over the latest values of all inputs.

use super::emit_if_changed;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Which statistic to compute over the inputs' latest values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Sum of known inputs.
    Sum,
    /// Mean of known inputs.
    Mean,
    /// Minimum of known inputs.
    Min,
    /// Maximum of known inputs.
    Max,
}

/// Aggregates the latest values of all input edges and emits the result
/// whenever it changes. Inputs that have never reported are skipped —
/// the fusion point becomes useful as soon as any sensor comes online
/// (hospital occupancy across a growing set of reporting hospitals, §1).
#[derive(Debug, Clone)]
pub struct Aggregate {
    kind: AggregateKind,
    last: Option<Value>,
}

impl Aggregate {
    /// New aggregate of the given kind.
    pub fn new(kind: AggregateKind) -> Self {
        Aggregate { kind, last: None }
    }

    /// Sum aggregate.
    pub fn sum() -> Self {
        Self::new(AggregateKind::Sum)
    }

    /// Mean aggregate.
    pub fn mean() -> Self {
        Self::new(AggregateKind::Mean)
    }

    /// Min aggregate.
    pub fn min() -> Self {
        Self::new(AggregateKind::Min)
    }

    /// Max aggregate.
    pub fn max() -> Self {
        Self::new(AggregateKind::Max)
    }
}

impl Module for Aggregate {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        let known: Vec<f64> = (0..ctx.inputs.arity())
            .filter_map(|i| ctx.inputs.current_at(i).and_then(|v| v.as_f64()))
            .collect();
        if known.is_empty() {
            return Emission::Silent;
        }
        let result = match self.kind {
            AggregateKind::Sum => known.iter().sum(),
            AggregateKind::Mean => known.iter().sum::<f64>() / known.len() as f64,
            AggregateKind::Min => known.iter().copied().fold(f64::INFINITY, f64::min),
            AggregateKind::Max => known.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
        emit_if_changed(&mut self.last, Value::Float(result))
    }

    fn name(&self) -> &str {
        match self.kind {
            AggregateKind::Sum => "aggregate-sum",
            AggregateKind::Mean => "aggregate-mean",
            AggregateKind::Min => "aggregate-min",
            AggregateKind::Max => "aggregate-max",
        }
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_binary, sparse_floats};

    #[test]
    fn sum_tracks_latest_values() {
        let out = run_binary(
            Aggregate::sum(),
            sparse_floats(&[Some(1.0), Some(2.0), None]),
            sparse_floats(&[Some(10.0), None, Some(20.0)]),
        );
        let vals: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![11.0, 12.0, 22.0]);
    }

    #[test]
    fn mean_with_partial_knowledge() {
        let out = run_binary(
            Aggregate::mean(),
            sparse_floats(&[Some(4.0), None]),
            sparse_floats(&[None, Some(8.0)]),
        );
        // Phase 1: only input 0 known → mean 4. Phase 2: both → 6.
        let vals: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![4.0, 6.0]);
    }

    #[test]
    fn min_and_max() {
        let out = run_binary(
            Aggregate::min(),
            sparse_floats(&[Some(3.0)]),
            sparse_floats(&[Some(5.0)]),
        );
        assert_eq!(out[0].1, Value::Float(3.0));
        let out = run_binary(
            Aggregate::max(),
            sparse_floats(&[Some(3.0)]),
            sparse_floats(&[Some(5.0)]),
        );
        assert_eq!(out[0].1, Value::Float(5.0));
    }

    #[test]
    fn unchanged_result_is_silent() {
        // Input flips between values with the same max.
        let out = run_binary(
            Aggregate::max(),
            sparse_floats(&[Some(1.0), Some(2.0), Some(1.0)]),
            sparse_floats(&[Some(5.0), None, None]),
        );
        // Max stays 5 throughout: only the first computation emits.
        assert_eq!(out, vec![(1, Value::Float(5.0))]);
    }
}
