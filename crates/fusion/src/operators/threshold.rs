//! Threshold crossing detection.

use super::{emit_if_changed, fresh_f64};
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Which side of the level counts as "triggered".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdMode {
    /// Triggered while the value is strictly above the level.
    Above,
    /// Triggered while the value is strictly below the level.
    Below,
}

/// Emits `Bool(true)` when its input crosses into the triggered region
/// and `Bool(false)` when it leaves — never anything in between.
///
/// This is the canonical "option 2" module of §1: one message per state
/// change rather than one per observation.
#[derive(Debug, Clone)]
pub struct Threshold {
    level: f64,
    mode: ThresholdMode,
    last: Option<Value>,
}

impl Threshold {
    /// Triggered while input > `level`.
    pub fn above(level: f64) -> Self {
        Threshold {
            level,
            mode: ThresholdMode::Above,
            last: None,
        }
    }

    /// Triggered while input < `level`.
    pub fn below(level: f64) -> Self {
        Threshold {
            level,
            mode: ThresholdMode::Below,
            last: None,
        }
    }
}

impl Module for Threshold {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        let triggered = match self.mode {
            ThresholdMode::Above => x > self.level,
            ThresholdMode::Below => x < self.level,
        };
        emit_if_changed(&mut self.last, Value::Bool(triggered))
    }

    fn name(&self) -> &str {
        "threshold"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_unary, sparse_floats};

    #[test]
    fn emits_only_on_state_change() {
        let out = run_unary(
            Threshold::above(10.0),
            floats(&[5.0, 6.0, 11.0, 12.0, 13.0, 9.0, 8.0]),
        );
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)),
                (3, Value::Bool(true)),
                (6, Value::Bool(false)),
            ]
        );
    }

    #[test]
    fn below_mode() {
        let out = run_unary(Threshold::below(0.0), floats(&[1.0, -1.0, -2.0, 3.0]));
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)),
                (2, Value::Bool(true)),
                (4, Value::Bool(false)),
            ]
        );
    }

    #[test]
    fn silent_input_phases_pass_through_silently() {
        let out = run_unary(
            Threshold::above(0.0),
            sparse_floats(&[Some(1.0), None, None, Some(2.0)]),
        );
        // One state announcement at phase 1; no further changes.
        assert_eq!(out, vec![(1, Value::Bool(true))]);
    }

    #[test]
    fn boundary_is_not_triggered() {
        let out = run_unary(Threshold::above(5.0), floats(&[5.0]));
        assert_eq!(out, vec![(1, Value::Bool(false))]);
    }
}
