//! Anomaly detection: the rare-message modules of §1.
//!
//! These are the modules the paper's efficiency argument is built on:
//! "the module outputs a message only when it receives an anomalous
//! transaction. If one in a million transactions is anomalous then the
//! rate of events generated … is only a millionth" of the input rate.

use super::fresh_f64;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::stats::WindowedRegression;
use ec_events::window::SlidingWindow;
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Flags samples whose z-score against a sliding window exceeds a
/// threshold. Emits the offending value only for anomalies; silent for
/// normal samples.
#[derive(Debug, Clone)]
pub struct ZScoreAnomaly {
    window: SlidingWindow,
    z_threshold: f64,
    /// Warm-up: suppress alarms until the window has this many samples.
    min_samples: usize,
}

impl ZScoreAnomaly {
    /// Window of `window` samples; anomaly when `|z| > z_threshold`.
    pub fn new(window: usize, z_threshold: f64) -> Self {
        assert!(z_threshold > 0.0);
        ZScoreAnomaly {
            window: SlidingWindow::new(window),
            z_threshold,
            min_samples: window / 2,
        }
    }

    /// Sets the warm-up sample count (default: half the window).
    pub fn min_samples(mut self, n: usize) -> Self {
        self.min_samples = n;
        self
    }
}

impl Module for ZScoreAnomaly {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        let anomalous = self.window.len() >= self.min_samples.max(2)
            && self
                .window
                .zscore(x)
                .is_some_and(|z| z.abs() > self.z_threshold);
        self.window.push(x);
        if anomalous {
            Emission::Broadcast(Value::Float(x))
        } else {
            Emission::Silent
        }
    }

    fn name(&self) -> &str {
        "zscore-anomaly"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        self.window.snapshot_into(&mut w);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.window.restore_from(&mut r)?;
        r.finish()
    }
}

/// Flags observations falling more than `sigma` residual standard
/// deviations from a linear regression fitted over a sliding window —
/// the §1 predicate "two standard deviations away from a regression
/// model developed using data from a one-month window".
#[derive(Debug, Clone)]
pub struct RegressionOutlier {
    regression: WindowedRegression,
    sigma: f64,
    min_samples: usize,
}

impl RegressionOutlier {
    /// Regression over `window` samples; outlier when
    /// `|residual| > sigma · residual_stddev`.
    pub fn new(window: usize, sigma: f64) -> Self {
        assert!(sigma > 0.0);
        RegressionOutlier {
            regression: WindowedRegression::new(window),
            sigma,
            min_samples: (window / 2).max(3),
        }
    }
}

impl Module for RegressionOutlier {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(y) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        let outlier = if self.regression.len() >= self.min_samples {
            match (
                self.regression.residual(y),
                self.regression.residual_stddev(),
            ) {
                (Some(r), Some(sd)) if sd > 1e-12 => r.abs() > self.sigma * sd,
                // Perfectly linear history: any deviation is an outlier.
                (Some(r), Some(_)) => r.abs() > 1e-9,
                _ => false,
            }
        } else {
            false
        };
        self.regression.push(y);
        if outlier {
            Emission::Broadcast(Value::Float(y))
        } else {
            Emission::Silent
        }
    }

    fn name(&self) -> &str {
        "regression-outlier"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        self.regression.snapshot_into(&mut w);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.regression.restore_from(&mut r)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_unary};

    #[test]
    fn zscore_flags_spike_only() {
        let mut data: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        data.push(100.0); // spike at phase 51
        data.extend((0..5).map(|i| (i % 7) as f64));
        let out = run_unary(ZScoreAnomaly::new(32, 4.0), floats(&data));
        assert_eq!(out.len(), 1, "only the spike should be flagged: {out:?}");
        assert_eq!(out[0].0, 51);
        assert_eq!(out[0].1, Value::Float(100.0));
    }

    #[test]
    fn zscore_silent_during_warmup() {
        // Huge value in phase 2 — but window not warm yet.
        let out = run_unary(ZScoreAnomaly::new(10, 2.0), floats(&[1.0, 1000.0]));
        assert!(out.is_empty());
    }

    #[test]
    fn regression_outlier_on_trend_break() {
        // Clean linear trend, then a break.
        let mut data: Vec<f64> = (0..20).map(|i| 5.0 + 2.0 * i as f64).collect();
        data.push(500.0);
        let out = run_unary(RegressionOutlier::new(16, 3.0), floats(&data));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 21);
    }

    #[test]
    fn regression_tolerates_noise_within_sigma() {
        // Noisy but bounded around a line: no outliers at 6σ.
        let data: Vec<f64> = (0..40)
            .map(|i| 3.0 + 0.5 * i as f64 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let out = run_unary(RegressionOutlier::new(16, 6.0), floats(&data));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn anomaly_rate_is_tiny_on_normal_traffic() {
        // The §1 argument: normal traffic produces (nearly) no messages.
        let data: Vec<f64> = (0..2000).map(|i| ((i * 37) % 101) as f64).collect();
        let out = run_unary(ZScoreAnomaly::new(64, 6.0), floats(&data));
        assert!(
            out.len() < 5,
            "expected near-silence on uniform traffic, got {} alarms",
            out.len()
        );
    }
}
