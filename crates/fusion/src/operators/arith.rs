//! Binary arithmetic over two streams.
//!
//! Combines the latest values of two inputs — e.g. demand minus
//! capacity, price over baseline — re-evaluating whenever either input
//! changes and emitting only when the result changes.

use super::emit_if_changed;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// The arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `a + b`
    Add,
    /// `a − b`
    Sub,
    /// `a × b`
    Mul,
    /// `a ÷ b` (silent while `b == 0`)
    Div,
    /// `|a − b|`
    AbsDiff,
}

/// Applies an [`ArithOp`] to the latest values of input edges 0 and 1.
///
/// Stays silent until both inputs have reported at least once, and when
/// the recomputed result is unchanged (e.g. both inputs moved in a way
/// that cancels out).
#[derive(Debug, Clone)]
pub struct Arith {
    op: ArithOp,
    last: Option<Value>,
}

impl Arith {
    /// New combiner.
    pub fn new(op: ArithOp) -> Self {
        Arith { op, last: None }
    }

    /// `a + b`.
    pub fn add() -> Self {
        Self::new(ArithOp::Add)
    }

    /// `a − b`.
    pub fn sub() -> Self {
        Self::new(ArithOp::Sub)
    }

    /// `a × b`.
    pub fn mul() -> Self {
        Self::new(ArithOp::Mul)
    }

    /// `a ÷ b`.
    pub fn div() -> Self {
        Self::new(ArithOp::Div)
    }

    /// `|a − b|`.
    pub fn abs_diff() -> Self {
        Self::new(ArithOp::AbsDiff)
    }
}

impl Module for Arith {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        debug_assert!(ctx.inputs.arity() >= 2, "Arith needs two inputs");
        let a = ctx.inputs.current_at(0).and_then(|v| v.as_f64());
        let b = ctx.inputs.current_at(1).and_then(|v| v.as_f64());
        let (Some(a), Some(b)) = (a, b) else {
            return Emission::Silent;
        };
        let result = match self.op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    return Emission::Silent;
                }
                a / b
            }
            ArithOp::AbsDiff => (a - b).abs(),
        };
        emit_if_changed(&mut self.last, Value::Float(result))
    }

    fn name(&self) -> &str {
        match self.op {
            ArithOp::Add => "arith-add",
            ArithOp::Sub => "arith-sub",
            ArithOp::Mul => "arith-mul",
            ArithOp::Div => "arith-div",
            ArithOp::AbsDiff => "arith-absdiff",
        }
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_binary, sparse_floats};

    #[test]
    fn add_and_sub_track_latest() {
        let out = run_binary(
            Arith::add(),
            sparse_floats(&[Some(1.0), Some(2.0), None]),
            sparse_floats(&[Some(10.0), None, Some(20.0)]),
        );
        let vals: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![11.0, 12.0, 22.0]);

        let out = run_binary(
            Arith::sub(),
            sparse_floats(&[Some(5.0)]),
            sparse_floats(&[Some(2.0)]),
        );
        assert_eq!(out[0].1, Value::Float(3.0));
    }

    #[test]
    fn waits_for_both_inputs() {
        let out = run_binary(
            Arith::mul(),
            sparse_floats(&[Some(3.0), None]),
            sparse_floats(&[None, Some(4.0)]),
        );
        assert_eq!(out, vec![(2, Value::Float(12.0))]);
    }

    #[test]
    fn div_silent_on_zero_denominator() {
        let out = run_binary(
            Arith::div(),
            sparse_floats(&[Some(6.0), None, None]),
            sparse_floats(&[Some(0.0), Some(2.0), Some(2.0)]),
        );
        // Phase 1 silent (÷0); phase 2 emits 3; phase 3 unchanged → silent.
        assert_eq!(out, vec![(2, Value::Float(3.0))]);
    }

    #[test]
    fn abs_diff_symmetry() {
        let out = run_binary(
            Arith::abs_diff(),
            sparse_floats(&[Some(2.0)]),
            sparse_floats(&[Some(7.0)]),
        );
        assert_eq!(out[0].1, Value::Float(5.0));
    }

    #[test]
    fn unchanged_result_is_silent() {
        // Both inputs change but the sum is constant.
        let out = run_binary(
            Arith::add(),
            sparse_floats(&[Some(1.0), Some(2.0)]),
            sparse_floats(&[Some(4.0), Some(3.0)]),
        );
        assert_eq!(out, vec![(1, Value::Float(5.0))]);
    }
}
