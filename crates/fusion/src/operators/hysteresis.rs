//! Hysteresis (Schmitt-trigger) thresholding.
//!
//! A plain threshold flaps when the signal hovers around the level,
//! producing needless messages. Hysteresis uses two levels: trigger
//! when the signal rises above `high`, release only when it falls below
//! `low` — fewer state changes, fewer messages, which is what the
//! Δ-dataflow economy wants from noisy sensors.

use super::{emit_if_changed, fresh_f64};
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// Two-level threshold with hysteresis.
#[derive(Debug, Clone)]
pub struct Hysteresis {
    low: f64,
    high: f64,
    triggered: bool,
    last: Option<Value>,
}

impl Hysteresis {
    /// Triggers above `high`, releases below `low`.
    ///
    /// # Panics
    /// Panics if `low > high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low <= high, "hysteresis band inverted: {low} > {high}");
        Hysteresis {
            low,
            high,
            triggered: false,
            last: None,
        }
    }
}

impl Module for Hysteresis {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = fresh_f64(&ctx) else {
            return Emission::Silent;
        };
        if self.triggered {
            if x < self.low {
                self.triggered = false;
            }
        } else if x > self.high {
            self.triggered = true;
        }
        emit_if_changed(&mut self.last, Value::Bool(self.triggered))
    }

    fn name(&self) -> &str {
        "hysteresis"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_bool(self.triggered);
        w.put_opt_value(&self.last);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.triggered = r.get_bool()?;
        self.last = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_unary};
    use crate::operators::threshold::Threshold;

    #[test]
    fn triggers_high_releases_low() {
        let out = run_unary(
            Hysteresis::new(3.0, 7.0),
            floats(&[1.0, 8.0, 5.0, 4.0, 2.0, 6.0]),
        );
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)),
                (2, Value::Bool(true)),  // crossed high
                (5, Value::Bool(false)), // fell below low (5, 4 held)
            ]
        );
    }

    #[test]
    fn suppresses_flapping_vs_plain_threshold() {
        // A signal oscillating around 5.0 flaps a plain threshold every
        // phase but never escapes the 3..7 hysteresis band.
        let wobble: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 4.5 } else { 5.5 })
            .collect();
        let plain = run_unary(Threshold::above(5.0), floats(&wobble));
        let hyst = run_unary(Hysteresis::new(3.0, 7.0), floats(&wobble));
        assert!(plain.len() >= 20, "plain threshold flaps: {}", plain.len());
        assert_eq!(hyst.len(), 1, "hysteresis emits only the initial state");
    }

    #[test]
    fn band_boundaries_hold_state() {
        let out = run_unary(Hysteresis::new(2.0, 4.0), floats(&[4.0, 2.0]));
        // 4.0 is not > high, 2.0 is not < low: never triggers, one
        // initial announcement.
        assert_eq!(out, vec![(1, Value::Bool(false))]);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_band() {
        let _ = Hysteresis::new(5.0, 1.0);
    }
}
