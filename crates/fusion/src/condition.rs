//! A small predicate DSL over numeric streams.
//!
//! The paper defines critical conditions as "predicates over event
//! stream histories" (§1). [`Condition`] is a composable predicate tree
//! over the current value of a stream; [`ConditionModule`] evaluates it
//! on every fresh sample and emits the verdict **only when it changes**,
//! making any predicate tree a well-behaved Δ-dataflow module.
//!
//! ```
//! use ec_fusion::condition::Condition;
//! let c = Condition::gt(30.0).or(Condition::lt(-5.0)).not();
//! assert!(c.eval(10.0));   // within [−5, 30]
//! assert!(!c.eval(31.0));
//! ```

use ec_core::{Emission, ExecCtx, Module};
use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};

/// A predicate over a single numeric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `x > a`.
    Gt(f64),
    /// `x ≥ a`.
    Ge(f64),
    /// `x < a`.
    Lt(f64),
    /// `x ≤ a`.
    Le(f64),
    /// `|x − a| ≤ eps`.
    Near {
        /// Centre.
        target: f64,
        /// Tolerance.
        eps: f64,
    },
    /// `a ≤ x ≤ b`.
    Between(f64, f64),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
}

impl Condition {
    /// `x > a`.
    pub fn gt(a: f64) -> Condition {
        Condition::Gt(a)
    }

    /// `x ≥ a`.
    pub fn ge(a: f64) -> Condition {
        Condition::Ge(a)
    }

    /// `x < a`.
    pub fn lt(a: f64) -> Condition {
        Condition::Lt(a)
    }

    /// `x ≤ a`.
    pub fn le(a: f64) -> Condition {
        Condition::Le(a)
    }

    /// `|x − target| ≤ eps`.
    pub fn near(target: f64, eps: f64) -> Condition {
        Condition::Near { target, eps }
    }

    /// `a ≤ x ≤ b`.
    pub fn between(a: f64, b: f64) -> Condition {
        assert!(a <= b, "between({a}, {b}): bounds out of order");
        Condition::Between(a, b)
    }

    /// Negates this condition. (`!cond` via [`std::ops::Not`] works
    /// too; the method form reads better in builder chains.)
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    /// Conjunction with `other`.
    #[must_use]
    pub fn and(self, other: Condition) -> Condition {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with `other`.
    #[must_use]
    pub fn or(self, other: Condition) -> Condition {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates against a value.
    pub fn eval(&self, x: f64) -> bool {
        match self {
            Condition::Gt(a) => x > *a,
            Condition::Ge(a) => x >= *a,
            Condition::Lt(a) => x < *a,
            Condition::Le(a) => x <= *a,
            Condition::Near { target, eps } => (x - target).abs() <= *eps,
            Condition::Between(a, b) => *a <= x && x <= *b,
            Condition::Not(c) => !c.eval(x),
            Condition::And(l, r) => l.eval(x) && r.eval(x),
            Condition::Or(l, r) => l.eval(x) || r.eval(x),
        }
    }

    /// Wraps this condition as a Δ-dataflow module.
    pub fn into_module(self) -> ConditionModule {
        ConditionModule::new(self)
    }
}

impl std::ops::Not for Condition {
    type Output = Condition;

    fn not(self) -> Condition {
        Condition::Not(Box::new(self))
    }
}

/// Evaluates a [`Condition`] on each fresh sample; emits the boolean
/// verdict only when it changes.
#[derive(Debug, Clone)]
pub struct ConditionModule {
    condition: Condition,
    last: Option<bool>,
}

impl ConditionModule {
    /// Wraps `condition`.
    pub fn new(condition: Condition) -> Self {
        ConditionModule {
            condition,
            last: None,
        }
    }
}

impl Module for ConditionModule {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let Some(x) = ctx.inputs.fresh.last().and_then(|(_, v)| v.as_f64()) else {
            return Emission::Silent;
        };
        let verdict = self.condition.eval(x);
        if self.last == Some(verdict) {
            Emission::Silent
        } else {
            self.last = Some(verdict);
            Emission::Broadcast(Value::Bool(verdict))
        }
    }

    fn name(&self) -> &str {
        "condition"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        match self.last {
            None => w.put_u8(0),
            Some(b) => {
                w.put_u8(1);
                w.put_bool(b);
            }
        }
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_bool()?),
            other => return Err(SnapshotError::new(format!("bad option tag {other}"))),
        };
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_unary};

    #[test]
    fn primitive_conditions() {
        assert!(Condition::gt(1.0).eval(2.0));
        assert!(!Condition::gt(1.0).eval(1.0));
        assert!(Condition::ge(1.0).eval(1.0));
        assert!(Condition::lt(1.0).eval(0.0));
        assert!(Condition::le(1.0).eval(1.0));
        assert!(Condition::near(5.0, 0.1).eval(5.05));
        assert!(!Condition::near(5.0, 0.1).eval(5.2));
        assert!(Condition::between(1.0, 2.0).eval(1.5));
        assert!(!Condition::between(1.0, 2.0).eval(2.5));
    }

    #[test]
    fn combinators() {
        let c = Condition::gt(0.0).and(Condition::lt(10.0));
        assert!(c.eval(5.0));
        assert!(!c.eval(-1.0));
        assert!(!c.eval(11.0));
        let c = Condition::lt(0.0).or(Condition::gt(10.0));
        assert!(c.eval(-1.0));
        assert!(c.eval(11.0));
        assert!(!c.eval(5.0));
        assert!(Condition::gt(0.0).not().eval(-1.0));
    }

    #[test]
    #[should_panic]
    fn between_validates_bounds() {
        let _ = Condition::between(2.0, 1.0);
    }

    #[test]
    fn module_emits_on_change_only() {
        let module = Condition::between(0.0, 10.0).not().into_module();
        let out = run_unary(module, floats(&[5.0, 6.0, 12.0, 13.0, 3.0]));
        assert_eq!(
            out,
            vec![
                (1, Value::Bool(false)),
                (3, Value::Bool(true)),
                (5, Value::Bool(false)),
            ]
        );
    }

    #[test]
    fn module_ignores_non_numeric() {
        let module = Condition::gt(0.0).into_module();
        let out = run_unary(module, vec![Some(Value::text("hi"))]);
        assert!(out.is_empty());
    }
}
