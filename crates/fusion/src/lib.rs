//! # ec-fusion — data-fusion operators and the correlator builder
//!
//! The application layer on top of the [`ec_core`] engine: a library of
//! stream-correlation operators implementing the kinds of predicates the
//! paper's introduction motivates — moving averages, standard-deviation
//! anomaly detectors, regression outlier tests, thresholds, logical
//! combinations — plus a fluent [`CorrelatorBuilder`] for assembling
//! computation graphs without touching vertex ids by hand.
//!
//! Every operator follows the Δ-dataflow contract: **emit only when the
//! answer changes**. A threshold module does not re-announce "still
//! above" every phase; an anomaly detector stays silent for the
//! 999,999 normal transactions and speaks once for the anomalous one
//! (§1's money-laundering example). That is what keeps inter-module
//! message rates low and the parallel engine efficient.
//!
//! ## Quick example
//!
//! ```
//! use ec_fusion::prelude::*;
//! use ec_events::sources::Diurnal;
//!
//! let mut b = CorrelatorBuilder::new();
//! let temp = b.source("temperature", Diurnal::new(20.0, 10.0, 24, 0.5, 1));
//! let avg = b.add("avg", MovingAverage::new(6), &[temp]);
//! let alarm = b.add("alarm", Threshold::above(25.0), &[avg]);
//! let mut engine = b.engine().threads(2).build().unwrap();
//! let report = engine.run(48).unwrap();
//! let history = report.history.unwrap();
//! // The alarm executes every phase (its input changes) but *emits*
//! // only when its verdict flips — far fewer than 48 messages.
//! let alarm_messages = history.sink_outputs_of(alarm.vertex()).len();
//! assert!(alarm_messages < 10, "alarm sent {alarm_messages} messages");
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod condition;
pub mod harness;
pub mod models;
pub mod operators;

pub use builder::{CorrelatorBuilder, NodeHandle};
pub use condition::{Condition, ConditionModule};

/// Convenient glob import for building correlators.
pub mod prelude {
    pub use crate::builder::{CorrelatorBuilder, NodeHandle};
    pub use crate::condition::{Condition, ConditionModule};
    pub use crate::models::{BoilerModel, GbmMarket, KMeansTracker};
    pub use crate::operators::aggregate::{Aggregate, AggregateKind};
    pub use crate::operators::anomaly::{RegressionOutlier, ZScoreAnomaly};
    pub use crate::operators::arith::{Arith, ArithOp};
    pub use crate::operators::delta::{ChangeDetector, Debounce, SampleHold};
    pub use crate::operators::hysteresis::Hysteresis;
    pub use crate::operators::join::{CoincidenceJoin, PairCorrelation};
    pub use crate::operators::logic::{AllOf, AnyOf, TrueCount};
    pub use crate::operators::moving::{EwmaSmoother, MovingAverage};
    pub use crate::operators::rate::RateMonitor;
    pub use crate::operators::threshold::Threshold;
    pub use ec_core::{Emission, ExecCtx, Module};
    pub use ec_events::{Phase, Value};
}
