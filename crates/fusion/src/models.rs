//! Domain model modules — the "complex models" of §1.
//!
//! The paper's modules "may execute models such as simulations of
//! boilers or analyses of stochastic differential equations representing
//! financial systems" and use "clustering of points in multidimensional
//! spaces". This module provides faithful miniatures of each, written
//! as Δ-dataflow citizens: they hold internal state across phases,
//! consume changes, and speak only when their own assumptions or
//! summaries change.

use crate::operators::emit_if_changed;
use ec_core::{Emission, ExecCtx, Module};
use ec_events::{
    EventSource, Phase, SnapshotError, StateReader, StateSnapshot, StateWriter, Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A lumped-parameter boiler thermal model.
///
/// State: water temperature `T`. Each phase it integrates
/// `dT = (power_in − loss·(T − ambient)) / capacity`, where the ambient
/// temperature is input edge 0 and the firing power is input edge 1
/// (both latest-value semantics). It emits its *predicted* temperature
/// only when the prediction drifts more than `report_band` from the
/// last reported value — the model-composition contract of §1: silence
/// means "my previous report still stands".
#[derive(Debug, Clone)]
pub struct BoilerModel {
    temperature: f64,
    capacity: f64,
    loss: f64,
    report_band: f64,
    last_reported: Option<f64>,
}

impl BoilerModel {
    /// New boiler starting at `initial_temperature`.
    ///
    /// `capacity` is thermal mass (J/°C per phase unit), `loss` the
    /// heat-loss coefficient, `report_band` the silence band in °C.
    pub fn new(initial_temperature: f64, capacity: f64, loss: f64, report_band: f64) -> Self {
        assert!(capacity > 0.0 && loss >= 0.0 && report_band >= 0.0);
        BoilerModel {
            temperature: initial_temperature,
            capacity,
            loss,
            report_band,
            last_reported: None,
        }
    }

    /// Current internal temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl Module for BoilerModel {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        let ambient = ctx
            .inputs
            .current_at(0)
            .and_then(|v| v.as_f64())
            .unwrap_or(20.0);
        let power = ctx
            .inputs
            .current_at(1)
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let d_t = (power - self.loss * (self.temperature - ambient)) / self.capacity;
        self.temperature += d_t;
        match self.last_reported {
            Some(prev) if (self.temperature - prev).abs() <= self.report_band => Emission::Silent,
            _ => {
                self.last_reported = Some(self.temperature);
                Emission::Broadcast(Value::Float(self.temperature))
            }
        }
    }

    fn name(&self) -> &str {
        "boiler-model"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_f64(self.temperature);
        w.put_opt_f64(self.last_reported);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.temperature = r.get_f64()?;
        self.last_reported = r.get_opt_f64()?;
        r.finish()
    }
}

/// Geometric-Brownian-motion market price source.
///
/// `S ← S · exp((µ − σ²/2) + σ·Z)` per phase with `Z` approximated by a
/// sum of uniforms (Irwin–Hall, n=12), seeded and deterministic — the
/// "stochastic differential equations representing financial systems"
/// of §1 as a stream source.
#[derive(Debug, Clone)]
pub struct GbmMarket {
    rng: SmallRng,
    price: f64,
    mu: f64,
    sigma: f64,
}

impl GbmMarket {
    /// New market at `initial_price` with per-phase drift `mu` and
    /// volatility `sigma`.
    pub fn new(initial_price: f64, mu: f64, sigma: f64, seed: u64) -> Self {
        assert!(initial_price > 0.0 && sigma >= 0.0);
        GbmMarket {
            rng: SmallRng::seed_from_u64(seed),
            price: initial_price,
            mu,
            sigma,
        }
    }

    fn standard_normal(&mut self) -> f64 {
        // Irwin–Hall approximation: sum of 12 U(0,1) minus 6.
        (0..12).map(|_| self.rng.gen::<f64>()).sum::<f64>() - 6.0
    }
}

impl EventSource for GbmMarket {
    fn poll(&mut self, _phase: Phase) -> Option<Value> {
        let z = self.standard_normal();
        self.price *= ((self.mu - self.sigma * self.sigma / 2.0) + self.sigma * z).exp();
        Some(Value::Float(self.price))
    }

    fn kind(&self) -> &'static str {
        "gbm-market"
    }
}

/// Online 1-dimensional k-means cluster tracker.
///
/// Maintains `k` centroids over the incoming scalar stream (sequential
/// k-means / MacQueen updates) and emits the centroid vector whenever
/// the *assignment structure* shifts a centroid by more than
/// `report_eps` — the paper's "clustering of points in multidimensional
/// spaces" condition reduced to the scalar case, with change-only
/// reporting.
#[derive(Debug, Clone)]
pub struct KMeansTracker {
    centroids: Vec<f64>,
    counts: Vec<u64>,
    report_eps: f64,
    last_reported: Option<Value>,
    initialized: usize,
}

impl KMeansTracker {
    /// Tracks `k` clusters; emits when any centroid moves more than
    /// `report_eps` since the last report.
    pub fn new(k: usize, report_eps: f64) -> Self {
        assert!(k >= 1);
        KMeansTracker {
            centroids: vec![0.0; k],
            counts: vec![0; k],
            report_eps,
            last_reported: None,
            initialized: 0,
        }
    }

    /// Current centroids (sorted copies are emitted; internal order is
    /// arrival order).
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    fn absorb(&mut self, x: f64) {
        if self.initialized < self.centroids.len() {
            // Seed centroids with the first k distinct-ish samples.
            self.centroids[self.initialized] = x;
            self.counts[self.initialized] = 1;
            self.initialized += 1;
            return;
        }
        let (nearest, _) = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, (c - x).abs()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN centroids"))
            .expect("k >= 1");
        self.counts[nearest] += 1;
        let n = self.counts[nearest] as f64;
        self.centroids[nearest] += (x - self.centroids[nearest]) / n;
    }
}

impl Module for KMeansTracker {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let mut saw_sample = false;
        for (_, v) in ctx.inputs.fresh {
            if let Some(x) = v.as_f64() {
                self.absorb(x);
                saw_sample = true;
            }
        }
        if !saw_sample || self.initialized < self.centroids.len() {
            return Emission::Silent;
        }
        let mut sorted = self.centroids.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN centroids"));
        let candidate = Value::vector(sorted);
        // Report only on meaningful movement.
        if let (Some(Value::Vector(prev)), Value::Vector(cur)) = (&self.last_reported, &candidate) {
            let moved = prev
                .iter()
                .zip(cur.iter())
                .any(|(a, b)| (a - b).abs() > self.report_eps);
            if !moved {
                return Emission::Silent;
            }
        }
        emit_if_changed(&mut self.last_reported, candidate)
    }

    fn name(&self) -> &str {
        "kmeans-tracker"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_u32(self.centroids.len() as u32);
        for (&c, &n) in self.centroids.iter().zip(&self.counts) {
            w.put_f64(c);
            w.put_u64(n);
        }
        w.put_u32(self.initialized as u32);
        w.put_opt_value(&self.last_reported);
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        let k = r.get_u32()? as usize;
        if k != self.centroids.len() {
            return Err(SnapshotError::new(format!(
                "checkpoint has {k} centroids, tracker configured for {}",
                self.centroids.len()
            )));
        }
        for i in 0..k {
            self.centroids[i] = r.get_f64()?;
            self.counts[i] = r.get_u64()?;
        }
        self.initialized = r.get_u32()? as usize;
        self.last_reported = r.get_opt_value()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{floats, run_binary, run_unary, sparse_floats};

    #[test]
    fn boiler_approaches_equilibrium() {
        // Constant ambient 20 °C and power 100: equilibrium at
        // ambient + power/loss = 20 + 100/5 = 40 °C.
        let boiler = BoilerModel::new(20.0, 10.0, 5.0, 0.0);
        let out = run_binary(boiler, floats(&[20.0; 200]), floats(&[100.0; 200]));
        let last = out.last().unwrap().1.as_f64().unwrap();
        assert!((last - 40.0).abs() < 0.5, "T = {last}");
        // Monotone rise toward equilibrium.
        let temps: Vec<f64> = out.iter().map(|(_, v)| v.as_f64().unwrap()).collect();
        assert!(temps.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }

    #[test]
    fn boiler_report_band_silences_steady_state() {
        let boiler = BoilerModel::new(40.0, 10.0, 5.0, 1.0);
        // Already at equilibrium: dT ≈ 0, nothing beyond the first
        // report should be emitted.
        let out = run_binary(boiler, floats(&[20.0; 50]), floats(&[100.0; 50]));
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn boiler_silent_without_input() {
        let boiler = BoilerModel::new(20.0, 10.0, 5.0, 0.0);
        let out = run_binary(
            boiler,
            sparse_floats(&[None, None]),
            sparse_floats(&[None, None]),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn gbm_is_deterministic_and_positive() {
        use ec_events::Phase;
        let mut a = GbmMarket::new(100.0, 0.0, 0.02, 9);
        let mut b = GbmMarket::new(100.0, 0.0, 0.02, 9);
        for p in 1..=200u64 {
            let va = a.poll(Phase(p)).unwrap().as_f64().unwrap();
            let vb = b.poll(Phase(p)).unwrap().as_f64().unwrap();
            assert_eq!(va, vb);
            assert!(va > 0.0);
        }
    }

    #[test]
    fn gbm_drift_moves_price() {
        use ec_events::Phase;
        let mut up = GbmMarket::new(100.0, 0.01, 0.001, 3);
        let mut last = 0.0;
        for p in 1..=500u64 {
            last = up.poll(Phase(p)).unwrap().as_f64().unwrap();
        }
        assert!(last > 120.0, "price after 500 phases of 1% drift: {last}");
    }

    #[test]
    fn kmeans_finds_two_well_separated_clusters() {
        // Alternate samples near 0 and near 100.
        let data: Vec<f64> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    (i % 7) as f64 * 0.1
                } else {
                    100.0 + (i % 5) as f64 * 0.1
                }
            })
            .collect();
        let out = run_unary(KMeansTracker::new(2, 0.5), floats(&data));
        let last = out.last().unwrap().1.clone();
        let centroids = last.as_vector().unwrap();
        assert!(centroids[0] < 1.0, "{centroids:?}");
        assert!((centroids[1] - 100.0).abs() < 1.0, "{centroids:?}");
    }

    #[test]
    fn kmeans_quiets_down_as_centroids_converge() {
        let data: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 10.0 } else { 50.0 })
            .collect();
        let out = run_unary(KMeansTracker::new(2, 0.5), floats(&data));
        // Early phases report movement; the tail is silent.
        let last_report = out.last().unwrap().0;
        assert!(
            last_report < 100,
            "centroids should stabilise early, last report at phase {last_report}"
        );
    }

    #[test]
    fn kmeans_silent_during_seeding() {
        let out = run_unary(KMeansTracker::new(3, 0.1), floats(&[1.0, 2.0]));
        assert!(out.is_empty(), "needs k samples before reporting");
    }
}
