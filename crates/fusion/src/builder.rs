//! Fluent construction of correlation graphs.
//!
//! [`CorrelatorBuilder`] assembles the computation graph and its modules
//! together, so wiring mistakes (wrong vertex/module pairing, dangling
//! inputs) are impossible by construction: a [`NodeHandle`] can only
//! name a vertex that already exists, and edges always run from existing
//! vertices to the new one — which also makes the graph acyclic by
//! construction.

use ec_core::{
    BarrierParallel, Engine, EngineBuilder, EngineError, Module, Sequential, SourceModule,
};
use ec_events::{EventSource, FeedWriter, LiveFeed};
use ec_graph::{Dag, VertexId};

/// A reference to a node created by the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHandle {
    vertex: VertexId,
}

impl NodeHandle {
    /// The underlying graph vertex (usable with
    /// [`ExecutionHistory`](ec_core::ExecutionHistory) lookups).
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }
}

/// Builds a correlation graph and its modules in lock-step.
#[derive(Default)]
pub struct CorrelatorBuilder {
    dag: Dag,
    modules: Vec<Box<dyn Module>>,
}

impl CorrelatorBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source node driven by `generator`.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        generator: impl EventSource + 'static,
    ) -> NodeHandle {
        let vertex = self.dag.add_vertex(name);
        self.modules.push(Box::new(SourceModule::new(generator)));
        NodeHandle { vertex }
    }

    /// Adds a live source node: its per-phase values are staged through
    /// the returned [`FeedWriter`] while the engine runs, instead of
    /// being scripted up front. The streaming runtime (`ec-runtime`)
    /// builds on this to ingest external events.
    pub fn live_source(&mut self, name: impl Into<String>) -> (NodeHandle, FeedWriter) {
        let (feed, writer) = LiveFeed::channel();
        let handle = self.source(name, feed);
        (handle, writer)
    }

    /// Adds a source node from a boxed generator.
    pub fn source_box(
        &mut self,
        name: impl Into<String>,
        generator: Box<dyn EventSource>,
    ) -> NodeHandle {
        let vertex = self.dag.add_vertex(name);
        self.modules
            .push(Box::new(SourceModule::from_box(generator)));
        NodeHandle { vertex }
    }

    /// Adds a computation node running `module`, fed by `inputs`.
    ///
    /// # Panics
    /// Panics if `inputs` is empty (use [`source`](Self::source) for
    /// sources) or contains duplicates.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        module: impl Module + 'static,
        inputs: &[NodeHandle],
    ) -> NodeHandle {
        self.add_box(name, Box::new(module), inputs)
    }

    /// Adds a computation node from a boxed module.
    pub fn add_box(
        &mut self,
        name: impl Into<String>,
        module: Box<dyn Module>,
        inputs: &[NodeHandle],
    ) -> NodeHandle {
        assert!(
            !inputs.is_empty(),
            "non-source nodes need at least one input; use source() for sources"
        );
        let vertex = self.dag.add_vertex(name);
        self.modules.push(module);
        for h in inputs {
            self.dag
                .add_edge(h.vertex, vertex)
                .unwrap_or_else(|e| panic!("invalid input wiring: {e}"));
        }
        NodeHandle { vertex }
    }

    /// Number of nodes so far.
    pub fn len(&self) -> usize {
        self.dag.vertex_count()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Read access to the graph under construction.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Finishes into a parallel-engine builder.
    pub fn engine(self) -> EngineBuilder {
        Engine::builder(self.dag, self.modules)
    }

    /// Finishes into the sequential reference executor.
    pub fn sequential(self) -> Result<Sequential, EngineError> {
        Sequential::new(&self.dag, self.modules)
    }

    /// Finishes into the phase-barrier baseline executor.
    pub fn barrier(self, threads: usize) -> Result<BarrierParallel, EngineError> {
        BarrierParallel::new(&self.dag, self.modules, threads)
    }

    /// Deconstructs into the raw graph and modules (for the spec layer
    /// and custom executors).
    pub fn into_parts(self) -> (Dag, Vec<Box<dyn Module>>) {
        (self.dag, self.modules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::aggregate::Aggregate;
    use crate::operators::threshold::Threshold;
    use ec_events::sources::Counter;

    #[test]
    fn builds_a_working_graph() {
        let mut b = CorrelatorBuilder::new();
        let s1 = b.source("s1", Counter::new());
        let s2 = b.source("s2", Counter::new());
        let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
        let alarm = b.add("alarm", Threshold::above(5.0), &[sum]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.dag().sources().len(), 2);

        let mut seq = b.sequential().unwrap();
        seq.run(5).unwrap();
        let h = seq.into_history();
        // Sum = 2·counter; crosses 5 at counter = 3 (sum 6), phase 3.
        let alarms = h.sink_outputs_of(alarm.vertex());
        assert_eq!(alarms.len(), 2); // initial false + the crossing
        assert_eq!(alarms[0].0.get(), 1);
        assert_eq!(alarms[1].0.get(), 3);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let build = || {
            let mut b = CorrelatorBuilder::new();
            let s1 = b.source("s1", Counter::new());
            let s2 = b.source("s2", Counter::new());
            let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
            let _ = b.add("alarm", Threshold::above(10.0), &[sum]);
            b
        };
        let mut seq = build().sequential().unwrap();
        seq.run(20).unwrap();
        let mut eng = build().engine().threads(4).build().unwrap();
        let h_par = eng.run(20).unwrap().history.unwrap();
        assert_eq!(seq.into_history().equivalent(&h_par), Ok(()));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_inputless_node() {
        let mut b = CorrelatorBuilder::new();
        b.add("orphan", Aggregate::sum(), &[]);
    }

    #[test]
    #[should_panic(expected = "invalid input wiring")]
    fn rejects_duplicate_inputs() {
        let mut b = CorrelatorBuilder::new();
        let s = b.source("s", Counter::new());
        b.add("dup", Aggregate::sum(), &[s, s]);
    }

    #[test]
    fn live_source_is_fed_at_runtime() {
        use ec_events::Value;
        let mut b = CorrelatorBuilder::new();
        let (tx, writer) = b.live_source("tx");
        let alarm = b.add("alarm", Threshold::above(5.0), &[tx]);
        // Stage three phases of input, then run them.
        for v in [1.0, 9.0, 2.0] {
            writer.stage(Some(Value::Float(v)));
        }
        let mut seq = b.sequential().unwrap();
        seq.run(3).unwrap();
        let outs = seq.into_history().sink_outputs_of(alarm.vertex());
        // false (phase 1), true (phase 2), false (phase 3).
        assert_eq!(
            outs.iter()
                .map(|(p, v)| (p.get(), v.clone()))
                .collect::<Vec<_>>(),
            vec![
                (1, Value::Bool(false)),
                (2, Value::Bool(true)),
                (3, Value::Bool(false)),
            ]
        );
        assert_eq!(writer.underruns(), 0);
    }

    #[test]
    fn into_parts_roundtrip() {
        let mut b = CorrelatorBuilder::new();
        let s = b.source("s", Counter::new());
        b.add("agg", Aggregate::mean(), &[s]);
        let (dag, modules) = b.into_parts();
        assert_eq!(dag.vertex_count(), modules.len());
    }
}
