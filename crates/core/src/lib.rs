//! # ec-core — the serializable Δ-dataflow parallel engine
//!
//! A faithful Rust implementation of the parallel event-stream
//! correlation algorithm of **Zimmerman & Chandy, "A Parallel Algorithm
//! for Correlating Event Streams" (IPPS 2005)**.
//!
//! The computation is an acyclic graph of [`Module`]s exchanging typed
//! messages. Events arriving at the same instant form a *phase*; the
//! engine executes many phases concurrently ("pipelined as much as
//! possible", §3) while remaining **serializable**: the observable
//! behaviour is identical to executing one phase at a time from sources
//! to sinks. Efficiency comes from the Δ-dataflow rule that modules emit
//! only when their outputs *change* — the absence of a message is itself
//! information (§1).
//!
//! ## Components
//!
//! * [`Engine`] — the parallel executor: `k` computation threads
//!   (Listing 1) + 1 environment thread (Listing 2) over the shared
//!   partial/full/ready sets ([`engine`]).
//! * [`Sequential`] — the phase-at-a-time serial reference whose history
//!   defines correctness ([`sequential`]).
//! * [`BarrierParallel`] — the non-pipelined parallel baseline (§2's
//!   "one solution"), for the ablation benchmarks ([`barrier`]).
//! * [`densify`] — converts a module set into the paper's "obvious
//!   solution" (emit everything every phase) for the message-rate
//!   experiments ([`dense`]).
//! * [`RunQueue`], [`WorkerPool`] — the concurrency substrate the
//!   paper's prototype took from `java.util.concurrent` ([`queue`],
//!   [`pool`]).
//! * [`ExecutionHistory`] — per-vertex emission logs and the
//!   serializability comparison ([`history`]).
//! * [`Trace`] — Figure-3-style set-membership snapshots ([`trace`]).
//! * [`MetricsSnapshot`] — execution/message/pipelining counters
//!   ([`metrics`]).
//!
//! ## Quick example
//!
//! ```
//! use ec_core::{Engine, Module, PassThrough, SourceModule};
//! use ec_events::sources::Counter;
//! use ec_graph::generators;
//!
//! let dag = generators::chain(3);
//! let modules: Vec<Box<dyn Module>> = vec![
//!     Box::new(SourceModule::new(Counter::new())),
//!     Box::new(PassThrough),
//!     Box::new(PassThrough),
//! ];
//! let mut engine = Engine::builder(dag, modules).threads(4).build().unwrap();
//! let report = engine.run(10).unwrap();
//! assert_eq!(report.metrics.phases_completed, 10);
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod checkpoint;
pub mod dense;
pub mod distributed;
pub mod engine;
pub mod error;
pub mod history;
pub mod live;
pub mod metrics;
pub mod module;
pub mod multi;
pub mod pool;
pub mod queue;
pub mod sequential;
pub mod shard;
mod state;
pub mod stepper;
pub mod trace;
pub mod trace_dot;
mod vertex;

pub use barrier::BarrierParallel;
pub use checkpoint::{EngineCheckpoint, VertexState};
pub use dense::densify;
pub use distributed::{DistributedSim, MachineStats};
pub use engine::{Engine, EngineBuilder, RunReport};
pub use error::EngineError;
pub use history::{Divergence, ExecutionHistory, RecordedEmission, SinkRecord};
pub use live::LiveEngine;
pub use metrics::{
    IngestCounters, LatencyStats, Metrics, MetricsSnapshot, PathLatency, PhaseGauge,
    SchedulerCounters,
};
pub use module::{
    AlwaysEmit, CollectSink, Emission, ExecCtx, FnModule, InputView, Module, PassThrough,
    SourceModule, SumModule, Workload,
};
pub use multi::EnginePool;
pub use pool::WorkerPool;
pub use queue::{Dequeued, RunQueue};
pub use sequential::Sequential;
pub use shard::{QueueStats, ShardedQueue};
pub use stepper::{StepOutcome, Stepper};
pub use trace::{SetMembership, SetSnapshot, Trace, TraceEvent, TraceStep};
