//! The thread-safe blocking run queue (§3.2).
//!
//! The paper assumes "a thread-safe queue: any thread executing a dequeue
//! operation suspends until an item is available for dequeuing, and the
//! dequeue operation atomically removes an item from the queue such that
//! each item on the queue is dequeued at most once". The Java prototype
//! used `java.util.concurrent.BlockingQueue`; this is the Rust
//! equivalent, built from a `parking_lot` mutex and condvar exactly as
//! *Rust Atomics and Locks* builds channel primitives, plus a `close`
//! operation for orderly shutdown (the paper's processes loop forever;
//! real runs need to terminate).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Result of a blocking dequeue.
#[derive(Debug, PartialEq, Eq)]
pub enum Dequeued<T> {
    /// An item was removed from the queue.
    Item(T),
    /// The queue was closed and fully drained; the worker should exit.
    Closed,
}

/// A blocking multi-producer multi-consumer FIFO queue.
pub struct RunQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> RunQueue<T> {
    /// New empty open queue (the algorithm assumes the run queue is
    /// empty at system initialisation).
    pub fn new() -> Self {
        RunQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues an item and wakes one blocked consumer.
    ///
    /// Items enqueued after `close` are silently dropped: this happens
    /// only while a failed run is draining, where discarding work is the
    /// desired behaviour.
    pub fn enqueue(&self, item: T) {
        let mut g = self.inner.lock();
        if g.closed {
            return;
        }
        g.items.push_back(item);
        drop(g);
        self.available.notify_one();
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained. Each item is returned exactly once.
    pub fn dequeue(&self) -> Dequeued<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Dequeued::Item(item);
            }
            if g.closed {
                return Dequeued::Closed;
            }
            self.available.wait(&mut g);
        }
    }

    /// Non-blocking dequeue; `None` when empty (even if open).
    pub fn try_dequeue(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Closes the queue and wakes all consumers. Items already enqueued
    /// are still delivered before consumers observe `Closed`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Reopens a closed queue so a new pool of consumers can be served
    /// (used by the engine between `run` calls, after all workers have
    /// been joined).
    pub fn reopen(&self) {
        self.inner.lock().closed = false;
    }

    /// Number of queued items (racy snapshot; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True if no items are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for RunQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let q = RunQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Dequeued::Item(1));
        assert_eq!(q.dequeue(), Dequeued::Item(2));
        assert_eq!(q.try_dequeue(), Some(3));
        assert_eq!(q.try_dequeue(), None);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = RunQueue::new();
        q.enqueue(7);
        q.close();
        assert_eq!(q.dequeue(), Dequeued::Item(7));
        assert_eq!(q.dequeue(), Dequeued::Closed);
        assert_eq!(q.dequeue(), Dequeued::Closed);
    }

    #[test]
    fn blocked_consumer_wakes_on_enqueue() {
        let q = Arc::new(RunQueue::new());
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(20));
        q.enqueue(42);
        assert_eq!(h.join().unwrap(), Dequeued::Item(42));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<RunQueue<i32>> = Arc::new(RunQueue::new());
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Dequeued::Closed);
    }

    #[test]
    fn each_item_dequeued_exactly_once_under_contention() {
        const ITEMS: usize = 10_000;
        const CONSUMERS: usize = 8;
        let q = Arc::new(RunQueue::<usize>::new());
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    let mut count = 0usize;
                    while let Dequeued::Item(i) = q.dequeue() {
                        seen[i].fetch_add(1, Ordering::Relaxed);
                        count += 1;
                    }
                    count
                })
            })
            .collect();

        for i in 0..ITEMS {
            q.enqueue(i);
        }
        q.close();

        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, ITEMS);
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "item {i} seen != once");
        }
    }

    #[test]
    fn len_reflects_queue_depth() {
        let q = RunQueue::new();
        assert!(q.is_empty());
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.len(), 2);
    }
}
