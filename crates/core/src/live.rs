//! Caller-paced (live) execution: the incremental admission API.
//!
//! [`Engine::run`](crate::Engine::run) is batch: the environment thread
//! starts a fixed number of phases and the call returns when they have
//! all completed. A long-running service cannot work that way — events
//! arrive over time, and each phase can only be started once its input
//! snapshot exists. [`LiveEngine`] is the same scheduler, worker pool
//! and serializability machinery with the environment process replaced
//! by *the caller*: [`admit`](LiveEngine::admit) performs exactly the
//! environment's statements 2.11–2.19 for one phase, whenever the
//! caller decides the next snapshot is ready.
//!
//! The paper's Listing 2 environment "receives messages from sources
//! and sleeps for some amount of time" between phase starts; `admit` is
//! that loop body exposed as a method, which is what makes the
//! streaming runtime (`ec-runtime`) possible without any change to the
//! scheduling algorithm: serializability is a property of the shared
//! state transitions, not of who calls `start_phase`.
//!
//! Sink deliveries: in live mode the engine additionally buffers every
//! sink emission and releases it only once its phase has **retired**
//! (all phases up to it completed). Drained batches are therefore in
//! exact serial order — what an online subscriber must observe for the
//! runtime to remain serializable from the outside.

use crate::checkpoint::EngineCheckpoint;
use crate::engine::{RunReport, Shared};
use crate::error::EngineError;
use crate::history::{ExecutionHistory, SinkRecord};
use crate::multi::PoolMembership;
use crate::pool::WorkerPool;
use crate::state::Transition;
use ec_events::Phase;
use ec_graph::Numbering;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A long-running engine whose phases are admitted by the caller.
///
/// Created by [`Engine::into_live`](crate::Engine::into_live). Workers
/// run until [`shutdown`](LiveEngine::shutdown); all methods take
/// `&self`, so the engine can be shared behind an `Arc` between an
/// ingestion thread and a delivery thread.
pub struct LiveEngine {
    shared: Arc<Shared>,
    /// Joined (and replaced by `None`) at shutdown. `None` from the
    /// start for a pooled engine — the pool owns the workers.
    workers: Mutex<Option<WorkerPool>>,
    /// Set once shutdown begins; wakes [`wait_progress_for`] waiters.
    closing: AtomicBool,
    max_inflight: u64,
    /// Tenant-slot claim on a shared pool, released (slot freed, queued
    /// tasks invalidated) at shutdown or drop. `None` for an engine
    /// with private workers.
    membership: Mutex<Option<PoolMembership>>,
}

impl LiveEngine {
    /// Spawns the persistent worker pool (crate-internal; use
    /// [`Engine::into_live`](crate::Engine::into_live)).
    pub(crate) fn spawn(shared: Arc<Shared>, threads: usize, max_inflight: u64) -> LiveEngine {
        *shared.live_sinks.lock() = Some(std::collections::BTreeMap::new());
        let worker_shared = Arc::clone(&shared);
        let workers = WorkerPool::spawn("ec-live-worker", threads, move |i| {
            worker_shared.worker_loop(i);
        });
        LiveEngine {
            shared,
            workers: Mutex::new(Some(workers)),
            closing: AtomicBool::new(false),
            max_inflight,
            membership: Mutex::new(None),
        }
    }

    /// Wraps an engine already registered with a shared pool — no
    /// private workers; the pool's workers execute this tenant's tasks
    /// (crate-internal; use [`Engine::into_live`](crate::Engine::into_live)
    /// after [`EngineBuilder::pooled`](crate::EngineBuilder::pooled)).
    pub(crate) fn spawn_pooled(
        shared: Arc<Shared>,
        membership: PoolMembership,
        max_inflight: u64,
    ) -> LiveEngine {
        *shared.live_sinks.lock() = Some(std::collections::BTreeMap::new());
        LiveEngine {
            shared,
            workers: Mutex::new(None),
            closing: AtomicBool::new(false),
            max_inflight,
            membership: Mutex::new(Some(membership)),
        }
    }

    /// The vertex numbering in use.
    pub fn numbering(&self) -> &Numbering {
        &self.shared.numbering
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.shared.metrics_snapshot()
    }

    /// Starts the next phase (the environment process's step) and
    /// returns its number. Every source module will be polled for this
    /// phase, so the caller must stage source input *before* admitting.
    ///
    /// Blocks while `max_inflight` phases are already started but
    /// incomplete (the environment throttle), bounding scheduler
    /// memory. Returns an error if the engine has failed or is shut
    /// down.
    pub fn admit(&self) -> Result<u64, EngineError> {
        let mut st = self.shared.state.lock();
        while st.failed.is_none()
            && st.inflight() >= self.max_inflight
            && !self.closing.load(Relaxed)
        {
            self.shared.wait_progress(&mut st);
        }
        if let Some(msg) = &st.failed {
            return Err(EngineError::WorkerPanic(msg.clone()));
        }
        if self.closing.load(Relaxed) {
            return Err(EngineError::Config("engine is shut down".into()));
        }
        let mut transition = Transition::default();
        let phase = st.start_phase(&mut transition);
        self.shared.note_admitted(phase);
        if self.shared.check_invariants {
            if let Err(msg) = st.check_invariants() {
                drop(st);
                let error = EngineError::InvariantViolation(msg);
                self.shared.fail(error.clone());
                return Err(error);
            }
        }
        drop(st);
        self.shared.enqueue_all(&mut transition, None);
        self.shared.metrics.phases_started.fetch_add(1, Relaxed);
        Ok(phase)
    }

    /// Starts up to `limit` phases under a **single** acquisition of
    /// the global lock, returning how many were started.
    ///
    /// [`admit`](LiveEngine::admit) pays one lock round-trip per phase;
    /// a bursty ingestion front end sealing `k` queued events at once
    /// can amortize that to one acquisition per batch. Blocks (like
    /// `admit`) while the in-flight throttle is saturated, then starts
    /// `min(limit, remaining in-flight headroom)` phases — always at
    /// least one. Sources must have input staged for *every* started
    /// phase before the call.
    pub fn admit_batch(&self, limit: u64) -> Result<u64, EngineError> {
        self.admit_batch_inner(limit, None)
    }

    /// [`admit_batch`](Self::admit_batch) with silence-aware admission:
    /// for each started phase, `is_silent(offset, source)` is consulted
    /// for every source vertex (`offset` counts phases within this
    /// batch, from 0) and sources reported silent are not scheduled at
    /// all — no task, no poll, no execution.
    ///
    /// Soundness is the *caller's* contract: a source may only be
    /// reported silent when its execution would provably be a no-op —
    /// poll `None`, emit nothing, mutate nothing. The streaming runtime
    /// can promise this for its live feeds because it staged their bins
    /// and knows exactly which phases are silent; scripted sources
    /// (whose poll advances generator state) must never be skipped.
    /// Downstream vertices are unaffected: they are scheduled by
    /// message arrival, and a skipped execution would have sent none.
    /// A phase whose every source is silent completes without any
    /// execution.
    pub fn admit_batch_sparse(
        &self,
        limit: u64,
        mut is_silent: impl FnMut(u64, ec_graph::VertexId) -> bool,
    ) -> Result<u64, EngineError> {
        self.admit_batch_inner(limit, Some(&mut is_silent))
    }

    fn admit_batch_inner(
        &self,
        limit: u64,
        mut is_silent: Option<&mut dyn FnMut(u64, ec_graph::VertexId) -> bool>,
    ) -> Result<u64, EngineError> {
        if limit == 0 {
            return Ok(0);
        }
        let mut st = self.shared.state.lock();
        while st.failed.is_none()
            && st.inflight() >= self.max_inflight
            && !self.closing.load(Relaxed)
        {
            self.shared.wait_progress(&mut st);
        }
        if let Some(msg) = &st.failed {
            return Err(EngineError::WorkerPanic(msg.clone()));
        }
        if self.closing.load(Relaxed) {
            return Err(EngineError::Config("engine is shut down".into()));
        }
        let headroom = self.max_inflight - st.inflight();
        let batch = limit.min(headroom).max(1);
        let mut transition = Transition::default();
        // One clock read stamps the whole batch; the ring span for it
        // is emitted after the lock drops so the recorder never sits
        // on the admission serial section.
        let admitted_at = Instant::now();
        let mut first_phase = 0;
        for offset in 0..batch {
            let phase = match is_silent.as_mut() {
                Some(is_silent) => {
                    let numbering = &self.shared.numbering;
                    st.start_phase_filtered(&mut transition, |s| {
                        !is_silent(offset, numbering.vertex_at(s))
                    })
                }
                None => st.start_phase(&mut transition),
            };
            if offset == 0 {
                first_phase = phase;
            }
            self.shared.stamp_admitted(phase, admitted_at);
            if self.shared.check_invariants {
                if let Err(msg) = st.check_invariants() {
                    drop(st);
                    let error = EngineError::InvariantViolation(msg);
                    self.shared.fail(error.clone());
                    return Err(error);
                }
            }
        }
        let completed = transition.phases_completed;
        let frontier = if completed > 0 {
            st.completed_through()
        } else {
            0
        };
        drop(st);
        self.shared
            .record_admitted_batch(first_phase, batch, admitted_at);
        // All-silent phases complete at admission (no worker will ever
        // touch them): publish that progress exactly as a worker would.
        self.shared.enqueue_all(&mut transition, None);
        self.shared.metrics.phases_started.fetch_add(batch, Relaxed);
        if completed > 0 {
            self.shared
                .metrics
                .phases_completed
                .fetch_add(completed, Relaxed);
            self.shared.note_retired(frontier, None);
            self.shared.notify_progress();
        }
        Ok(batch)
    }

    /// Captures every vertex's state ([`EngineCheckpoint`]) at the
    /// current retired phase boundary.
    ///
    /// Requires the engine to be idle (every admitted phase completed);
    /// errors otherwise — a mid-flight capture would not be a
    /// serializable cut. The global lock is held for the duration, so
    /// no phase can be admitted while state is read; at idle no worker
    /// holds a vertex lock, so acquiring them here cannot deadlock.
    pub fn checkpoint_vertices(&self) -> Result<EngineCheckpoint, EngineError> {
        let st = self.shared.state.lock();
        if let Some(msg) = &st.failed {
            return Err(EngineError::WorkerPanic(msg.clone()));
        }
        if st.completed_through() != st.pmax() {
            return Err(EngineError::Config(format!(
                "checkpoint requires an idle engine ({} of {} phases complete)",
                st.completed_through(),
                st.pmax()
            )));
        }
        let phase = st.completed_through();
        let mut vertices = Vec::with_capacity(self.shared.vertex_count());
        for slot in self.shared.vertex_slots() {
            vertices.push(slot.lock().checkpoint()?);
        }
        drop(st);
        vertices.sort_by_key(|v| v.vertex);
        Ok(EngineCheckpoint { phase, vertices })
    }

    /// Highest phase admitted so far.
    pub fn admitted(&self) -> u64 {
        self.shared.state.lock().pmax()
    }

    /// Marks a not-yet-admitted phase as carrying a sampled causal
    /// trace: its exec/retire spans bypass the recorder's 1-in-8
    /// sampling so the event's full chain lands in the flight recorder.
    pub fn mark_traced(&self, phase: u64) {
        self.shared.mark_traced(phase);
    }

    /// All phases up to and including this have completed.
    pub fn completed_through(&self) -> u64 {
        self.shared.state.lock().completed_through()
    }

    /// Blocks until every admitted phase has completed (or the engine
    /// fails).
    pub fn wait_idle(&self) -> Result<u64, EngineError> {
        let mut st = self.shared.state.lock();
        while st.failed.is_none() && st.completed_through() < st.pmax() {
            self.shared.wait_progress(&mut st);
        }
        if let Some(msg) = &st.failed {
            return Err(EngineError::WorkerPanic(msg.clone()));
        }
        Ok(st.completed_through())
    }

    /// Blocks until the completed frontier advances past `seen`, the
    /// timeout elapses, the engine starts shutting down, or it fails.
    /// Returns the current frontier; a delivery loop calls this with
    /// the last frontier it has drained.
    pub fn wait_progress_for(&self, seen: u64, timeout: Duration) -> Result<u64, EngineError> {
        let mut st = self.shared.state.lock();
        while st.failed.is_none() && st.completed_through() <= seen && !self.closing.load(Relaxed) {
            if self.shared.wait_progress_timeout(&mut st, timeout) {
                break;
            }
        }
        if let Some(msg) = &st.failed {
            return Err(EngineError::WorkerPanic(msg.clone()));
        }
        Ok(st.completed_through())
    }

    /// Wakes all blocked `admit` / `wait_*` callers (used by runtimes
    /// coordinating their own shutdown).
    pub fn wake_all(&self) {
        self.shared.progress.notify_all();
    }

    /// Drains the sink emissions of all **retired** phases (phase ≤
    /// completed frontier), in `(phase, vertex)` order — the serial
    /// order of the sequential oracle. Emissions of phases still in
    /// flight stay buffered.
    pub fn drain_retired_sinks(&self) -> Vec<SinkRecord> {
        let completed = self.shared.state.lock().completed_through();
        let mut guard = self.shared.live_sinks.lock();
        let Some(pending) = guard.as_mut() else {
            return Vec::new();
        };
        let mut rest = pending.split_off(&(completed + 1, ec_graph::VertexId(0)));
        std::mem::swap(pending, &mut rest);
        rest.into_iter()
            .map(|((phase, vertex), value)| SinkRecord {
                vertex,
                phase: Phase(phase),
                value,
            })
            .collect()
    }

    /// Waits for all admitted phases to complete, stops the workers and
    /// returns the run report (history since live start, if recording
    /// was enabled at build time).
    ///
    /// Idempotent: later calls return an empty report.
    pub fn shutdown(&self) -> Result<RunReport, EngineError> {
        // Bar new admissions FIRST, under the state lock: `admit`
        // checks `closing` and enqueues while holding that lock, so
        // after this block every phase is either fully admitted (and
        // covered by the wait below) or refused. Only then is it safe
        // to wait for quiescence and close the queue — the reverse
        // order would let a racing admit enqueue tasks into a closed
        // queue, which silently drops them and strands the phase.
        {
            let _st = self.shared.state.lock();
            self.closing.store(true, Relaxed);
        }
        self.shared.progress.notify_all(); // wake throttled admits
        let wait_result = self.wait_idle();
        self.shared.queue.close();
        let workers = self.workers.lock().take();
        let worker_panics = match workers {
            Some(pool) => pool.join(),
            None => Vec::new(), // pooled, or already shut down
        };
        // Detach from a shared pool only after the idle wait: every
        // admitted phase has been executed (or the engine failed), so
        // invalidating the tenant's remaining queued tasks is safe.
        drop(self.membership.lock().take());
        let completed = wait_result?;
        if !worker_panics.is_empty() {
            return Err(EngineError::WorkerPanic(worker_panics.join("; ")));
        }
        let history = {
            let mut guard = self.shared.history.lock();
            guard.as_mut().map(|h| {
                let mut taken = std::mem::replace(h, ExecutionHistory::new(h.vertex_count()));
                taken.finalize();
                taken
            })
        };
        Ok(RunReport {
            phases: completed,
            metrics: self.shared.metrics_snapshot(),
            history,
            trace: None,
        })
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        // Don't leave detached workers behind if the caller never shut
        // down cleanly (e.g. unwinding out of a test).
        self.closing.store(true, Relaxed);
        self.shared.progress.notify_all();
        self.shared.queue.close();
        if let Some(pool) = self.workers.lock().take() {
            let _ = pool.join();
        }
        // An unclean drop of a pooled engine is the "killed tenant"
        // case: release the slot so the pool discards whatever this
        // tenant still had queued (a later occupant of the slot must
        // never receive it) and keeps serving the other tenants.
        drop(self.membership.lock().take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, PassThrough, SourceModule};
    use crate::sequential::Sequential;
    use crate::Engine;
    use ec_events::sources::Counter;
    use ec_events::Value;
    use ec_graph::generators;

    fn chain_modules(len: usize) -> Vec<Box<dyn Module>> {
        let mut modules: Vec<Box<dyn Module>> = vec![Box::new(SourceModule::new(Counter::new()))];
        for _ in 1..len {
            modules.push(Box::new(PassThrough));
        }
        modules
    }

    fn live_chain(len: usize, threads: usize) -> LiveEngine {
        let dag = generators::chain(len);
        Engine::builder(dag, chain_modules(len))
            .threads(threads)
            .check_invariants(true)
            .build()
            .unwrap()
            .into_live()
    }

    #[test]
    fn admit_one_phase_at_a_time() {
        let live = live_chain(3, 2);
        for expect in 1..=5u64 {
            assert_eq!(live.admit().unwrap(), expect);
            assert_eq!(live.wait_idle().unwrap(), expect);
        }
        let report = live.shutdown().unwrap();
        assert_eq!(report.phases, 5);
        let history = report.history.unwrap();
        let sink = live.numbering().vertex_at(3);
        let vals: Vec<i64> = history
            .sink_outputs_of(sink)
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn burst_admission_matches_oracle() {
        let live = live_chain(4, 4);
        for _ in 0..20 {
            live.admit().unwrap();
        }
        let report = live.shutdown().unwrap();

        let dag = generators::chain(4);
        let mut seq = Sequential::new(&dag, chain_modules(4)).unwrap();
        seq.run(20).unwrap();
        assert_eq!(
            seq.into_history().equivalent(&report.history.unwrap()),
            Ok(())
        );
    }

    #[test]
    fn retired_sinks_arrive_in_serial_order() {
        let live = live_chain(2, 3);
        let mut seen: Vec<(u64, i64)> = Vec::new();
        for _ in 0..10 {
            live.admit().unwrap();
        }
        let mut frontier = 0;
        while frontier < 10 {
            frontier = live
                .wait_progress_for(frontier, Duration::from_millis(100))
                .unwrap();
            for r in live.drain_retired_sinks() {
                seen.push((r.phase.get(), r.value.as_i64().unwrap()));
            }
        }
        assert_eq!(seen, (1..=10).map(|p| (p, p as i64)).collect::<Vec<_>>());
        // Nothing left after everything retired.
        assert!(live.drain_retired_sinks().is_empty());
        live.shutdown().unwrap();
    }

    #[test]
    fn inflight_sinks_stay_buffered() {
        // A 2-vertex chain where the sink blocks phase 1 until released:
        // phases 2 and 3 cannot retire before phase 1, so their sink
        // outputs must not be drained early.
        use crate::module::{Emission, ExecCtx, FnModule};
        use std::sync::mpsc;

        let dag = generators::chain(2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let gate = std::sync::Mutex::new(release_rx);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("gated-sink", move |ctx: ExecCtx<'_>| {
                if ctx.phase == Phase(1) {
                    gate.lock().unwrap().recv().unwrap();
                }
                match ctx.inputs.fresh.last() {
                    Some((_, v)) => Emission::Broadcast(v.clone()),
                    None => Emission::Silent,
                }
            })),
        ];
        let live = Engine::builder(dag, modules)
            .threads(2)
            .build()
            .unwrap()
            .into_live();
        for _ in 0..3 {
            live.admit().unwrap();
        }
        // Give workers a moment; nothing may retire while phase 1 blocks.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(live.completed_through(), 0);
        assert!(live.drain_retired_sinks().is_empty());
        release_tx.send(()).unwrap();
        live.wait_idle().unwrap();
        let drained = live.drain_retired_sinks();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].phase < w[1].phase));
        live.shutdown().unwrap();
    }

    #[test]
    fn throttle_bounds_inflight() {
        use crate::module::{Emission, ExecCtx, FnModule};
        use std::sync::mpsc;

        let dag = generators::chain(2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let gate = std::sync::Mutex::new(release_rx);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("slow-sink", move |_ctx: ExecCtx<'_>| {
                gate.lock().unwrap().recv().unwrap();
                Emission::Broadcast(Value::Unit)
            })),
        ];
        let live = Engine::builder(dag, modules)
            .threads(1)
            .max_inflight(2)
            .build()
            .unwrap()
            .into_live();
        live.admit().unwrap();
        live.admit().unwrap();
        // Third admit must block on the throttle; release from a helper.
        let started = std::time::Instant::now();
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            for _ in 0..3 {
                release_tx.send(()).unwrap();
            }
        });
        live.admit().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(40),
            "admit returned before the throttle released"
        );
        releaser.join().unwrap();
        live.wait_idle().unwrap();
        live.shutdown().unwrap();
    }

    #[test]
    fn module_failure_surfaces_through_admit_or_wait() {
        use crate::module::{Emission, ExecCtx, FnModule};
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("bomb", |ctx: ExecCtx<'_>| {
                if ctx.phase == Phase(2) {
                    panic!("live failure");
                }
                Emission::Silent
            })),
        ];
        let live = Engine::builder(dag, modules)
            .threads(2)
            .build()
            .unwrap()
            .into_live();
        live.admit().unwrap();
        live.admit().unwrap();
        let err = live.wait_idle().unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanic(msg) if msg.contains("live failure")));
        assert!(live.shutdown().is_err());
    }

    #[test]
    fn shutdown_then_admit_errors() {
        let live = live_chain(2, 1);
        live.admit().unwrap();
        live.shutdown().unwrap();
        assert!(live.admit().is_err());
    }

    #[test]
    fn admit_batch_matches_oracle() {
        let live = live_chain(4, 4);
        let mut remaining = 20u64;
        while remaining > 0 {
            remaining -= live.admit_batch(remaining).unwrap();
        }
        assert_eq!(live.admitted(), 20);
        let report = live.shutdown().unwrap();

        let dag = generators::chain(4);
        let mut seq = Sequential::new(&dag, chain_modules(4)).unwrap();
        seq.run(20).unwrap();
        assert_eq!(
            seq.into_history().equivalent(&report.history.unwrap()),
            Ok(())
        );
    }

    #[test]
    fn admit_batch_respects_inflight_headroom() {
        // max_inflight = 3: a batch of 10 admits at most 3 at once.
        let dag = generators::chain(2);
        let live = Engine::builder(dag, chain_modules(2))
            .threads(2)
            .max_inflight(3)
            .build()
            .unwrap()
            .into_live();
        let first = live.admit_batch(10).unwrap();
        assert!((1..=3).contains(&first), "batch of {first}");
        live.wait_idle().unwrap();
        live.shutdown().unwrap();
    }

    #[test]
    fn admit_batch_sparse_skips_silent_sources() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// Counts its polls — executions are exactly polls for sources.
        struct CountingSource(Arc<AtomicU64>, i64);
        impl ec_events::EventSource for CountingSource {
            fn poll(&mut self, _phase: Phase) -> Option<Value> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Some(Value::Int(self.1))
            }
            fn kind(&self) -> &'static str {
                "counting"
            }
        }

        // Two sources; source B is declared silent on odd offsets. Its
        // module must only be polled on even ones.
        let polls_a = Arc::new(AtomicU64::new(0));
        let polls_b = Arc::new(AtomicU64::new(0));
        let dag = {
            let mut d = ec_graph::Dag::new();
            let a = d.add_vertex("a");
            let b = d.add_vertex("b");
            let sink = d.add_vertex("sink");
            d.add_edge(a, sink).unwrap();
            d.add_edge(b, sink).unwrap();
            d
        };
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(CountingSource(Arc::clone(&polls_a), 1))),
            Box::new(SourceModule::new(CountingSource(Arc::clone(&polls_b), 2))),
            Box::new(PassThrough),
        ];
        let live = Engine::builder(dag, modules)
            .threads(2)
            .check_invariants(true)
            .build()
            .unwrap()
            .into_live();
        let b_vertex = live.numbering().vertex_at(2);
        let started = live
            .admit_batch_sparse(6, |offset, vertex| vertex == b_vertex && offset % 2 == 1)
            .unwrap();
        assert_eq!(started, 6);
        live.wait_idle().unwrap();
        live.shutdown().unwrap();
        assert_eq!(polls_a.load(Ordering::Relaxed), 6);
        assert_eq!(polls_b.load(Ordering::Relaxed), 3, "silent phases polled");
    }

    #[test]
    fn all_silent_phases_complete_without_executions() {
        let live = live_chain(3, 2);
        // Every source silent in every phase: nothing is scheduled, yet
        // the phases are admitted, complete immediately, and ordinary
        // phases continue after them with numbering intact.
        let started = live.admit_batch_sparse(4, |_, _| true).unwrap();
        assert_eq!(started, 4);
        assert_eq!(live.wait_idle().unwrap(), 4);
        assert_eq!(live.completed_through(), 4);
        assert_eq!(live.admit().unwrap(), 5);
        live.wait_idle().unwrap();
        let report = live.shutdown().unwrap();
        assert_eq!(report.phases, 5);
        // The dense phase executed the whole chain; the silent ones
        // executed nothing.
        assert_eq!(report.metrics.executions, 3);
    }

    #[test]
    fn sparse_and_dense_admission_interleave_with_inflight_predecessors() {
        use crate::module::{Emission, ExecCtx, FnModule};
        use std::sync::mpsc;

        // Phase 1 blocks in the sink; an all-silent phase 2 and a dense
        // phase 3 are admitted behind it. Nothing may complete until
        // phase 1 releases; then all three must retire in order.
        let dag = generators::chain(2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let gate = std::sync::Mutex::new(release_rx);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("gated", move |ctx: ExecCtx<'_>| {
                if ctx.phase == Phase(1) {
                    gate.lock().unwrap().recv().unwrap();
                }
                Emission::Silent
            })),
        ];
        let live = Engine::builder(dag, modules)
            .threads(2)
            .check_invariants(true)
            .build()
            .unwrap()
            .into_live();
        live.admit().unwrap();
        live.admit_batch_sparse(1, |_, _| true).unwrap();
        live.admit().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(live.completed_through(), 0, "silent phase retired early");
        release_tx.send(()).unwrap();
        assert_eq!(live.wait_idle().unwrap(), 3);
        live.shutdown().unwrap();
    }

    #[test]
    fn admit_batch_zero_is_noop() {
        let live = live_chain(2, 1);
        assert_eq!(live.admit_batch(0).unwrap(), 0);
        live.shutdown().unwrap();
    }

    #[test]
    fn checkpoint_restore_resumes_exactly() {
        // Run 5 phases live, checkpoint, rebuild a fresh engine from the
        // checkpoint, run 5 more — the continuation must match phases
        // 6..=10 of an uninterrupted run.
        let live = live_chain(3, 2);
        for _ in 0..5 {
            live.admit().unwrap();
        }
        live.wait_idle().unwrap();
        let chk = live.checkpoint_vertices().unwrap();
        assert_eq!(chk.phase, 5);
        live.shutdown().unwrap();

        // Round-trip through bytes, as ec-store will.
        let chk = EngineCheckpoint::decode(&chk.encode()).unwrap();

        let dag = generators::chain(3);
        let resumed = Engine::builder(dag, chain_modules(3))
            .threads(2)
            .resume_from(chk.phase)
            .build()
            .unwrap();
        resumed.restore_checkpoint(&chk).unwrap();
        let resumed = resumed.into_live();
        for _ in 0..5 {
            resumed.admit().unwrap();
        }
        let report = resumed.shutdown().unwrap();
        assert_eq!(report.phases, 10); // completed_through continues
        let history = report.history.unwrap();
        let sink = resumed.numbering().vertex_at(3);
        let outs: Vec<(u64, i64)> = history
            .sink_outputs_of(sink)
            .iter()
            .map(|(p, v)| (p.get(), v.as_i64().unwrap()))
            .collect();
        // Counter state (5) restored; phases continue at 6.
        assert_eq!(outs, (6..=10).map(|p| (p, p as i64)).collect::<Vec<_>>());
    }

    #[test]
    fn checkpoint_requires_idle() {
        use crate::module::{Emission, ExecCtx, FnModule};
        use std::sync::mpsc;

        let dag = generators::chain(2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let gate = std::sync::Mutex::new(release_rx);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("slow", move |_ctx: ExecCtx<'_>| {
                gate.lock().unwrap().recv().unwrap();
                Emission::Silent
            })),
        ];
        let live = Engine::builder(dag, modules)
            .threads(1)
            .build()
            .unwrap()
            .into_live();
        live.admit().unwrap();
        let err = live.checkpoint_vertices().unwrap_err();
        assert!(matches!(err, EngineError::Config(msg) if msg.contains("idle")));
        release_tx.send(()).unwrap();
        live.wait_idle().unwrap();
        live.shutdown().unwrap();
    }

    #[test]
    fn checkpoint_rejects_unsupported_modules() {
        use crate::module::{Emission, ExecCtx, FnModule};
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            // FnModule closures may capture arbitrary state: no default
            // snapshot support.
            Box::new(FnModule::new("opaque", |_ctx: ExecCtx<'_>| {
                Emission::Silent
            })),
        ];
        let live = Engine::builder(dag, modules)
            .threads(1)
            .build()
            .unwrap()
            .into_live();
        let err = live.checkpoint_vertices().unwrap_err();
        assert!(
            matches!(err, EngineError::Config(msg) if msg.contains("opaque")),
            "error should name the offending module"
        );
        live.shutdown().unwrap();
    }

    #[test]
    fn restore_rejects_duplicate_vertex_states() {
        let live = live_chain(3, 1);
        live.admit().unwrap();
        live.wait_idle().unwrap();
        let mut chk = live.checkpoint_vertices().unwrap();
        live.shutdown().unwrap();

        // Duplicate one entry in place of another: same length, all
        // indices valid — only the uniqueness check can catch it.
        chk.vertices[2] = chk.vertices[1].clone();
        let dag = generators::chain(3);
        let resumed = Engine::builder(dag, chain_modules(3)).build().unwrap();
        let err = resumed.restore_checkpoint(&chk).unwrap_err();
        assert!(matches!(err, EngineError::Config(msg) if msg.contains("twice")));
    }

    #[test]
    fn restore_rejects_mismatched_graph() {
        let live = live_chain(3, 1);
        live.admit().unwrap();
        live.wait_idle().unwrap();
        let chk = live.checkpoint_vertices().unwrap();
        live.shutdown().unwrap();

        let dag = generators::chain(2); // wrong shape
        let resumed = Engine::builder(dag, chain_modules(2)).build().unwrap();
        assert!(resumed.restore_checkpoint(&chk).is_err());
    }
}
