//! Computational modules — the code that runs at each vertex.
//!
//! A module is the paper's "computational unit" (§1): a model such as a
//! regression, a simulation, or a simple predicate. Modules are executed
//! once per vertex-phase pair that has at least one waiting message
//! (§3.1.2) and communicate *changes*: returning [`Emission::Silent`]
//! sends nothing, and that absence of messages itself tells downstream
//! modules that this vertex's outputs are unchanged — the paper's central
//! efficiency idea.

use ec_events::{
    EventSource, Phase, SnapshotError, StateReader, StateSnapshot, StateWriter, Value,
};
use ec_graph::VertexId;

/// What a module emits after executing one phase.
#[derive(Debug, Clone, PartialEq)]
pub enum Emission {
    /// Nothing changed; no messages are sent. Downstream vertices will
    /// use previous values for this input (§3.1.2).
    Silent,
    /// Send `Value` to every successor. At a sink vertex (no successors)
    /// the value is recorded as external output instead.
    Broadcast(Value),
    /// Send specific values to specific successors. Targets that are not
    /// successors of the emitting vertex are reported as errors by the
    /// executors.
    Targeted(Vec<(VertexId, Value)>),
}

impl Emission {
    /// True if nothing is emitted.
    pub fn is_silent(&self) -> bool {
        matches!(self, Emission::Silent) || matches!(self, Emission::Targeted(t) if t.is_empty())
    }
}

/// Read access to a vertex's input edges during execution.
///
/// `fresh` holds the messages received *for this phase* (sorted by
/// producer schedule index, so execution is deterministic regardless of
/// which worker finished first); `current` additionally folds in values
/// remembered from earlier phases, implementing the paper's "using
/// previous values for any inputs it has not received for phase p".
pub struct InputView<'a> {
    /// Predecessors of the executing vertex, in edge order.
    pub preds: &'a [VertexId],
    /// Latest value per predecessor (same order as `preds`), including
    /// this phase's fresh messages.
    pub latest: &'a [Option<Value>],
    /// Messages received for this phase: `(producer, value)`, sorted by
    /// the producer's schedule index.
    pub fresh: &'a [(VertexId, Value)],
}

impl<'a> InputView<'a> {
    /// Latest value on the edge from `pred`, if any value has ever
    /// arrived on it.
    pub fn current(&self, pred: VertexId) -> Option<&Value> {
        let i = self.preds.iter().position(|&p| p == pred)?;
        self.latest[i].as_ref()
    }

    /// Latest value on the `i`-th input edge.
    pub fn current_at(&self, i: usize) -> Option<&Value> {
        self.latest.get(i)?.as_ref()
    }

    /// The fresh message from `pred` this phase, if it sent one.
    pub fn fresh_from(&self, pred: VertexId) -> Option<&Value> {
        self.fresh.iter().find(|(p, _)| *p == pred).map(|(_, v)| v)
    }

    /// True if `pred` sent a message this phase.
    pub fn changed(&self, pred: VertexId) -> bool {
        self.fresh.iter().any(|(p, _)| *p == pred)
    }

    /// Number of input edges.
    pub fn arity(&self) -> usize {
        self.preds.len()
    }
}

/// Everything a module sees when executing one phase.
pub struct ExecCtx<'a> {
    /// The phase being executed.
    pub phase: Phase,
    /// The vertex this module is installed at.
    pub vertex: VertexId,
    /// Input access (empty for source vertices).
    pub inputs: InputView<'a>,
    /// True at source vertices, which are driven by phase signals rather
    /// than messages (§3.1.2).
    pub is_source: bool,
}

/// A computational unit installed at a vertex.
///
/// Modules are owned exclusively by their vertex: the scheduler
/// guarantees at most one phase of a given vertex executes at a time and
/// that phases execute in order, so `&mut self` is safe and modules can
/// keep arbitrary internal state (windows, model parameters, …).
///
/// Determinism contract: for oracle comparisons (parallel ≡ sequential)
/// a module must be a deterministic function of its internal state and
/// its per-phase inputs. Seeded randomness is fine; wall-clock time or
/// global shared state is not.
pub trait Module: Send {
    /// Executes one phase and reports what (if anything) changed.
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission;

    /// Human-readable module name for diagnostics.
    fn name(&self) -> &str {
        "module"
    }

    /// Serializes the module's internal state for checkpointing.
    ///
    /// Called only at a retired phase boundary (no execution of this
    /// module is concurrent or pending). The default is
    /// [`StateSnapshot::Unsupported`], which makes checkpoint creation
    /// fail loudly — a stateful module that silently restored empty
    /// state would break the serializability-across-restarts guarantee.
    /// Return [`StateSnapshot::Stateless`] from modules with nothing to
    /// save.
    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot::Unsupported
    }

    /// Restores state captured by
    /// [`snapshot_state`](Module::snapshot_state). Never called for
    /// [`StateSnapshot::Stateless`] modules.
    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), SnapshotError> {
        Err(SnapshotError::new(format!(
            "module {:?} does not support state restore",
            self.name()
        )))
    }
}

impl Module for Box<dyn Module> {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        (**self).execute(ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn snapshot_state(&self) -> StateSnapshot {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        (**self).restore_state(bytes)
    }
}

/// A source module wrapping an [`EventSource`] generator.
///
/// Each phase signal polls the generator once; `None` from the generator
/// becomes [`Emission::Silent`].
pub struct SourceModule {
    source: Box<dyn EventSource>,
}

impl SourceModule {
    /// Wraps a generator.
    pub fn new(source: impl EventSource + 'static) -> Self {
        SourceModule {
            source: Box::new(source),
        }
    }

    /// Wraps a boxed generator.
    pub fn from_box(source: Box<dyn EventSource>) -> Self {
        SourceModule { source }
    }
}

impl Module for SourceModule {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        match self.source.poll(ctx.phase) {
            Some(v) => Emission::Broadcast(v),
            None => Emission::Silent,
        }
    }

    fn name(&self) -> &str {
        "source"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        self.source.snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.source.restore_state(bytes)
    }
}

/// A stateless module defined by a closure over the execution context.
pub struct FnModule<F> {
    name: String,
    f: F,
}

impl<F> FnModule<F>
where
    F: FnMut(ExecCtx<'_>) -> Emission + Send,
{
    /// Wraps `f` as a module.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnModule {
            name: name.into(),
            f,
        }
    }
}

impl<F> Module for FnModule<F>
where
    F: FnMut(ExecCtx<'_>) -> Emission + Send,
{
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Forwards every fresh input onward: broadcasts the most recent fresh
/// value. Useful as a relay/identity vertex in tests and benchmarks.
#[derive(Debug, Default)]
pub struct PassThrough;

impl Module for PassThrough {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        match ctx.inputs.fresh.last() {
            Some((_, v)) => Emission::Broadcast(v.clone()),
            None => Emission::Silent,
        }
    }

    fn name(&self) -> &str {
        "pass-through"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot::Stateless
    }

    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), SnapshotError> {
        Ok(())
    }
}

/// Sums the latest values of all inputs and broadcasts the sum whenever
/// any input changed. A minimal "fusion" vertex used widely in tests.
#[derive(Debug, Default)]
pub struct SumModule;

impl Module for SumModule {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        if ctx.inputs.fresh.is_empty() {
            return Emission::Silent;
        }
        let sum: f64 = ctx
            .inputs
            .latest
            .iter()
            .flatten()
            .filter_map(|v| v.as_f64())
            .sum();
        Emission::Broadcast(Value::Float(sum))
    }

    fn name(&self) -> &str {
        "sum"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot::Stateless
    }

    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), SnapshotError> {
        Ok(())
    }
}

/// Spins for a configurable amount of synthetic work before delegating
/// to an inner module. Used by the benchmark harness to model vertices
/// whose computation dominates bookkeeping (§4's prediction).
pub struct Workload<M> {
    inner: M,
    spin_iters: u64,
}

impl<M: Module> Workload<M> {
    /// Adds `spin_iters` iterations of synthetic floating-point work
    /// before each execution of `inner`.
    pub fn new(inner: M, spin_iters: u64) -> Self {
        Workload { inner, spin_iters }
    }
}

impl<M: Module> Module for Workload<M> {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        let mut acc = 1.000000001f64;
        for i in 0..self.spin_iters {
            acc = acc.mul_add(1.000000001, (i & 7) as f64 * 1e-12);
        }
        std::hint::black_box(acc);
        self.inner.execute(ctx)
    }

    fn name(&self) -> &str {
        "workload"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        self.inner.snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.restore_state(bytes)
    }
}

/// Wraps a module so it emits *every* phase, forwarding the previous
/// emission when the inner module is silent.
///
/// This converts the Δ-dataflow "option 2" module (emit only on change)
/// into the paper's "option 1" module (one output per input), and is the
/// mechanism behind the dense baseline of experiment E5: run the same
/// graph with every module wrapped in `AlwaysEmit` and the engine
/// degenerates into the obvious everything-every-phase solution the
/// paper argues against (§3.1).
pub struct AlwaysEmit<M> {
    inner: M,
    last: Option<Value>,
}

impl<M: Module> AlwaysEmit<M> {
    /// Wraps `inner`; until `inner` first emits, a `Value::Unit`
    /// placeholder is broadcast so every edge carries a message every
    /// phase.
    pub fn new(inner: M) -> Self {
        AlwaysEmit { inner, last: None }
    }
}

impl<M: Module> Module for AlwaysEmit<M> {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        match self.inner.execute(ctx) {
            Emission::Broadcast(v) => {
                self.last = Some(v.clone());
                Emission::Broadcast(v)
            }
            Emission::Targeted(t) => {
                // Keep the last broadcast-equivalent value for silence
                // replay: remember the first target's value.
                if let Some((_, v)) = t.first() {
                    self.last = Some(v.clone());
                }
                Emission::Targeted(t)
            }
            Emission::Silent => {
                let v = self.last.clone().unwrap_or(Value::Unit);
                Emission::Broadcast(v)
            }
        }
    }

    fn name(&self) -> &str {
        "always-emit"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let inner = match self.inner.snapshot_state() {
            StateSnapshot::Unsupported => return StateSnapshot::Unsupported,
            inner => inner,
        };
        let mut w = StateWriter::new();
        w.put_opt_value(&self.last);
        match inner {
            StateSnapshot::Stateless => w.put_u8(0),
            StateSnapshot::Bytes(b) => {
                w.put_u8(1);
                w.put_bytes(&b);
            }
            StateSnapshot::Unsupported => unreachable!("returned above"),
        }
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        self.last = r.get_opt_value()?;
        match r.get_u8()? {
            0 => {}
            1 => {
                let inner = r.get_bytes()?;
                self.inner.restore_state(&inner)?;
            }
            other => return Err(SnapshotError::new(format!("bad inner tag {other}"))),
        }
        r.finish()
    }
}

/// A sink module that retains every value it receives; the engine also
/// records sink broadcasts in the run's [`crate::history::SinkRecord`] history; this
/// module makes ad-hoc inspection easy in examples.
#[derive(Debug, Default)]
pub struct CollectSink {
    seen: Vec<(Phase, Value)>,
}

impl CollectSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Values received so far (phase-ordered, since the scheduler
    /// executes each vertex's phases in order).
    pub fn seen(&self) -> &[(Phase, Value)] {
        &self.seen
    }
}

impl Module for CollectSink {
    fn execute(&mut self, ctx: ExecCtx<'_>) -> Emission {
        for (_, v) in ctx.inputs.fresh {
            self.seen.push((ctx.phase, v.clone()));
        }
        // Re-broadcast the last fresh value so the engine records it in
        // the sink history.
        match ctx.inputs.fresh.last() {
            Some((_, v)) => Emission::Broadcast(v.clone()),
            None => Emission::Silent,
        }
    }

    fn name(&self) -> &str {
        "collect-sink"
    }

    fn snapshot_state(&self) -> StateSnapshot {
        let mut w = StateWriter::new();
        w.put_u32(self.seen.len() as u32);
        for (phase, value) in &self.seen {
            w.put_u64(phase.get());
            w.put_value(value);
        }
        StateSnapshot::from_writer(w)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        let n = r.get_u32()? as usize;
        let mut seen = Vec::with_capacity(n);
        for _ in 0..n {
            let phase = Phase(r.get_u64()?);
            seen.push((phase, r.get_value()?));
        }
        r.finish()?;
        self.seen = seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_events::sources::Counter;

    fn ctx_with<'a>(
        phase: Phase,
        preds: &'a [VertexId],
        latest: &'a [Option<Value>],
        fresh: &'a [(VertexId, Value)],
    ) -> ExecCtx<'a> {
        ExecCtx {
            phase,
            vertex: VertexId(99),
            inputs: InputView {
                preds,
                latest,
                fresh,
            },
            is_source: preds.is_empty(),
        }
    }

    #[test]
    fn emission_silence() {
        assert!(Emission::Silent.is_silent());
        assert!(Emission::Targeted(vec![]).is_silent());
        assert!(!Emission::Broadcast(Value::Unit).is_silent());
    }

    #[test]
    fn input_view_lookups() {
        let preds = [VertexId(1), VertexId(2)];
        let latest = [Some(Value::Int(10)), None];
        let fresh = [(VertexId(1), Value::Int(10))];
        let view = InputView {
            preds: &preds,
            latest: &latest,
            fresh: &fresh,
        };
        assert_eq!(view.current(VertexId(1)), Some(&Value::Int(10)));
        assert_eq!(view.current(VertexId(2)), None);
        assert_eq!(view.current(VertexId(3)), None);
        assert_eq!(view.current_at(0), Some(&Value::Int(10)));
        assert_eq!(view.fresh_from(VertexId(1)), Some(&Value::Int(10)));
        assert_eq!(view.fresh_from(VertexId(2)), None);
        assert!(view.changed(VertexId(1)));
        assert!(!view.changed(VertexId(2)));
        assert_eq!(view.arity(), 2);
    }

    #[test]
    fn source_module_polls_generator() {
        let mut m = SourceModule::new(Counter::new());
        let c = ctx_with(Phase(1), &[], &[], &[]);
        assert_eq!(m.execute(c), Emission::Broadcast(Value::Int(1)));
        let c = ctx_with(Phase(2), &[], &[], &[]);
        assert_eq!(m.execute(c), Emission::Broadcast(Value::Int(2)));
        assert_eq!(m.name(), "source");
    }

    #[test]
    fn pass_through_forwards_last_fresh() {
        let mut m = PassThrough;
        let preds = [VertexId(1)];
        let latest = [Some(Value::Int(7))];
        let fresh = [(VertexId(1), Value::Int(7))];
        assert_eq!(
            m.execute(ctx_with(Phase(1), &preds, &latest, &fresh)),
            Emission::Broadcast(Value::Int(7))
        );
        assert_eq!(
            m.execute(ctx_with(Phase(2), &preds, &latest, &[])),
            Emission::Silent
        );
    }

    #[test]
    fn sum_module_uses_latest_values() {
        let mut m = SumModule;
        let preds = [VertexId(1), VertexId(2)];
        // Input 2 remembered from an earlier phase; input 1 fresh.
        let latest = [Some(Value::Float(1.5)), Some(Value::Float(2.5))];
        let fresh = [(VertexId(1), Value::Float(1.5))];
        assert_eq!(
            m.execute(ctx_with(Phase(3), &preds, &latest, &fresh)),
            Emission::Broadcast(Value::Float(4.0))
        );
        // No fresh input → silent, even though latest values exist.
        assert_eq!(
            m.execute(ctx_with(Phase(4), &preds, &latest, &[])),
            Emission::Silent
        );
    }

    #[test]
    fn always_emit_replays_last_value() {
        let mut m = AlwaysEmit::new(PassThrough);
        let preds = [VertexId(1)];
        let latest = [Some(Value::Int(3))];
        let fresh = [(VertexId(1), Value::Int(3))];
        assert_eq!(
            m.execute(ctx_with(Phase(1), &preds, &latest, &fresh)),
            Emission::Broadcast(Value::Int(3))
        );
        // Inner module is silent, wrapper repeats the last value.
        assert_eq!(
            m.execute(ctx_with(Phase(2), &preds, &latest, &[])),
            Emission::Broadcast(Value::Int(3))
        );
    }

    #[test]
    fn always_emit_before_any_value() {
        let mut m = AlwaysEmit::new(PassThrough);
        let preds = [VertexId(1)];
        let latest = [None];
        assert_eq!(
            m.execute(ctx_with(Phase(1), &preds, &latest, &[])),
            Emission::Broadcast(Value::Unit)
        );
    }

    #[test]
    fn fn_module_runs_closure() {
        let mut m = FnModule::new("double", |ctx: ExecCtx<'_>| {
            match ctx.inputs.fresh.first() {
                Some((_, v)) => Emission::Broadcast(Value::Float(v.as_f64().unwrap() * 2.0)),
                None => Emission::Silent,
            }
        });
        let preds = [VertexId(1)];
        let latest = [Some(Value::Float(2.0))];
        let fresh = [(VertexId(1), Value::Float(2.0))];
        assert_eq!(
            m.execute(ctx_with(Phase(1), &preds, &latest, &fresh)),
            Emission::Broadcast(Value::Float(4.0))
        );
        assert_eq!(m.name(), "double");
    }

    #[test]
    fn workload_delegates() {
        let mut m = Workload::new(PassThrough, 100);
        let preds = [VertexId(1)];
        let latest = [Some(Value::Int(1))];
        let fresh = [(VertexId(1), Value::Int(1))];
        assert_eq!(
            m.execute(ctx_with(Phase(1), &preds, &latest, &fresh)),
            Emission::Broadcast(Value::Int(1))
        );
    }

    #[test]
    fn collect_sink_records() {
        let mut m = CollectSink::new();
        let preds = [VertexId(1)];
        let latest = [Some(Value::Int(5))];
        let fresh = [(VertexId(1), Value::Int(5))];
        m.execute(ctx_with(Phase(1), &preds, &latest, &fresh));
        m.execute(ctx_with(Phase(2), &preds, &latest, &[]));
        assert_eq!(m.seen(), &[(Phase(1), Value::Int(5))]);
    }
}
