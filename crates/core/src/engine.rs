//! The parallel engine: computation processes and the environment
//! process of §3.2, Listings 1 and 2.
//!
//! The engine runs `k` computation threads (Listing 1) plus one
//! environment thread (Listing 2) against the shared scheduler state
//! under a single global lock, exactly as the paper prescribes — "a lock
//! is used to guarantee that each thread has exclusive access to the
//! data structures while updating them". Module execution itself happens
//! *outside* the lock (statement 1.3 precedes statement 1.4), which is
//! what makes the speedup of §4 possible: while one worker updates the
//! sets, others are inside their modules.
//!
//! Differences from the listings, all behaviour-preserving:
//!
//! * The environment starts a bounded number of phases and then stops,
//!   instead of looping forever; the run ends when the last phase
//!   completes. The paper's environment "sleeps for some amount of
//!   time" between phases — ours optionally sleeps
//!   ([`EngineBuilder::env_delay`]) and additionally throttles on a
//!   maximum number of in-flight phases so memory stays bounded.
//! * A pair's waiting messages are physically attached to its run-queue
//!   task at ready-promotion time (they are complete by then — see
//!   `SchedState::try_promote`), so workers do not need to reacquire the
//!   lock to read inputs before executing.
//! * Module panics are caught and turn the run into an error instead of
//!   a hang.

use crate::checkpoint::EngineCheckpoint;
use crate::error::EngineError;
use crate::history::{ExecutionHistory, RecordedEmission};
use crate::metrics::{LatencyStats, Metrics, MetricsSnapshot, PhaseGauge, SchedulerCounters};
use crate::module::Module;
use crate::multi::{EnginePool, EngineQueue, PoolMembership};
use crate::pool::{payload_to_string, WorkerPool};
use crate::shard::Dequeued;
use crate::state::{Idx, SchedState, Task, Transition};
use crate::trace::Trace;
use crate::vertex::{route_emission, RoutedEmission, VertexSlot};
use ec_events::{Phase, Value};
use ec_graph::{Dag, Numbering, VertexId};
use ec_obs::{FlightRecorder, HistogramBank, SpanKind};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Exec ring spans are sampled 1-in-(mask+1) per (phase, vertex); the
/// exec histograms stay exact regardless. A ring write per vertex
/// execution is the recorder's dominant cost at full throughput.
const EXEC_SAMPLE_MASK: u64 = 7;

/// Configuration for [`Engine`] construction.
pub struct EngineBuilder {
    dag: Dag,
    modules: Vec<Box<dyn Module>>,
    threads: usize,
    max_inflight: u64,
    env_delay: Option<Duration>,
    record_history: bool,
    trace: bool,
    check_invariants: bool,
    resume_from: u64,
    pool: Option<EnginePool>,
    pool_weight: u32,
    recorder: Option<Arc<FlightRecorder>>,
}

impl EngineBuilder {
    /// Starts a builder for `dag` with one module per vertex
    /// (`modules[v.index()]` runs at vertex `v`).
    pub fn new(dag: Dag, modules: Vec<Box<dyn Module>>) -> Self {
        EngineBuilder {
            dag,
            modules,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            max_inflight: 64,
            env_delay: None,
            record_history: true,
            trace: false,
            check_invariants: false,
            resume_from: 0,
            pool: None,
            pool_weight: 1,
            recorder: None,
        }
    }

    /// Number of computation threads (the paper's `k`). The environment
    /// process always runs on one additional thread, as in §4.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Maximum number of started-but-incomplete phases before the
    /// environment throttles. Bounds scheduler memory.
    pub fn max_inflight(mut self, phases: u64) -> Self {
        self.max_inflight = phases.max(1);
        self
    }

    /// Optional sleep between phase starts (Listing 2, statement 2.22).
    pub fn env_delay(mut self, delay: Duration) -> Self {
        self.env_delay = Some(delay);
        self
    }

    /// Record the full execution history (on by default; turn off for
    /// benchmarks).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Record Figure-3-style set-membership traces.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Re-derive and check every scheduler invariant after each
    /// transition (slow; for tests).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Resumes phase numbering after `phase`: the first phase this
    /// engine starts is `phase + 1`, as if phases `1..=phase` had
    /// completed in a previous process. Used by checkpoint/restore
    /// (`ec-store`) together with [`Engine::restore_checkpoint`].
    pub fn resume_from(mut self, phase: u64) -> Self {
        self.resume_from = phase;
        self
    }

    /// Attaches the engine to a shared [`EnginePool`] instead of giving
    /// it private workers: [`build`](Self::build) reserves a tenant
    /// slot, and [`Engine::into_live`] registers with the pool.
    ///
    /// A pooled engine must be driven through the live API; the batch
    /// [`Engine::run`] refuses (it owns a private worker lifecycle).
    /// [`threads`](Self::threads) is ignored — the pool's worker count
    /// applies — while [`max_inflight`](Self::max_inflight) becomes the
    /// tenant's in-flight cap, bounding how much of the shared pool
    /// this engine can occupy.
    pub fn pooled(mut self, pool: &EnginePool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    /// With [`pooled`](Self::pooled): this tenant's weighted-round-robin
    /// admission weight (default 1). A weight-`w` tenant receives
    /// roughly `w` times the admission bandwidth of a weight-1 tenant
    /// when both are backlogged.
    pub fn pool_weight(mut self, weight: u32) -> Self {
        self.pool_weight = weight.max(1);
        self
    }

    /// Attaches a flight recorder: workers and the admission path emit
    /// span events (exec, phase admitted/retired, steal/park/wake) into
    /// its per-lane rings. Lane 0 is the control plane; worker `w`
    /// records into lane `w + 1`. Off by default — recording costs one
    /// `Instant` read plus one ring write per event, and the
    /// high-volume kinds (exec, phase retired) are sampled 1-in-8 so
    /// the recorder stays cheap enough to leave on; histograms and
    /// metrics counters see every event regardless.
    pub fn flight_recorder(mut self, recorder: &Arc<FlightRecorder>) -> Self {
        self.recorder = Some(Arc::clone(recorder));
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Result<Engine, EngineError> {
        let numbering = Numbering::compute(&self.dag);
        debug_assert!(numbering.verify(&self.dag).is_ok());
        let slots = VertexSlot::build(&self.dag, &numbering, self.modules)?;
        let n = slots.len();

        // Successors in schedule-index space, indexed by idx - 1.
        let succs_idx: Vec<Vec<Idx>> = numbering
            .schedule_order()
            .map(|v| {
                let mut s: Vec<Idx> = self
                    .dag
                    .succs(v)
                    .iter()
                    .map(|&w| numbering.index_of(w))
                    .collect();
                s.sort_unstable();
                s
            })
            .collect();

        let mut state = SchedState::new(numbering.m_table());
        if self.resume_from > 0 {
            state.resume_from(self.resume_from);
        }
        if self.trace {
            state.enable_trace();
        }

        let (queue, membership) = match &self.pool {
            Some(pool) => {
                let (queue, membership) = pool.join_pool()?;
                membership.set_weight(self.pool_weight);
                (queue, Some(membership))
            }
            None => (EngineQueue::own(self.threads), None),
        };
        let threads = membership
            .as_ref()
            .map(|m| m.threads())
            .unwrap_or(self.threads);
        if let Some(recorder) = &self.recorder {
            queue.set_recorder(recorder);
        }

        Ok(Engine {
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                progress: Condvar::new(),
                progress_waiters: AtomicUsize::new(0),
                queue,
                vertices: slots.into_iter().map(Mutex::new).collect(),
                succs_idx,
                numbering,
                metrics: Metrics::new(),
                gauge: PhaseGauge::with_capacity(self.max_inflight),
                admit_clock: AdmitClock::new(self.max_inflight, self.resume_from),
                traced: TracedPhases::new(self.max_inflight),
                exec_hist: HistogramBank::new(threads),
                phase_hist: HistogramBank::new(threads),
                recorder: self.recorder,
                record_history: self.record_history,
                history: Mutex::new(if self.record_history {
                    Some(ExecutionHistory::new(n))
                } else {
                    None
                }),
                live_sinks: Mutex::new(None),
                failed_fast: AtomicBool::new(false),
                check_invariants: self.check_invariants,
            }),
            threads,
            max_inflight: self.max_inflight,
            env_delay: self.env_delay,
            membership,
        })
    }
}

/// Admission timestamps for in-flight phases, in a power-of-two ring of
/// atomic slots indexed `phase & mask` — the same windowing argument as
/// [`PhaseGauge`]: at most `max_inflight` consecutive phases are ever
/// in flight, so distinct in-flight phases never collide while the
/// capacity covers the window. Retirement walks the frontier exactly
/// once (a CAS claims the newly retired range), so each phase's
/// admission→retirement latency is recorded exactly once.
pub(crate) struct AdmitClock {
    epoch: Instant,
    slots: Vec<AtomicU64>,
    mask: u64,
    /// Highest phase whose retirement latency has been recorded.
    last_retired: AtomicU64,
}

impl AdmitClock {
    fn new(max_inflight: u64, resume_from: u64) -> AdmitClock {
        let cap = max_inflight.clamp(2, 1 << 16).next_power_of_two();
        AdmitClock {
            epoch: Instant::now(),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            last_retired: AtomicU64::new(resume_from),
        }
    }

    /// Stamps `phase`'s admission time off a clock read the caller
    /// already made. Called under the state lock (right after
    /// `start_phase`), so a racing retirement of this very phase cannot
    /// read the slot before the stamp lands.
    #[inline]
    fn note_admitted_at(&self, phase: u64, now: Instant) {
        let nanos = now.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.slots[(phase & self.mask) as usize].store(nanos, Relaxed);
    }

    /// Claims the newly retired range `(prev, frontier]` and reports
    /// each phase's latency to `f(phase, nanos, end)` — `end` is the
    /// single clock read shared by the whole batch. Exactly-once: the
    /// CAS loop hands every phase to a single caller.
    fn drain_retired(&self, frontier: u64, mut f: impl FnMut(u64, u64, Instant)) {
        let mut prev = self.last_retired.load(Relaxed);
        loop {
            if frontier <= prev {
                return;
            }
            match self
                .last_retired
                .compare_exchange_weak(prev, frontier, Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(seen) => prev = seen,
            }
        }
        let end = Instant::now();
        let now = end.saturating_duration_since(self.epoch).as_nanos() as u64;
        for phase in prev + 1..=frontier {
            let admitted = self.slots[(phase & self.mask) as usize].load(Relaxed);
            f(phase, now.saturating_sub(admitted), end);
        }
    }
}

/// Phases carrying a sampled causal trace, in a power-of-two ring of
/// atomic slots indexed `phase & mask` (the same windowing argument as
/// [`AdmitClock`]). A slot stores `phase + 1` and lookups require an
/// exact match, so a collision (a seal staging more phases ahead than
/// the ring covers) can only *lose* a mark — a traced phase silently
/// degrades to normal 1-in-8 span sampling — never force-trace the
/// wrong phase.
pub(crate) struct TracedPhases {
    slots: Vec<AtomicU64>,
    mask: u64,
}

impl TracedPhases {
    fn new(max_inflight: u64) -> TracedPhases {
        let cap = max_inflight.clamp(2, 1 << 16).next_power_of_two();
        TracedPhases {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Marks `phase` as traced (called before its admission).
    pub(crate) fn mark(&self, phase: u64) {
        self.slots[(phase & self.mask) as usize].store(phase + 1, Relaxed);
    }

    /// Whether `phase` carries a trace mark.
    #[inline]
    pub(crate) fn contains(&self, phase: u64) -> bool {
        self.slots[(phase & self.mask) as usize].load(Relaxed) == phase + 1
    }
}

/// Everything shared between worker threads, the environment thread and
/// the caller.
///
/// `pub(crate)` so the live (streaming) front end in [`crate::live`]
/// can drive the same scheduler with a caller-paced environment.
pub(crate) struct Shared {
    /// The paper's shared data structures, behind the global lock.
    pub(crate) state: Mutex<SchedState>,
    /// Signalled when `completed_through` advances or the run fails;
    /// waited on by the environment throttle and the run driver.
    pub(crate) progress: Condvar,
    /// Number of threads currently blocked on `progress`. Phase
    /// completions skip the notify entirely when nobody is waiting —
    /// the common case on the hot path.
    progress_waiters: AtomicUsize,
    /// The run queue of Listing 1, statement 1.2 — sharded across the
    /// workers, with work stealing (see [`crate::shard`]), owned
    /// privately or shared with other tenants through an
    /// [`EnginePool`](crate::EnginePool).
    pub(crate) queue: EngineQueue,
    /// Vertex slots in schedule order (`vertices[i]` = index `i + 1`).
    /// Each slot's mutex is uncontended: the ready-set rule guarantees
    /// at most one in-flight execution per vertex.
    vertices: Vec<Mutex<VertexSlot>>,
    /// Successors per schedule index.
    succs_idx: Vec<Vec<Idx>>,
    /// The vertex numbering.
    pub(crate) numbering: Numbering,
    /// Counters.
    pub(crate) metrics: Metrics,
    /// Distinct-phases-executing gauge (Figure 1 pipelining depth).
    gauge: PhaseGauge,
    /// Admission timestamps per in-flight phase, for the seal→retire
    /// latency histogram.
    admit_clock: AdmitClock,
    /// Phases carrying a sampled causal trace: their exec/retire spans
    /// bypass 1-in-8 sampling so `ec trace` shows the full chain.
    traced: TracedPhases,
    /// Per-worker module-execution duration histograms.
    exec_hist: HistogramBank,
    /// Per-worker phase admission→retirement latency histograms.
    phase_hist: HistogramBank,
    /// Optional flight recorder (lane 0 = control, lane `w+1` = worker
    /// `w`).
    pub(crate) recorder: Option<Arc<FlightRecorder>>,
    /// Mirror of `history.is_some()`, readable without the lock.
    record_history: bool,
    /// Optional execution history.
    pub(crate) history: Mutex<Option<ExecutionHistory>>,
    /// Sink emissions not yet retired by a live front end. `Some` only
    /// in live mode; keyed by `(phase, vertex)` so draining everything
    /// up to the completed frontier yields serial order.
    pub(crate) live_sinks: Mutex<Option<std::collections::BTreeMap<(u64, VertexId), Value>>>,
    /// Fast-path failure flag (authoritative state is `state.failed`).
    failed_fast: AtomicBool,
    /// Check invariants after each transition.
    pub(crate) check_invariants: bool,
}

impl Shared {
    /// Number of vertex slots.
    pub(crate) fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The vertex slots, in schedule order.
    pub(crate) fn vertex_slots(&self) -> impl Iterator<Item = &Mutex<VertexSlot>> {
        self.vertices.iter()
    }

    /// Enqueues a transition's tasks. `worker` is the id of the calling
    /// worker, if any: its own shard receives the tasks (LIFO
    /// locality); admission paths pass `None` (the engine's injector
    /// lane).
    pub(crate) fn enqueue_all(&self, transition: &mut Transition, worker: Option<usize>) {
        self.metrics
            .enqueued
            .fetch_add(transition.tasks.len() as u64, Relaxed);
        let mut refused = false;
        for task in transition.tasks.drain(..) {
            refused |= !self.queue.enqueue(task, worker);
        }
        // A private queue refuses only while a failed run drains
        // (discarding is intended). A shared queue also refuses if the
        // pool was shut down under a still-attached tenant: losing the
        // tasks would strand `wait_idle` forever, so convert the
        // refusal into an engine failure that surfaces everywhere.
        if refused && self.queue.is_pooled() && !self.failed_fast.load(Relaxed) {
            self.fail(EngineError::Config(
                "engine pool shut down while this tenant was still attached".into(),
            ));
        }
    }

    /// Fast-path check of the failure flag (authoritative state is
    /// `state.failed`; this is the lock-free mirror workers poll).
    pub(crate) fn failed_fast(&self) -> bool {
        self.failed_fast.load(Relaxed)
    }

    /// Blocks on the progress condvar, counting the wait so notifiers
    /// can skip the syscall when nobody is listening.
    pub(crate) fn wait_progress(&self, st: &mut MutexGuard<'_, SchedState>) {
        self.progress_waiters.fetch_add(1, Relaxed);
        self.progress.wait(st);
        self.progress_waiters.fetch_sub(1, Relaxed);
    }

    /// Like [`wait_progress`](Self::wait_progress) with a timeout;
    /// returns true if the wait timed out.
    pub(crate) fn wait_progress_timeout(
        &self,
        st: &mut MutexGuard<'_, SchedState>,
        timeout: Duration,
    ) -> bool {
        self.progress_waiters.fetch_add(1, Relaxed);
        let timed_out = self.progress.wait_for(st, timeout).timed_out();
        self.progress_waiters.fetch_sub(1, Relaxed);
        timed_out
    }

    /// Wakes progress waiters, if there are any. The waiter count is
    /// incremented under the state lock before waiting and every
    /// notifier has just released that lock, so a skipped notify can
    /// never strand a waiter.
    pub(crate) fn notify_progress(&self) {
        if self.progress_waiters.load(Relaxed) > 0 {
            self.progress.notify_all();
        }
    }

    /// Stamps a freshly started phase's admission time and records the
    /// span event. Call under the state lock, right after
    /// `start_phase`.
    pub(crate) fn note_admitted(&self, phase: u64) {
        let now = Instant::now();
        self.admit_clock.note_admitted_at(phase, now);
        if let Some(r) = &self.recorder {
            // One clock read serves both the admit stamp and the span.
            r.record_span_ending(0, SpanKind::PhaseAdmitted, phase, 1, 0, now);
        }
    }

    /// Stamps `phase`'s admission time off a clock read the caller
    /// already made, without emitting a ring event. Batch admission
    /// stamps every phase in the batch with one shared read and emits
    /// a single [`Shared::record_admitted_batch`] span once the state
    /// lock is dropped, keeping the recorder off the serial section.
    #[inline]
    pub(crate) fn stamp_admitted(&self, phase: u64, now: Instant) {
        self.admit_clock.note_admitted_at(phase, now);
    }

    /// Emits one `PhaseAdmitted` span covering the contiguous batch
    /// `[first, first + count)`. Call after the state lock is dropped.
    pub(crate) fn record_admitted_batch(&self, first: u64, count: u64, now: Instant) {
        if let Some(r) = &self.recorder {
            r.record_span_ending(0, SpanKind::PhaseAdmitted, first, count, 0, now);
        }
    }

    /// Marks `phase` as carrying a sampled causal trace, forcing its
    /// exec/retire spans past 1-in-8 sampling. Call before the phase is
    /// admitted.
    pub(crate) fn mark_traced(&self, phase: u64) {
        self.traced.mark(phase);
    }

    /// Records admission→retirement latency for every phase newly
    /// covered by the completion frontier. `worker` is the calling
    /// worker, if any (`None` for the admission path's silent-phase
    /// completions).
    pub(crate) fn note_retired(&self, frontier: u64, worker: Option<usize>) {
        let lane = worker.map(|w| w + 1).unwrap_or(0);
        self.admit_clock
            .drain_retired(frontier, |phase, nanos, end| {
                self.phase_hist.record(worker.unwrap_or(0), nanos);
                if let Some(r) = &self.recorder {
                    // Sampled 1-in-8 like exec spans; the phase-latency
                    // histogram above sees every phase regardless. Phases
                    // number from 1, so `== 1` keeps the very first phase
                    // of a run (and therefore tiny runs) in the trace.
                    // Trace-marked phases always record, so a sampled
                    // event's causal chain is complete.
                    if phase & EXEC_SAMPLE_MASK == 1 || self.traced.contains(phase) {
                        r.record_span_ending(lane, SpanKind::PhaseRetired, phase, nanos, 0, end);
                    }
                }
            });
    }

    pub(crate) fn fail(&self, error: EngineError) {
        self.failed_fast.store(true, Relaxed);
        {
            let mut st = self.state.lock();
            if st.failed.is_none() {
                st.failed = Some(error.to_string());
            }
        }
        self.progress.notify_all();
        self.queue.close();
    }

    /// The body of Listing 1: dequeue, execute, update.
    pub(crate) fn worker_loop(&self, worker: usize) {
        // Private steal-RNG state; any per-worker nonzero seed works.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ ((worker as u64 + 1) << 17);
        // Reusable scratch: the transition written by finish_execution
        // and the translated-inputs buffer, allocated once per worker.
        let mut transition = Transition::default();
        let mut fresh: Vec<(VertexId, Value)> = Vec::new();
        loop {
            let task = match self.queue.dequeue(worker, &mut seed) {
                Dequeued::Closed => return,
                Dequeued::Item(t) => t,
            };
            if self.failed_fast.load(Relaxed) {
                continue; // drain without executing
            }
            self.run_task(task, worker, &mut transition, &mut fresh);
        }
    }

    /// Executes one dequeued task and applies its scheduler transition
    /// — the per-task body of Listing 1, shared by private workers and
    /// the multi-tenant pool dispatch ([`crate::multi`]). `transition`
    /// and `fresh` are caller-owned scratch reused across tasks.
    pub(crate) fn run_task(
        &self,
        task: Task,
        worker: usize,
        transition: &mut Transition,
        fresh: &mut Vec<(VertexId, Value)>,
    ) {
        let Task { idx, phase, inputs } = task;
        let slot_pos = (idx - 1) as usize;
        let phase_t = Phase(phase);

        // Statement 1.3: execute the computation, outside the lock.
        let depth = self.gauge.enter(phase);
        self.metrics.sample_concurrent_phases(depth);
        let exec_start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut slot = self.vertices[slot_pos].lock();
            // The task owns its inputs: translate indices by value
            // instead of cloning every message payload.
            fresh.clear();
            fresh.extend(
                inputs
                    .into_iter()
                    .map(|(i, v)| (self.numbering.vertex_at(i), v)),
            );
            let emission = slot.execute(phase_t, fresh.as_slice());
            route_emission(
                emission,
                slot.is_sink,
                slot.vertex_id,
                &self.succs_idx[slot_pos],
                &self.numbering,
            )
        }));
        let exec_end = Instant::now();
        let exec_nanos = exec_end.saturating_duration_since(exec_start).as_nanos() as u64;
        self.metrics.exec_nanos.fetch_add(exec_nanos, Relaxed);
        self.exec_hist.record(worker, exec_nanos);
        if let Some(r) = &self.recorder {
            // Exec spans are sampled 1-in-8: the histograms above stay
            // exact, but a ring write per vertex execution is the
            // single largest recorder cost at full throughput. Reuse
            // the exec-end read — recording costs a ring write, not
            // another clock read.
            if (phase ^ idx as u64) & EXEC_SAMPLE_MASK == 0 || self.traced.contains(phase) {
                r.record_span_ending(
                    worker + 1,
                    SpanKind::Exec,
                    phase,
                    idx as u64,
                    exec_nanos,
                    exec_end,
                );
            }
        }
        self.gauge.exit(phase);

        let routed = match result {
            Err(payload) => {
                self.fail(EngineError::ModulePanic {
                    vertex: self.numbering.vertex_at(idx),
                    phase,
                    message: payload_to_string(&payload),
                });
                return;
            }
            Ok(Err(e)) => {
                self.fail(e);
                return;
            }
            Ok(Ok(routed)) => routed,
        };
        let RoutedEmission {
            messages,
            sink_value,
            recorded,
        } = routed;
        let had_sink = sink_value.is_some();

        self.record(idx, phase_t, recorded, sink_value);

        // Statements 1.4–1.31: update the shared structures under the
        // global lock.
        let wait_start = Instant::now();
        let mut st = self.state.lock();
        self.metrics
            .lock_wait_nanos
            .fetch_add(wait_start.elapsed().as_nanos() as u64, Relaxed);
        self.metrics.lock_acquisitions.fetch_add(1, Relaxed);
        if st.failed.is_some() {
            return;
        }
        let crit_start = Instant::now();
        let message_count = messages.len() as u64;
        transition.reset();
        st.finish_execution(idx, phase, messages, transition);
        if self.check_invariants {
            if let Err(msg) = st.check_invariants() {
                drop(st);
                self.fail(EngineError::InvariantViolation(msg));
                return;
            }
        }
        let completed = transition.phases_completed;
        let frontier = if completed > 0 {
            st.completed_through()
        } else {
            0
        };
        self.metrics
            .critical_nanos
            .fetch_add(crit_start.elapsed().as_nanos() as u64, Relaxed);
        drop(st);
        // Enqueue outside the lock: ready tasks are already claimed in
        // the scheduler state (at most one per vertex), so publication
        // order does not matter — but lock hold time does.
        self.enqueue_all(transition, Some(worker));

        self.metrics.executions.fetch_add(1, Relaxed);
        self.metrics.messages_sent.fetch_add(message_count, Relaxed);
        if message_count == 0 && !had_sink {
            self.metrics.silent_executions.fetch_add(1, Relaxed);
        }
        if had_sink {
            self.metrics.sink_outputs.fetch_add(1, Relaxed);
        }
        if completed > 0 {
            self.metrics.phases_completed.fetch_add(completed, Relaxed);
            self.note_retired(frontier, Some(worker));
            self.notify_progress();
        }
    }

    /// Records an execution into the history and the live sink buffer.
    /// Takes the emission by value: broadcast fan-out already shares
    /// payload buffers (`Value`'s heap variants are `Arc`-backed), and
    /// moving here avoids re-cloning the record on every execution.
    fn record(
        &self,
        idx: Idx,
        phase: Phase,
        recorded: RecordedEmission,
        sink_value: Option<Value>,
    ) {
        if self.record_history {
            let mut guard = self.history.lock();
            if let Some(history) = guard.as_mut() {
                let vertex = self.numbering.vertex_at(idx);
                history.record(vertex, phase, recorded);
                if let Some(v) = &sink_value {
                    history.record_sink(vertex, phase, v.clone());
                }
            }
        }
        if let Some(v) = sink_value {
            let mut guard = self.live_sinks.lock();
            if let Some(pending) = guard.as_mut() {
                let vertex = self.numbering.vertex_at(idx);
                pending.insert((phase.get(), vertex), v);
            }
        }
    }

    /// Snapshots the counters plus the sharded-queue observability
    /// fields (steal/park/wake counts, per-worker depths) and the
    /// engine-side latency histograms, merged across workers.
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.queue.stats();
        let scheduler = SchedulerCounters {
            steals: stats.steals.load(Relaxed),
            parks: stats.parks.load(Relaxed),
            wakes: stats.wakes.load(Relaxed),
            worker_queue_depths: self.queue.shard_depths(),
            injector_depth: self.queue.injector_depth(),
        };
        let latency = LatencyStats {
            phase: self.phase_hist.snapshot(),
            exec: self.exec_hist.snapshot(),
            ..Default::default()
        };
        self.metrics.snapshot_with(scheduler, latency)
    }

    /// The body of Listing 2's loop, bounded to `target` phases.
    fn environment_loop(&self, target: u64, max_inflight: u64, delay: Option<Duration>) {
        let mut transition = Transition::default();
        loop {
            let mut st = self.state.lock();
            while st.failed.is_none() && st.next() <= target && st.inflight() >= max_inflight {
                self.wait_progress(&mut st);
            }
            if st.failed.is_some() || st.next() > target {
                return;
            }
            transition.reset();
            let phase = st.start_phase(&mut transition);
            self.note_admitted(phase);
            if self.check_invariants {
                if let Err(msg) = st.check_invariants() {
                    drop(st);
                    self.fail(EngineError::InvariantViolation(msg));
                    return;
                }
            }
            drop(st);
            self.enqueue_all(&mut transition, None);
            self.metrics.phases_started.fetch_add(1, Relaxed);
            if let Some(d) = delay {
                thread::sleep(d);
            }
        }
    }
}

/// Result of one [`Engine::run`] call.
#[derive(Debug)]
pub struct RunReport {
    /// Number of phases completed in this run.
    pub phases: u64,
    /// Counter snapshot (cumulative across runs of the same engine).
    pub metrics: MetricsSnapshot,
    /// The execution history, if recording was enabled.
    pub history: Option<ExecutionHistory>,
    /// The set-membership trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

/// The parallel Δ-dataflow engine.
///
/// Built by [`EngineBuilder`]; each [`run`](Engine::run) call executes a
/// further batch of phases (phase numbers continue across calls, so an
/// engine can drive an ongoing stream in chunks).
pub struct Engine {
    shared: Arc<Shared>,
    threads: usize,
    max_inflight: u64,
    env_delay: Option<Duration>,
    /// `Some` when attached to a shared [`EnginePool`]; releases the
    /// tenant slot when dropped.
    membership: Option<PoolMembership>,
}

impl Engine {
    /// Shorthand for `EngineBuilder::new(dag, modules)`.
    pub fn builder(dag: Dag, modules: Vec<Box<dyn Module>>) -> EngineBuilder {
        EngineBuilder::new(dag, modules)
    }

    /// The vertex numbering in use.
    pub fn numbering(&self) -> &Numbering {
        &self.shared.numbering
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics_snapshot()
    }

    /// Executes `phases` further phases to completion.
    ///
    /// Spawns the computation processes and the environment process,
    /// waits until every started phase has completed (`x_p = N` for all
    /// of them), and joins all threads before returning.
    pub fn run(&mut self, phases: u64) -> Result<RunReport, EngineError> {
        if self.membership.is_some() {
            return Err(EngineError::Config(
                "a pooled engine has no private workers; drive it through into_live()".into(),
            ));
        }
        if phases == 0 {
            return Ok(RunReport {
                phases: 0,
                metrics: self.shared.metrics_snapshot(),
                history: None,
                trace: None,
            });
        }
        let target = {
            let st = self.shared.state.lock();
            if let Some(msg) = &st.failed {
                return Err(EngineError::WorkerPanic(msg.clone()));
            }
            debug_assert_eq!(
                st.completed_through(),
                st.next() - 1,
                "previous run left phases incomplete"
            );
            st.completed_through() + phases
        };

        let shared = Arc::clone(&self.shared);
        let workers = WorkerPool::spawn("ec-worker", self.threads, move |i| {
            shared.worker_loop(i);
        });
        let env_shared = Arc::clone(&self.shared);
        let (max_inflight, env_delay) = (self.max_inflight, self.env_delay);
        let env = thread::Builder::new()
            .name("ec-environment".into())
            .spawn(move || {
                env_shared.environment_loop(target, max_inflight, env_delay);
            })
            .expect("spawn environment thread");

        // Wait for completion (or failure).
        {
            let mut st = self.shared.state.lock();
            while st.failed.is_none() && st.completed_through() < target {
                self.shared.wait_progress(&mut st);
            }
        }
        // Wake the environment in case it is throttled, and shut down.
        self.shared.progress.notify_all();
        env.join()
            .map_err(|p| EngineError::WorkerPanic(payload_to_string(&p)))?;
        self.shared.queue.close();
        let worker_panics = workers.join();
        self.shared.queue.reopen();

        if !worker_panics.is_empty() {
            return Err(EngineError::WorkerPanic(worker_panics.join("; ")));
        }
        let (failed, trace) = {
            let mut st = self.shared.state.lock();
            (st.failed.clone(), st.take_trace())
        };
        if let Some(msg) = failed {
            return Err(parse_failure(msg));
        }

        let history = {
            let mut guard = self.shared.history.lock();
            guard.as_mut().map(|h| {
                let mut taken = std::mem::replace(h, ExecutionHistory::new(h.vertex_count()));
                taken.finalize();
                taken
            })
        };

        Ok(RunReport {
            phases,
            metrics: self.shared.metrics_snapshot(),
            history,
            trace,
        })
    }

    /// Applies an [`EngineCheckpoint`] to the (idle) engine: every
    /// vertex's module state and latest-value memory is restored from
    /// the captured state. The graph must have been rebuilt identically
    /// (same wiring, same modules); combine with
    /// [`EngineBuilder::resume_from`] so phase numbering continues where
    /// the checkpoint left off.
    pub fn restore_checkpoint(&self, checkpoint: &EngineCheckpoint) -> Result<(), EngineError> {
        let n = self.shared.vertices.len();
        if checkpoint.vertices.len() != n {
            return Err(EngineError::Config(format!(
                "checkpoint covers {} vertices, graph has {n}",
                checkpoint.vertices.len()
            )));
        }
        // Every vertex exactly once: with len == n, uniqueness makes the
        // mapping a bijection — a duplicated entry would otherwise leave
        // some other vertex silently unrestored.
        let mut restored = vec![false; n];
        for state in &checkpoint.vertices {
            if state.vertex.index() >= n {
                return Err(EngineError::Config(format!(
                    "checkpoint names unknown {:?}",
                    state.vertex
                )));
            }
            if std::mem::replace(&mut restored[state.vertex.index()], true) {
                return Err(EngineError::Config(format!(
                    "checkpoint lists {:?} twice",
                    state.vertex
                )));
            }
            let idx = self.shared.numbering.index_of(state.vertex);
            let slot_pos = (idx as usize)
                .checked_sub(1)
                .filter(|&i| i < n)
                .ok_or_else(|| {
                    EngineError::Config(format!("checkpoint names unknown {:?}", state.vertex))
                })?;
            self.shared.vertices[slot_pos].lock().restore(state)?;
        }
        Ok(())
    }

    /// Converts this (idle) engine into a [`LiveEngine`](crate::live::LiveEngine):
    /// workers are spawned immediately and stay up, and phases are
    /// admitted one at a time by the caller instead of by a scripted
    /// environment loop. This is the substrate the streaming runtime
    /// builds on.
    ///
    /// Phase numbering continues from any previous `run` calls.
    ///
    /// A [`pooled`](EngineBuilder::pooled) engine registers with its
    /// pool here instead of spawning private workers.
    pub fn into_live(self) -> crate::live::LiveEngine {
        match self.membership {
            Some(membership) => {
                membership.register(Arc::clone(&self.shared));
                crate::live::LiveEngine::spawn_pooled(self.shared, membership, self.max_inflight)
            }
            None => crate::live::LiveEngine::spawn(self.shared, self.threads, self.max_inflight),
        }
    }

    /// Dismantles the engine and returns the modules in vertex-id order
    /// (inverse of construction), e.g. to inspect collected sink state.
    ///
    /// # Panics
    /// Panics if worker threads are still alive (never the case after
    /// `run` returns).
    pub fn into_modules(self) -> Vec<Box<dyn Module>> {
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("engine threads still hold references"));
        let mut slots: Vec<VertexSlot> = shared
            .vertices
            .into_iter()
            .map(|m| m.into_inner())
            .collect();
        slots.sort_by_key(|s| s.vertex_id);
        slots.into_iter().map(|s| s.module).collect()
    }
}

/// Failure messages cross the thread boundary as strings; recover the
/// structured error where possible.
fn parse_failure(msg: String) -> EngineError {
    EngineError::WorkerPanic(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RecordedEmission;
    use crate::module::Emission;
    use crate::module::ExecCtx;
    use crate::module::{FnModule, PassThrough, SourceModule, SumModule};
    use ec_events::sources::{Counter, Replay};
    use ec_graph::generators;

    fn counter_chain_engine(len: usize, threads: usize) -> Engine {
        let dag = generators::chain(len);
        let mut modules: Vec<Box<dyn Module>> = vec![Box::new(SourceModule::new(Counter::new()))];
        for _ in 1..len {
            modules.push(Box::new(PassThrough));
        }
        Engine::builder(dag, modules)
            .threads(threads)
            .check_invariants(true)
            .build()
            .unwrap()
    }

    #[test]
    fn chain_delivers_counter_to_sink() {
        let mut engine = counter_chain_engine(4, 3);
        let report = engine.run(5).unwrap();
        assert_eq!(report.phases, 5);
        let history = report.history.unwrap();
        let sink = engine.numbering().vertex_at(4);
        let outs = history.sink_outputs_of(sink);
        let vals: Vec<i64> = outs.iter().map(|(_, v)| v.as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
        let phases: Vec<u64> = outs.iter().map(|(p, _)| p.get()).collect();
        assert_eq!(phases, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let run = |threads: usize| {
            let mut e = counter_chain_engine(6, threads);
            e.run(20).unwrap().history.unwrap()
        };
        let h1 = run(1);
        let h4 = run(4);
        assert_eq!(h1.equivalent(&h4), Ok(()));
    }

    #[test]
    fn diamond_sum_is_serializable() {
        let build = |threads: usize| {
            let dag = generators::diamond();
            let modules: Vec<Box<dyn Module>> = vec![
                Box::new(SourceModule::new(Counter::new())),
                Box::new(PassThrough),
                Box::new(PassThrough),
                Box::new(SumModule),
            ];
            Engine::builder(dag, modules)
                .threads(threads)
                .check_invariants(true)
                .build()
                .unwrap()
        };
        let mut a = build(1);
        let mut b = build(8);
        let ha = a.run(25).unwrap().history.unwrap();
        let hb = b.run(25).unwrap().history.unwrap();
        assert_eq!(ha.equivalent(&hb), Ok(()));
        // The sink sums both branches: 2 × counter value.
        let sink = a.numbering().vertex_at(4);
        for (i, (_, v)) in ha.sink_outputs_of(sink).iter().enumerate() {
            assert_eq!(v.as_f64().unwrap(), 2.0 * (i as f64 + 1.0));
        }
    }

    #[test]
    fn silent_sources_produce_no_downstream_work() {
        let dag = generators::chain(3);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Replay::new(vec![
                Some(Value::Int(1)),
                None,
                None,
                Some(Value::Int(2)),
            ]))),
            Box::new(PassThrough),
            Box::new(PassThrough),
        ];
        let mut engine = Engine::builder(dag, modules)
            .threads(2)
            .check_invariants(true)
            .build()
            .unwrap();
        let report = engine.run(4).unwrap();
        // Sources execute every phase (4), downstream only on change (2 each).
        assert_eq!(report.metrics.executions, 4 + 2 + 2);
        assert_eq!(report.metrics.messages_sent, 2 + 2); // edges × changes
        let history = report.history.unwrap();
        let mid = engine.numbering().vertex_at(2);
        assert_eq!(history.executed_phases(mid), vec![Phase(1), Phase(4)]);
    }

    #[test]
    fn phase_numbers_continue_across_runs() {
        let mut engine = counter_chain_engine(2, 2);
        engine.run(3).unwrap();
        let report = engine.run(2).unwrap();
        let history = report.history.unwrap();
        let sink = engine.numbering().vertex_at(2);
        let phases: Vec<u64> = history
            .sink_outputs_of(sink)
            .iter()
            .map(|(p, _)| p.get())
            .collect();
        // Second run covers phases 4 and 5 only (history is per-run).
        assert_eq!(phases, vec![4, 5]);
    }

    #[test]
    fn module_panic_surfaces_as_error() {
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("bomb", |ctx: ExecCtx<'_>| {
                if ctx.phase == Phase(3) {
                    panic!("synthetic failure");
                }
                Emission::Silent
            })),
        ];
        let mut engine = Engine::builder(dag, modules).threads(4).build().unwrap();
        let err = engine.run(10).unwrap_err();
        match err {
            EngineError::WorkerPanic(msg) => assert!(msg.contains("synthetic failure")),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn bad_target_rejected() {
        let dag = generators::chain(3);
        let v0 = VertexId(0); // not a successor of vertex index 2
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(FnModule::new("bad", move |_ctx: ExecCtx<'_>| {
                Emission::Targeted(vec![(v0, Value::Int(1))])
            })),
            Box::new(PassThrough),
        ];
        let mut engine = Engine::builder(dag, modules).threads(2).build().unwrap();
        let err = engine.run(2).unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanic(msg) if msg.contains("non-successor")));
    }

    #[test]
    fn metrics_count_messages_and_phases() {
        let mut engine = counter_chain_engine(3, 2);
        let report = engine.run(10).unwrap();
        assert_eq!(report.metrics.phases_started, 10);
        assert_eq!(report.metrics.phases_completed, 10);
        assert_eq!(report.metrics.executions, 30);
        assert_eq!(report.metrics.messages_sent, 20); // 2 edges × 10
        assert_eq!(report.metrics.sink_outputs, 10);
        assert!(report.metrics.max_concurrent_phases >= 1);
    }

    #[test]
    fn trace_records_steps() {
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
        ];
        let mut engine = Engine::builder(dag, modules)
            .threads(1)
            .trace(true)
            .build()
            .unwrap();
        let report = engine.run(2).unwrap();
        let trace = report.trace.unwrap();
        // 2 phase starts + 4 executions.
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.executions().count(), 4);
    }

    #[test]
    fn into_modules_returns_vertex_order() {
        let engine = counter_chain_engine(3, 1);
        let modules = engine.into_modules();
        assert_eq!(modules.len(), 3);
        assert_eq!(modules[0].name(), "source");
        assert_eq!(modules[1].name(), "pass-through");
    }

    #[test]
    fn zero_phases_is_a_noop() {
        let mut engine = counter_chain_engine(2, 1);
        let report = engine.run(0).unwrap();
        assert_eq!(report.phases, 0);
        assert!(report.history.is_none());
    }

    #[test]
    fn history_records_silent_executions() {
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Replay::new(vec![None, None]))),
            Box::new(PassThrough),
        ];
        let mut engine = Engine::builder(dag, modules).threads(1).build().unwrap();
        let history = engine.run(2).unwrap().history.unwrap();
        let src = engine.numbering().vertex_at(1);
        assert_eq!(
            history.of(src),
            &[
                (Phase(1), RecordedEmission::Silent),
                (Phase(2), RecordedEmission::Silent)
            ]
        );
        // Downstream vertex never executed.
        let snd = engine.numbering().vertex_at(2);
        assert!(history.of(snd).is_empty());
    }

    #[test]
    fn throttle_limits_inflight_phases() {
        // With max_inflight = 2 the engine still completes correctly.
        let dag = generators::chain(8);
        let mut modules: Vec<Box<dyn Module>> = vec![Box::new(SourceModule::new(Counter::new()))];
        for _ in 1..8 {
            modules.push(Box::new(PassThrough));
        }
        let mut engine = Engine::builder(dag, modules)
            .threads(4)
            .max_inflight(2)
            .check_invariants(true)
            .build()
            .unwrap();
        let report = engine.run(30).unwrap();
        assert_eq!(report.metrics.phases_completed, 30);
        // Pipelining depth is bounded by the throttle.
        assert!(report.metrics.max_concurrent_phases <= 2);
    }
}
