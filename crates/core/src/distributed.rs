//! Simulated multi-machine execution (§6 future work).
//!
//! The paper's §6 proposes "using networks of multiprocessor machines …
//! including methods for partitioning the computation graph across
//! multiple machines". This module simulates that deployment: the graph
//! is split into schedule-contiguous partitions
//! ([`ec_graph::partition`]), each partition plays the role of one
//! machine, and messages crossing partition boundaries are **remote**
//! (they would traverse the network) while messages within a partition
//! are **local**.
//!
//! Because contiguous-in-schedule-order partitions are *forward* (every
//! cross edge goes to a later machine), inter-machine traffic is
//! acyclic and each phase can flow through the machine pipeline in
//! partition order. The simulation executes exactly the serial-order
//! semantics, so its history equals the sequential oracle's — what it
//! adds is the traffic accounting that lets partitioning strategies be
//! compared (see the partition quality metrics and the
//! `remote_messages` counter).

use crate::error::EngineError;
use crate::history::ExecutionHistory;
use crate::module::Module;
use crate::state::Idx;
use crate::vertex::{route_emission, VertexSlot};
use ec_events::{Phase, Value};
use ec_graph::{Dag, Numbering, Partition};

/// Per-partition traffic statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Vertex-phase executions on this machine.
    pub executions: u64,
    /// Messages delivered within this machine.
    pub local_messages: u64,
    /// Messages sent from this machine to later machines.
    pub remote_out: u64,
    /// Messages received from earlier machines.
    pub remote_in: u64,
}

/// Simulates a pipeline of machines executing one partition each.
pub struct DistributedSim {
    slots: Vec<VertexSlot>,
    succs_idx: Vec<Vec<Idx>>,
    numbering: Numbering,
    /// Partition id per schedule position (non-decreasing).
    part_at: Vec<u32>,
    stats: Vec<MachineStats>,
    history: ExecutionHistory,
    next_phase: u64,
}

impl std::fmt::Debug for DistributedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedSim")
            .field("vertices", &self.slots.len())
            .field("machines", &self.stats.len())
            .field("next_phase", &self.next_phase)
            .finish()
    }
}

impl DistributedSim {
    /// Builds the simulation. `partition` must be *forward* (every edge
    /// to an equal-or-later partition) and contiguous in schedule order
    /// — both hold for the partitions produced by
    /// [`ec_graph::partition_balanced`] / [`ec_graph::partition_min_cut`].
    pub fn new(
        dag: &Dag,
        modules: Vec<Box<dyn Module>>,
        partition: &Partition,
    ) -> Result<DistributedSim, EngineError> {
        if !partition.is_forward(dag) {
            return Err(EngineError::Config(
                "partition has backward cross edges; distributed pipelining \
                 requires a forward partition"
                    .into(),
            ));
        }
        let numbering = Numbering::compute(dag);
        let slots = VertexSlot::build(dag, &numbering, modules)?;
        let part_at: Vec<u32> = numbering
            .schedule_order()
            .map(|v| partition.part_of(v))
            .collect();
        if part_at.windows(2).any(|w| w[0] > w[1]) {
            return Err(EngineError::Config(
                "partition is not contiguous in schedule order".into(),
            ));
        }
        let succs_idx = numbering
            .schedule_order()
            .map(|v| {
                let mut s: Vec<Idx> = dag
                    .succs(v)
                    .iter()
                    .map(|&w| numbering.index_of(w))
                    .collect();
                s.sort_unstable();
                s
            })
            .collect();
        let n = slots.len();
        Ok(DistributedSim {
            slots,
            succs_idx,
            numbering,
            part_at,
            stats: vec![MachineStats::default(); partition.k() as usize],
            history: ExecutionHistory::new(n),
            next_phase: 1,
        })
    }

    /// The vertex numbering in use.
    pub fn numbering(&self) -> &Numbering {
        &self.numbering
    }

    /// Per-machine statistics.
    pub fn stats(&self) -> &[MachineStats] {
        &self.stats
    }

    /// Total messages that crossed machine boundaries.
    pub fn remote_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.remote_out).sum()
    }

    /// Total messages that stayed within a machine.
    pub fn local_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.local_messages).sum()
    }

    /// Executes `phases` further phases through the machine pipeline.
    pub fn run(&mut self, phases: u64) -> Result<(), EngineError> {
        let n = self.slots.len();
        for _ in 0..phases {
            let phase = Phase(self.next_phase);
            self.next_phase += 1;
            let mut inboxes: Vec<Vec<(Idx, Value)>> = vec![Vec::new(); n];
            // Machines process the phase in pipeline order; within a
            // machine, vertices run in schedule order (each machine
            // runs the single-machine algorithm locally).
            for pos in 0..n {
                let my_part = self.part_at[pos];
                let fresh_raw = std::mem::take(&mut inboxes[pos]);
                let slot = &mut self.slots[pos];
                if !slot.is_source && fresh_raw.is_empty() {
                    continue;
                }
                let fresh: Vec<_> = fresh_raw
                    .iter()
                    .map(|(i, v)| (self.numbering.vertex_at(*i), v.clone()))
                    .collect();
                let emission = slot.execute(phase, &fresh);
                let routed = route_emission(
                    emission,
                    slot.is_sink,
                    slot.vertex_id,
                    &self.succs_idx[pos],
                    &self.numbering,
                )?;
                self.stats[my_part as usize].executions += 1;
                self.history.record(slot.vertex_id, phase, routed.recorded);
                if let Some(v) = routed.sink_value {
                    self.history.record_sink(slot.vertex_id, phase, v);
                }
                let my_idx = (pos + 1) as Idx;
                for (w, value) in routed.messages {
                    debug_assert!(w > my_idx);
                    let w_part = self.part_at[(w - 1) as usize];
                    if w_part == my_part {
                        self.stats[my_part as usize].local_messages += 1;
                    } else {
                        self.stats[my_part as usize].remote_out += 1;
                        self.stats[w_part as usize].remote_in += 1;
                    }
                    inboxes[(w - 1) as usize].push((my_idx, value));
                }
            }
        }
        Ok(())
    }

    /// The recorded history (finalised copy) — comparable against the
    /// sequential oracle.
    pub fn history(&self) -> ExecutionHistory {
        let mut h = self.history.clone();
        h.finalize();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{PassThrough, SourceModule, SumModule};
    use crate::sequential::Sequential;
    use ec_events::sources::Counter;
    use ec_graph::{generators, partition_balanced, partition_min_cut};

    fn modules_for(dag: &Dag) -> Vec<Box<dyn Module>> {
        dag.vertices()
            .map(|v| -> Box<dyn Module> {
                if dag.is_source(v) {
                    Box::new(SourceModule::new(Counter::new()))
                } else if dag.is_sink(v) {
                    Box::new(PassThrough)
                } else {
                    Box::new(SumModule)
                }
            })
            .collect()
    }

    #[test]
    fn distributed_matches_sequential_oracle() {
        let dag = generators::layered(5, 3, 2, 21);
        let numbering = ec_graph::Numbering::compute(&dag);
        for k in [1u32, 2, 3, 5] {
            let partition = partition_balanced(&dag, &numbering, k);
            let mut sim = DistributedSim::new(&dag, modules_for(&dag), &partition).unwrap();
            sim.run(20).unwrap();
            let mut seq = Sequential::new(&dag, modules_for(&dag)).unwrap();
            seq.run(20).unwrap();
            assert_eq!(
                seq.into_history().equivalent(&sim.history()),
                Ok(()),
                "k = {k}"
            );
        }
    }

    #[test]
    fn traffic_accounting_sums_to_total() {
        let dag = generators::layered(4, 3, 2, 8);
        let numbering = ec_graph::Numbering::compute(&dag);
        let partition = partition_balanced(&dag, &numbering, 3);
        let mut sim = DistributedSim::new(&dag, modules_for(&dag), &partition).unwrap();
        sim.run(10).unwrap();

        let mut seq = Sequential::new(&dag, modules_for(&dag)).unwrap();
        seq.run(10).unwrap();
        assert_eq!(
            sim.local_messages() + sim.remote_messages(),
            seq.messages_sent
        );
        // remote_in mirrors remote_out.
        let total_in: u64 = sim.stats().iter().map(|s| s.remote_in).sum();
        assert_eq!(total_in, sim.remote_messages());
    }

    #[test]
    fn min_cut_partition_reduces_remote_traffic() {
        // Two fans joined by a waist edge: the min-cut 2-way partition
        // must put less traffic on the network than a deliberately bad
        // split through a fan.
        let mut dag = Dag::new();
        let srcs = dag.add_vertices(4);
        let hub_a = dag.add_vertex("hub-a");
        for &s in &srcs {
            dag.add_edge(s, hub_a).unwrap();
        }
        let hub_b = dag.add_vertex("hub-b");
        dag.add_edge(hub_a, hub_b).unwrap();
        let outs = dag.add_vertices(4);
        for &t in &outs {
            dag.add_edge(hub_b, t).unwrap();
        }
        let numbering = ec_graph::Numbering::compute(&dag);

        let good = partition_min_cut(&dag, &numbering, 2, 0.1);
        let mut sim_good = DistributedSim::new(&dag, modules_for(&dag), &good).unwrap();
        sim_good.run(10).unwrap();

        // A bad but forward partition: split through the source fan.
        let mut bad_assign = vec![1u32; dag.vertex_count()];
        for pos in 0..2u32 {
            bad_assign[numbering.vertex_at(pos + 1).index()] = 0;
        }
        let bad = ec_graph::Partition::new(bad_assign, 2);
        let mut sim_bad = DistributedSim::new(&dag, modules_for(&dag), &bad).unwrap();
        sim_bad.run(10).unwrap();

        assert!(
            sim_good.remote_messages() < sim_bad.remote_messages(),
            "min-cut {} vs fan-split {}",
            sim_good.remote_messages(),
            sim_bad.remote_messages()
        );
        // And both remain correct.
        assert_eq!(sim_good.history().equivalent(&sim_bad.history()), Ok(()));
    }

    #[test]
    fn rejects_backward_partition() {
        let dag = generators::chain(3);
        // Reverse partition: sink on machine 0, source on machine 1.
        let backwards = ec_graph::Partition::new(vec![1, 1, 0], 2);
        let err = DistributedSim::new(&dag, modules_for(&dag), &backwards).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
    }
}
