//! Deterministic single-stepping executor.
//!
//! [`Stepper`] drives the same scheduler state as the parallel engine
//! but executes one vertex-phase pair at a time, chosen by the caller.
//! It exists for three purposes:
//!
//! * reproducing the paper's **Figure 3** exactly — the figure shows a
//!   specific interleaving of phase starts and executions, with the
//!   partial/full/ready memberships after each step;
//! * debugging module graphs (watch the sets evolve step by step);
//! * schedule-exploration tests (execute ready pairs in adversarial
//!   orders and check serializability).
//!
//! The stepper maintains the identical data structures as the engine,
//! so what it shows is what the parallel run does — just one transition
//! at a time.

use crate::error::EngineError;
use crate::history::ExecutionHistory;
use crate::module::Module;
use crate::state::{Idx, SchedState, Task};
use crate::trace::{SetSnapshot, Trace};
use crate::vertex::{route_emission, VertexSlot};
use ec_events::{Phase, Value};
use ec_graph::{Dag, Numbering, VertexId};

/// One executed step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// 1-based schedule index of the executed vertex.
    pub vertex_index: u32,
    /// Phase executed.
    pub phase: u64,
    /// Number of messages emitted.
    pub emitted: usize,
}

/// A deterministic, caller-driven executor over the paper's scheduler
/// state.
pub struct Stepper {
    state: SchedState,
    slots: Vec<VertexSlot>,
    succs_idx: Vec<Vec<Idx>>,
    numbering: Numbering,
    pending: Vec<Task>,
    history: ExecutionHistory,
}

impl Stepper {
    /// Builds a stepper with tracing enabled.
    pub fn new(dag: &Dag, modules: Vec<Box<dyn Module>>) -> Result<Stepper, EngineError> {
        let numbering = Numbering::compute(dag);
        let slots = VertexSlot::build(dag, &numbering, modules)?;
        let succs_idx = numbering
            .schedule_order()
            .map(|v| {
                let mut s: Vec<Idx> = dag
                    .succs(v)
                    .iter()
                    .map(|&w| numbering.index_of(w))
                    .collect();
                s.sort_unstable();
                s
            })
            .collect();
        let mut state = SchedState::new(numbering.m_table());
        state.enable_trace();
        let n = slots.len();
        Ok(Stepper {
            state,
            slots,
            succs_idx,
            numbering,
            pending: Vec::new(),
            history: ExecutionHistory::new(n),
        })
    }

    /// The numbering in use.
    pub fn numbering(&self) -> &Numbering {
        &self.numbering
    }

    /// Starts the next phase (the environment process's step) and
    /// returns its number.
    pub fn start_phase(&mut self) -> u64 {
        let mut tr = crate::state::Transition::default();
        let p = self.state.start_phase(&mut tr);
        self.pending.extend(tr.tasks);
        debug_assert!(self.state.check_invariants().is_ok());
        p
    }

    /// Ready-but-unexecuted pairs, as `(index, phase)`, in the order
    /// they became ready.
    pub fn ready_pairs(&self) -> Vec<(u32, u64)> {
        self.pending.iter().map(|t| (t.idx, t.phase)).collect()
    }

    /// Executes the oldest ready pair (FIFO — what a single engine
    /// worker would do). Returns `None` when nothing is ready.
    pub fn step(&mut self) -> Result<Option<StepOutcome>, EngineError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let task = self.pending.remove(0);
        self.execute(task).map(Some)
    }

    /// Executes a specific ready pair (for reproducing a chosen
    /// interleaving, e.g. Figure 3's).
    ///
    /// Returns an error if the pair is not currently ready.
    pub fn step_pair(&mut self, index: u32, phase: u64) -> Result<StepOutcome, EngineError> {
        let pos = self
            .pending
            .iter()
            .position(|t| t.idx == index && t.phase == phase)
            .ok_or_else(|| EngineError::Config(format!("pair ({index}, {phase}) is not ready")))?;
        let task = self.pending.remove(pos);
        self.execute(task)
    }

    fn execute(&mut self, task: Task) -> Result<StepOutcome, EngineError> {
        let Task { idx, phase, inputs } = task;
        let pos = (idx - 1) as usize;
        let fresh: Vec<(VertexId, Value)> = inputs
            .iter()
            .map(|(i, v)| (self.numbering.vertex_at(*i), v.clone()))
            .collect();
        let emission = self.slots[pos].execute(Phase(phase), &fresh);
        let routed = route_emission(
            emission,
            self.slots[pos].is_sink,
            self.slots[pos].vertex_id,
            &self.succs_idx[pos],
            &self.numbering,
        )?;
        let vertex = self.slots[pos].vertex_id;
        self.history.record(vertex, Phase(phase), routed.recorded);
        if let Some(v) = routed.sink_value {
            self.history.record_sink(vertex, Phase(phase), v);
        }
        let emitted = routed.messages.len();
        let mut tr = crate::state::Transition::default();
        self.state
            .finish_execution(idx, phase, routed.messages, &mut tr);
        self.pending.extend(tr.tasks);
        self.state
            .check_invariants()
            .map_err(EngineError::InvariantViolation)?;
        Ok(StepOutcome {
            vertex_index: idx,
            phase,
            emitted,
        })
    }

    /// Runs steps (FIFO) until nothing is ready.
    pub fn drain(&mut self) -> Result<usize, EngineError> {
        let mut steps = 0;
        while self.step()?.is_some() {
            steps += 1;
        }
        Ok(steps)
    }

    /// Current set memberships (the Figure 3 view).
    pub fn snapshot(&self) -> SetSnapshot {
        self.state.snapshot()
    }

    /// All phases up to and including this have completed.
    pub fn completed_through(&self) -> u64 {
        self.state.completed_through()
    }

    /// Takes the recorded trace (one step per transition so far).
    pub fn take_trace(&mut self) -> Trace {
        let t = self.state.take_trace().unwrap_or_default();
        self.state.enable_trace();
        t
    }

    /// The execution history so far (finalised copy).
    pub fn history(&self) -> ExecutionHistory {
        let mut h = self.history.clone();
        h.finalize();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{PassThrough, SourceModule};
    use ec_events::sources::Counter;
    use ec_graph::generators;

    fn chain_stepper(len: usize) -> Stepper {
        let dag = generators::chain(len);
        let mut modules: Vec<Box<dyn Module>> = vec![Box::new(SourceModule::new(Counter::new()))];
        for _ in 1..len {
            modules.push(Box::new(PassThrough));
        }
        Stepper::new(&dag, modules).unwrap()
    }

    #[test]
    fn fifo_steps_complete_a_phase() {
        let mut s = chain_stepper(3);
        assert_eq!(s.start_phase(), 1);
        assert_eq!(s.ready_pairs(), vec![(1, 1)]);
        let o = s.step().unwrap().unwrap();
        assert_eq!((o.vertex_index, o.phase, o.emitted), (1, 1, 1));
        assert_eq!(s.drain().unwrap(), 2);
        assert_eq!(s.completed_through(), 1);
        assert!(s.step().unwrap().is_none());
    }

    #[test]
    fn step_pair_selects_interleaving() {
        let mut s = chain_stepper(2);
        s.start_phase();
        s.start_phase();
        // (1,1) ready; (1,2) is full but not ready yet.
        assert!(s.step_pair(1, 2).is_err());
        s.step_pair(1, 1).unwrap();
        // Now both (2,1) and (1,2) are ready; pick the later phase first.
        let mut ready = s.ready_pairs();
        ready.sort_unstable();
        assert_eq!(ready, vec![(1, 2), (2, 1)]);
        s.step_pair(1, 2).unwrap();
        s.drain().unwrap();
        assert_eq!(s.completed_through(), 2);
    }

    #[test]
    fn snapshot_shows_memberships() {
        let mut s = chain_stepper(2);
        s.start_phase();
        let snap = s.snapshot();
        assert_eq!(snap.ready(), vec![(1, 1)]);
        s.step().unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.ready(), vec![(2, 1)]);
    }

    #[test]
    fn history_matches_sequential_semantics() {
        let mut s = chain_stepper(3);
        for _ in 0..3 {
            s.start_phase();
            s.drain().unwrap();
        }
        let h = s.history();
        let sink = s.numbering().vertex_at(3);
        let vals: Vec<i64> = h
            .sink_outputs_of(sink)
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn trace_accumulates_steps() {
        let mut s = chain_stepper(2);
        s.start_phase();
        s.drain().unwrap();
        let t = s.take_trace();
        assert_eq!(t.len(), 3); // 1 start + 2 executions
                                // Trace continues recording after take.
        s.start_phase();
        s.drain().unwrap();
        let t = s.take_trace();
        assert_eq!(t.len(), 3);
    }
}
