//! Scheduler state: the data structures of Listings 1 and 2.
//!
//! [`SchedState`] is the structure the paper's computation and
//! environment processes manipulate under the global lock. It maintains,
//! faithfully to definitions (7)–(9):
//!
//! * the **partial** set — vertex-phase pairs with at least one waiting
//!   message but not yet a full set of inputs (`m(x_p) < v`);
//! * the **full** set — pairs with sufficient information to execute
//!   (`x_p < v ≤ m(x_p)` and a waiting message);
//! * the **ready** set — full pairs whose phase is minimal among the
//!   full pairs of their vertex (at most one per vertex, so it is stored
//!   as a per-vertex `Option<phase>`);
//! * the per-phase frontier `x_p` — the highest index such that
//!   `x_p ≤ x_{p−1}` and all vertices indexed `x_p` and lower have
//!   finished phase `p`;
//! * `pmax` / `next` — the highest started phase and the next to start.
//!
//! Instead of the paper's linear scans (statements 1.14–1.15 and
//! 1.24–1.27), pairs are kept in per-phase ordered sets so the minimum
//! active index and the "newly full" range are `O(log N)` — these are
//! the "optimizations and custom data structures" the prototype alludes
//! to in §4. The scans' *semantics* are reproduced exactly; the
//! invariant checker used in tests re-derives every set from the raw
//! definitions and compares.
//!
//! The paper's ghost variable `msg(v,p)` corresponds to membership in
//! `partial ∪ full ∪ ready`: a pair holds messages from its creation
//! until its execution is finished (messages are physically handed to
//! the worker at ready-promotion time, but logically they remain "on the
//! input" until `finish_execution`, matching §3.1.2).

use crate::trace::{SetMembership, SetSnapshot, Trace, TraceEvent, TraceStep};
use ec_events::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// 1-based schedule index (the paper's vertex number).
pub(crate) type Idx = u32;

/// A unit of work handed to a computation process: execute `idx` for
/// `phase` with the given fresh inputs (sorted by producer index).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Task {
    pub idx: Idx,
    pub phase: u64,
    pub inputs: Vec<(Idx, Value)>,
}

/// Per-phase scheduling state.
#[derive(Debug, Default)]
struct PhaseState {
    /// Pairs with messages but not enough information (definition 9).
    partial: BTreeSet<Idx>,
    /// Pairs with sufficient information (definition 7).
    full: BTreeSet<Idx>,
    /// The frontier `x_p`.
    x: Idx,
    /// Undelivered messages per consumer: `(producer, value)` lists.
    inbox: HashMap<Idx, Vec<(Idx, Value)>>,
}

impl PhaseState {
    fn min_active(&self) -> Option<Idx> {
        match (self.partial.first(), self.full.first()) {
            (None, None) => None,
            (a, b) => Some(
                a.copied()
                    .unwrap_or(Idx::MAX)
                    .min(b.copied().unwrap_or(Idx::MAX)),
            ),
        }
    }
}

/// Outcome of a state transition: pairs that became ready (to enqueue)
/// and how many phases completed.
#[derive(Debug, Default)]
pub(crate) struct Transition {
    pub tasks: Vec<Task>,
    pub phases_completed: u64,
}

/// The shared scheduler state (guarded by the engine's global lock).
pub(crate) struct SchedState {
    /// Number of vertices `N`.
    n: Idx,
    /// The numbering's `m` table, `m[0..=N]`.
    m: Vec<Idx>,
    /// Schedule indices of source vertices (always `1..=m(0)`).
    sources: Vec<Idx>,
    /// Highest phase started (0 before any).
    pmax: u64,
    /// Next phase the environment will start.
    next: u64,
    /// All phases `≤ completed_through` have `x = N`.
    completed_through: u64,
    /// Active (started, incomplete) phases.
    phases: BTreeMap<u64, PhaseState>,
    /// Phases in the full set, per vertex (index 0 unused).
    vertex_full: Vec<BTreeSet<u64>>,
    /// The unique ready phase per vertex, if any (index 0 unused).
    ready_phase: Vec<Option<u64>>,
    /// Set when a computation process fails; drains the run.
    pub failed: Option<String>,
    /// Optional Figure-3-style trace.
    trace: Option<Trace>,
}

impl SchedState {
    /// Initialises the state for a graph whose numbering produced
    /// `m_table` (`m[0..=N]`) — the environment process's statements
    /// 2.2–2.7.
    pub fn new(m_table: &[Idx]) -> SchedState {
        let n = (m_table.len() - 1) as Idx;
        SchedState {
            n,
            m: m_table.to_vec(),
            sources: (1..=m_table[0]).collect(),
            pmax: 0,
            next: 1,
            completed_through: 0,
            phases: BTreeMap::new(),
            vertex_full: vec![BTreeSet::new(); n as usize + 1],
            ready_phase: vec![None; n as usize + 1],
            failed: None,
            trace: None,
        }
    }

    /// Re-bases the phase counters so the next started phase is
    /// `base + 1` — resuming a run whose phases `1..=base` completed in
    /// a previous process (checkpoint/restore). Only valid before any
    /// phase has started.
    pub fn resume_from(&mut self, base: u64) {
        assert_eq!(
            (self.pmax, self.completed_through),
            (0, 0),
            "resume_from on a state that has already started phases"
        );
        self.pmax = base;
        self.next = base + 1;
        self.completed_through = base;
    }

    /// Enables Figure-3-style tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// Takes the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Number of vertices.
    #[allow(dead_code)] // used by the state-machine tests
    pub fn n(&self) -> Idx {
        self.n
    }

    /// Highest phase started.
    pub fn pmax(&self) -> u64 {
        self.pmax
    }

    /// Next phase the environment will start.
    pub fn next(&self) -> u64 {
        self.next
    }

    /// All phases up to and including this are complete.
    pub fn completed_through(&self) -> u64 {
        self.completed_through
    }

    /// Number of started-but-incomplete phases.
    pub fn inflight(&self) -> u64 {
        self.pmax.saturating_sub(self.completed_through)
    }

    /// `x_p` for any phase: `N` for completed phases, 0 for unstarted
    /// ones, the stored frontier otherwise.
    pub fn x_of(&self, p: u64) -> Idx {
        if p <= self.completed_through {
            self.n
        } else if p > self.pmax {
            0
        } else {
            self.phases[&p].x
        }
    }

    /// Starts the next phase (statements 2.11–2.19): inserts `(s, next)`
    /// for every source into the full set, promotes newly ready pairs,
    /// and advances `next`.
    pub fn start_phase(&mut self) -> (u64, Transition) {
        let p = self.next;
        self.pmax = p;
        self.next += 1;
        let st = PhaseState::default();
        self.phases.insert(p, st);
        let sources = self.sources.clone();
        let mut out = Transition::default();
        for s in sources {
            let ph = self.phases.get_mut(&p).expect("just inserted");
            ph.full.insert(s);
            self.vertex_full[s as usize].insert(p);
            self.try_promote(s, &mut out.tasks);
        }
        self.trace_step(TraceEvent::PhaseStarted(p));
        (p, out)
    }

    /// Commits the execution of `(v, p)` with the given outputs — the
    /// computation process's statements 1.5–1.30.
    ///
    /// `outputs` are `(successor index, value)` messages for phase `p`.
    pub fn finish_execution(&mut self, v: Idx, p: u64, outputs: Vec<(Idx, Value)>) -> Transition {
        let emitted = outputs.len();
        let mut out = Transition::default();

        // Statements 1.5–1.7: remove (v, p) from the full and ready sets.
        {
            let ph = self
                .phases
                .get_mut(&p)
                .expect("finished pair's phase must be active");
            let was_full = ph.full.remove(&v);
            debug_assert!(was_full, "({v}, {p}) finished but was not in full");
        }
        debug_assert_eq!(
            self.ready_phase[v as usize],
            Some(p),
            "({v}, {p}) finished but was not the ready pair of {v}"
        );
        self.ready_phase[v as usize] = None;
        self.vertex_full[v as usize].remove(&p);

        // Statements 1.8–1.11: deliver outputs into the partial set.
        {
            let ph = self.phases.get_mut(&p).expect("phase active");
            for (w, val) in outputs {
                debug_assert!(w > v, "messages flow to higher indices only");
                debug_assert!(
                    !ph.full.contains(&w),
                    "successor ({w}, {p}) cannot already be full while a \
                     predecessor was still executing"
                );
                ph.inbox.entry(w).or_default().push((v, val));
                ph.partial.insert(w);
            }
        }

        // Statements 1.12–1.23: update x_p, x_{p+1}, … . The paper scans
        // to pmax; since phase i's recomputed value depends only on its
        // own (unchanged, for i > p) sets and the clamp against x_{i−1},
        // the scan can stop at the first phase whose x does not change.
        let mut changed: Vec<u64> = Vec::new();
        let mut i = p;
        while i <= self.pmax {
            let bound = self.x_of(i - 1);
            let ph = self.phases.get_mut(&i).expect("phases ≤ pmax active");
            let new_x = match ph.min_active() {
                None => self.n.min(bound),
                Some(mn) => (mn - 1).min(bound),
            };
            if new_x == ph.x {
                break;
            }
            debug_assert!(new_x > ph.x, "x_p never decreases (serializability)");
            ph.x = new_x;
            changed.push(i);
            i += 1;
        }

        // Statements 1.24–1.26: promote newly full pairs. Phase p must
        // always be rechecked (new partial pairs may already satisfy
        // w ≤ m(x_p)); phases with changed x may promote as well.
        let mut recheck: BTreeSet<u64> = changed.iter().copied().collect();
        recheck.insert(p);
        for &q in &recheck {
            if q <= self.completed_through {
                continue;
            }
            let mx = self.m[self.x_of(q) as usize];
            let ph = match self.phases.get_mut(&q) {
                Some(ph) => ph,
                None => continue,
            };
            let movers: Vec<Idx> = ph.partial.range(..=mx).copied().collect();
            for &w in &movers {
                ph.partial.remove(&w);
                ph.full.insert(w);
            }
            for w in movers {
                self.vertex_full[w as usize].insert(q);
                self.try_promote(w, &mut out.tasks);
            }
        }

        // Statements 1.27–1.30 for the executed vertex: its next full
        // phase (if any) may now be ready.
        self.try_promote(v, &mut out.tasks);

        // Advance the completed frontier and drop finished phases.
        while let Some((&q, ph)) = self.phases.first_key_value() {
            if ph.x == self.n {
                debug_assert!(ph.partial.is_empty() && ph.full.is_empty());
                debug_assert!(
                    ph.inbox.is_empty(),
                    "completed phase must have delivered every message"
                );
                self.phases.remove(&q);
                self.completed_through = q;
                out.phases_completed += 1;
            } else {
                break;
            }
        }

        self.trace_step(TraceEvent::Executed {
            vertex: v,
            phase: p,
            emitted,
        });
        out
    }

    /// Records one trace step (no-op unless tracing is enabled).
    fn trace_step(&mut self, event: TraceEvent) {
        if self.trace.is_none() {
            return;
        }
        let after = self.snapshot();
        if let Some(trace) = &mut self.trace {
            trace.steps.push(TraceStep { event, after });
        }
    }

    /// If `w`'s minimal full phase is not yet ready, makes it ready and
    /// emits its task (statements 1.27–1.30 / 2.16–2.19). The messages
    /// accumulated for the pair are attached to the task here: once a
    /// pair is full, all of its messages have arrived (its predecessors
    /// have all finished the phase), so this hand-off is race-free.
    fn try_promote(&mut self, w: Idx, tasks: &mut Vec<Task>) {
        if self.ready_phase[w as usize].is_some() {
            return;
        }
        let q = match self.vertex_full[w as usize].first() {
            Some(&q) => q,
            None => return,
        };
        self.ready_phase[w as usize] = Some(q);
        let ph = self.phases.get_mut(&q).expect("full phase is active");
        let mut inputs = ph.inbox.remove(&w).unwrap_or_default();
        inputs.sort_by_key(|(prod, _)| *prod);
        tasks.push(Task {
            idx: w,
            phase: q,
            inputs,
        });
    }

    /// Snapshot of current set memberships (Figure 3 coordinates).
    pub fn snapshot(&self) -> SetSnapshot {
        let mut entries = Vec::new();
        let mut x = Vec::new();
        for (&q, ph) in &self.phases {
            for &w in &ph.partial {
                entries.push((w, q, SetMembership::Partial));
            }
            for &w in &ph.full {
                let m = if self.ready_phase[w as usize] == Some(q) {
                    SetMembership::FullAndReady
                } else {
                    SetMembership::FullOnly
                };
                entries.push((w, q, m));
            }
            x.push((q, ph.x));
        }
        entries.sort_by_key(|&(v, p, _)| (p, v));
        SetSnapshot { entries, x }
    }

    /// Re-derives every invariant from the paper's definitions and
    /// checks the incremental state against them. Used by tests after
    /// every transition (`check_invariants` feature of the engine).
    pub fn check_invariants(&self) -> Result<(), String> {
        // The active window covers exactly (completed_through, pmax].
        for &q in self.phases.keys() {
            if q <= self.completed_through() || q > self.pmax() {
                return Err(format!(
                    "phase {q} outside active window ({}, {}]",
                    self.completed_through(),
                    self.pmax()
                ));
            }
        }
        // x_p window consistency, definition of x (§3.1.2).
        for (&q, ph) in &self.phases {
            let bound = self.x_of(q - 1);
            let expect = match ph.min_active() {
                None => self.n.min(bound),
                Some(mn) => (mn - 1).min(bound),
            };
            if ph.x != expect {
                return Err(format!("x_{q} = {} but definition gives {expect}", ph.x));
            }
            let mx = self.m[ph.x as usize];
            // Definition (9): partial pairs have m(x_p) < v.
            for &w in &ph.partial {
                if w <= mx {
                    return Err(format!("({w}, {q}) in partial but w ≤ m(x_{q}) = {mx}"));
                }
                if !ph.inbox.contains_key(&w) {
                    return Err(format!("({w}, {q}) in partial without messages"));
                }
            }
            // Definition (7): full pairs have x_p < v ≤ m(x_p).
            for &w in &ph.full {
                if w <= ph.x || w > mx {
                    return Err(format!(
                        "({w}, {q}) in full but not in (x_{q}, m(x_{q})] = ({}, {mx}]",
                        ph.x
                    ));
                }
                if !self.vertex_full[w as usize].contains(&q) {
                    return Err(format!("vertex_full missing ({w}, {q})"));
                }
            }
        }
        // vertex_full mirrors the per-phase full sets.
        for (w, phases) in self.vertex_full.iter().enumerate().skip(1) {
            for &q in phases {
                if !self
                    .phases
                    .get(&q)
                    .is_some_and(|ph| ph.full.contains(&(w as Idx)))
                {
                    return Err(format!("vertex_full has stale ({w}, {q})"));
                }
            }
            // Definition (8): the ready pair is the minimal full phase.
            match (self.ready_phase[w], phases.first()) {
                (Some(rp), Some(&mn)) if rp != mn => {
                    return Err(format!(
                        "vertex {w}: ready phase {rp} is not the minimal full phase {mn}"
                    ));
                }
                (Some(rp), None) => {
                    return Err(format!("vertex {w}: ready phase {rp} but no full pairs"));
                }
                (None, Some(&mn)) => {
                    return Err(format!(
                        "vertex {w}: full pair at phase {mn} but nothing ready \
                         (every vertex with full pairs must have its minimum ready)"
                    ));
                }
                _ => {}
            }
        }
        // Monotonicity of x across phases (serializability guard).
        let mut prev = self.n;
        for ph in self.phases.values() {
            if ph.x > prev {
                return Err("x_p exceeds x_{p-1}".into());
            }
            prev = ph.x;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph::{generators, Numbering};

    fn state_for(dag: &ec_graph::Dag) -> SchedState {
        let numbering = Numbering::compute(dag);
        SchedState::new(numbering.m_table())
    }

    /// Executes every returned task immediately with the given output
    /// function, breadth-first, checking invariants after each commit.
    fn drain(
        st: &mut SchedState,
        mut pending: Vec<Task>,
        outputs: &mut impl FnMut(Idx, u64) -> Vec<(Idx, Value)>,
    ) -> Vec<(Idx, u64)> {
        let mut executed = Vec::new();
        while let Some(task) = pending.pop() {
            executed.push((task.idx, task.phase));
            let outs = outputs(task.idx, task.phase);
            let tr = st.finish_execution(task.idx, task.phase, outs);
            st.check_invariants().unwrap();
            pending.extend(tr.tasks);
        }
        executed
    }

    #[test]
    fn single_vertex_phases_complete() {
        let mut dag = ec_graph::Dag::new();
        dag.add_vertex("only");
        let mut st = state_for(&dag);
        st.check_invariants().unwrap();

        let (p1, tr) = st.start_phase();
        assert_eq!(p1, 1);
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(
            tr.tasks[0],
            Task {
                idx: 1,
                phase: 1,
                inputs: vec![]
            }
        );
        st.check_invariants().unwrap();

        let tr = st.finish_execution(1, 1, vec![]);
        assert_eq!(tr.phases_completed, 1);
        assert!(tr.tasks.is_empty());
        assert_eq!(st.completed_through(), 1);
        st.check_invariants().unwrap();
    }

    #[test]
    fn chain_propagates_messages() {
        let dag = generators::chain(3);
        let mut st = state_for(&dag);
        let (_, tr) = st.start_phase();
        assert_eq!(tr.tasks.len(), 1); // one source

        // Source emits to vertex 2; 2 becomes full+ready at once because
        // x_1 advances to 1 and m(1) = 2.
        let tr = st.finish_execution(1, 1, vec![(2, Value::Int(10))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 2);
        assert_eq!(tr.tasks[0].inputs, vec![(1, Value::Int(10))]);

        let tr = st.finish_execution(2, 1, vec![(3, Value::Int(20))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 3);

        let tr = st.finish_execution(3, 1, vec![]);
        assert_eq!(tr.phases_completed, 1);
        assert_eq!(st.completed_through(), 1);
    }

    #[test]
    fn silence_completes_phase_without_executing_downstream() {
        // When the source emits nothing, the phase completes with only
        // the source executed — information conveyed by absence.
        let dag = generators::chain(4);
        let mut st = state_for(&dag);
        let (_, tr) = st.start_phase();
        let executed = drain(&mut st, tr.tasks, &mut |_, _| vec![]);
        assert_eq!(executed, vec![(1, 1)]);
        assert_eq!(st.completed_through(), 1);
    }

    #[test]
    fn pipelined_phases_respect_ready_rule() {
        let dag = generators::chain(3);
        let mut st = state_for(&dag);
        let (_, tr1) = st.start_phase();
        let (_, tr2) = st.start_phase();
        st.check_invariants().unwrap();
        // Source ready for phase 1 only; phase 2 is full but not ready.
        assert_eq!(tr1.tasks.len(), 1);
        assert!(tr2.tasks.is_empty());
        assert_eq!(st.snapshot().ready(), vec![(1, 1)]);
        assert_eq!(st.snapshot().full(), vec![(1, 1), (1, 2)]);

        // Finishing (1,1) readies both (2,1) (via message) and (1,2).
        let tr = st.finish_execution(1, 1, vec![(2, Value::Int(1))]);
        st.check_invariants().unwrap();
        let mut ready: Vec<(Idx, u64)> = tr.tasks.iter().map(|t| (t.idx, t.phase)).collect();
        ready.sort_unstable();
        assert_eq!(ready, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn no_overtaking_x_clamped() {
        // Phase 2 cannot advance its frontier beyond phase 1's.
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        st.start_phase();
        st.start_phase();
        // Execute (1,1) emitting nothing; then (1,2) emitting to 2.
        let tr = st.finish_execution(1, 1, vec![]);
        assert_eq!(tr.tasks.len(), 1); // (1,2) ready
                                       // Phase 1 complete, x_1 = N = 2.
        assert_eq!(st.completed_through(), 1);
        let tr = st.finish_execution(1, 2, vec![(2, Value::Int(5))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 2);
        let tr = st.finish_execution(2, 2, vec![]);
        assert_eq!(tr.phases_completed, 1);
        assert_eq!(st.completed_through(), 2);
    }

    #[test]
    fn x_clamp_blocks_later_phase_completion() {
        // Even if phase 2 has no active pairs left, it is not complete
        // while phase 1 is still executing (x_2 ≤ x_1 < N).
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        st.start_phase(); // phase 1: (1,1) ready
        st.start_phase(); // phase 2: (1,2) full, not ready
                          // Finish (1,1) with an output; (2,1) and (1,2) become ready.
        let tr = st.finish_execution(1, 1, vec![(2, Value::Int(1))]);
        let mut pairs: Vec<_> = tr.tasks.iter().map(|t| (t.idx, t.phase)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (2, 1)]);
        // Finish (1,2) silently. Phase 2 now has no active pairs, but
        // phase 1 still does — phase 2 must not complete.
        let tr = st.finish_execution(1, 2, vec![]);
        assert_eq!(tr.phases_completed, 0);
        assert_eq!(st.x_of(2), st.x_of(1));
        assert!(st.x_of(1) < st.n());
        st.check_invariants().unwrap();
        // Finishing (2,1) completes both phases in order.
        let tr = st.finish_execution(2, 1, vec![]);
        assert_eq!(tr.phases_completed, 2);
        assert_eq!(st.completed_through(), 2);
    }

    #[test]
    fn diamond_join_waits_for_both_branches() {
        // diamond: 1 -> {2, 3} -> 4 (schedule indices).
        let dag = generators::diamond();
        let mut st = state_for(&dag);
        let (_, tr) = st.start_phase();
        assert_eq!(tr.tasks.len(), 1);

        let tr = st.finish_execution(1, 1, vec![(2, Value::Int(1)), (3, Value::Int(2))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 2); // both branches ready

        // Finish one branch; 4 has a message but is only partial until
        // the other branch finishes.
        let tr = st.finish_execution(2, 1, vec![(4, Value::Int(10))]);
        st.check_invariants().unwrap();
        assert!(tr.tasks.is_empty());
        assert_eq!(st.snapshot().partial(), vec![(4, 1)]);

        let tr = st.finish_execution(3, 1, vec![(4, Value::Int(20))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 4);
        // Messages sorted by producer index.
        assert_eq!(
            tr.tasks[0].inputs,
            vec![(2, Value::Int(10)), (3, Value::Int(20))]
        );
    }

    #[test]
    fn join_fires_with_single_branch_when_other_silent() {
        let dag = generators::diamond();
        let mut st = state_for(&dag);
        let (_, tr) = st.start_phase();
        let _ = tr;
        let _ = st.finish_execution(1, 1, vec![(2, Value::Int(1)), (3, Value::Int(2))]);
        // Branch 2 emits; branch 3 is silent. The join must still
        // execute (with just one fresh input) once branch 3 finishes —
        // the absence of 3's message is information.
        let tr = st.finish_execution(2, 1, vec![(4, Value::Int(10))]);
        assert!(tr.tasks.is_empty());
        let tr = st.finish_execution(3, 1, vec![]);
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].inputs, vec![(2, Value::Int(10))]);
        let tr = st.finish_execution(4, 1, vec![]);
        assert_eq!(tr.phases_completed, 1);
    }

    #[test]
    fn many_phases_pipeline_on_chain() {
        // Start 5 phases on a 5-chain; execute greedily; all complete.
        let dag = generators::chain(5);
        let mut st = state_for(&dag);
        let mut pending: Vec<Task> = Vec::new();
        for _ in 0..5 {
            let (_, tr) = st.start_phase();
            pending.extend(tr.tasks);
            st.check_invariants().unwrap();
        }
        let executed = drain(&mut st, pending, &mut |v, _| {
            if v < 5 {
                vec![(v + 1, Value::Int(v as i64))]
            } else {
                vec![]
            }
        });
        assert_eq!(executed.len(), 25); // 5 vertices × 5 phases
        assert_eq!(st.completed_through(), 5);
        assert_eq!(st.inflight(), 0);
    }

    #[test]
    fn exactly_once_execution() {
        // Under a random execution order, every pair is executed at most
        // once and everything that should execute does.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let dag = generators::layered(4, 3, 2, 3);
        let numbering = Numbering::compute(&dag);
        let n = numbering.len() as Idx;
        let mut st = SchedState::new(numbering.m_table());
        let mut pending: Vec<Task> = Vec::new();
        let phases = 4u64;
        for _ in 0..phases {
            let (_, tr) = st.start_phase();
            pending.extend(tr.tasks);
        }
        let mut seen = std::collections::HashSet::new();
        // Everything broadcasts, so all pairs execute.
        let succs_of = |v: Idx| -> Vec<Idx> {
            let vid = numbering.vertex_at(v);
            dag.succs(vid)
                .iter()
                .map(|&s| numbering.index_of(s))
                .collect()
        };
        while !pending.is_empty() {
            pending.shuffle(&mut rng);
            let task = pending.pop().unwrap();
            assert!(
                seen.insert((task.idx, task.phase)),
                "pair executed twice: {:?}",
                (task.idx, task.phase)
            );
            let outs: Vec<(Idx, Value)> = succs_of(task.idx)
                .into_iter()
                .map(|s| (s, Value::Int(1)))
                .collect();
            let tr = st.finish_execution(task.idx, task.phase, outs);
            st.check_invariants().unwrap();
            pending.extend(tr.tasks);
        }
        assert_eq!(seen.len(), (n as u64 * phases) as usize);
        assert_eq!(st.completed_through(), phases);
    }

    #[test]
    fn snapshot_and_trace() {
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        st.enable_trace();
        let (_, tr) = st.start_phase();
        let t = &tr.tasks;
        assert_eq!(t.len(), 1);
        st.finish_execution(1, 1, vec![(2, Value::Int(1))]);
        st.finish_execution(2, 1, vec![]);
        let trace = st.take_trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace.steps[0].event, TraceEvent::PhaseStarted(1)));
        assert_eq!(trace.execution_order(), vec![(1, 1), (2, 1)]);
        // After (1,1): (2,1) is full+ready, x_1 = 1.
        let after = &trace.steps[1].after;
        assert_eq!(after.ready(), vec![(2, 1)]);
        assert_eq!(after.x_of(1), Some(1));
        // After (2,1): everything done, no active phases.
        assert!(trace.steps[2].after.entries.is_empty());
    }

    #[test]
    fn x_of_outside_window() {
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        assert_eq!(st.x_of(1), 0); // unstarted
        st.start_phase();
        st.finish_execution(1, 1, vec![]);
        assert_eq!(st.completed_through(), 1);
        assert_eq!(st.x_of(1), st.n()); // completed
        assert_eq!(st.x_of(99), 0);
    }
}
