//! Scheduler state: the data structures of Listings 1 and 2.
//!
//! [`SchedState`] is the structure the paper's computation and
//! environment processes manipulate under the global lock. It maintains,
//! faithfully to definitions (7)–(9):
//!
//! * the **partial** set — vertex-phase pairs with at least one waiting
//!   message but not yet a full set of inputs (`m(x_p) < v`);
//! * the **full** set — pairs with sufficient information to execute
//!   (`x_p < v ≤ m(x_p)` and a waiting message);
//! * the **ready** set — full pairs whose phase is minimal among the
//!   full pairs of their vertex (at most one per vertex, so it is stored
//!   as a per-vertex `Option<phase>`);
//! * the per-phase frontier `x_p` — the highest index such that
//!   `x_p ≤ x_{p−1}` and all vertices indexed `x_p` and lower have
//!   finished phase `p`;
//! * `pmax` / `next` — the highest started phase and the next to start.
//!
//! Instead of the paper's linear scans (statements 1.14–1.15 and
//! 1.24–1.27), pairs are kept in per-phase **index bitsets** so the
//! minimum active index and the "newly full" range are word-parallel
//! scans — these are the "optimizations and custom data structures" the
//! prototype alludes to in §4. Because this code runs inside the global
//! lock on every execution, it is also engineered to be allocation-free
//! in steady state:
//!
//! * active phases live in a ring (`VecDeque`) — phases start at the
//!   back and complete at the front in order, so lookups are O(1)
//!   arithmetic instead of `BTreeMap` searches;
//! * completed [`PhaseState`]s are recycled through a pool, so starting
//!   a phase allocates nothing once the in-flight window has been
//!   visited once;
//! * inboxes are per-vertex slots in the phase state, not a `HashMap`;
//! * transitions are written into a caller-owned scratch
//!   ([`Transition`]) that each worker reuses across executions.
//!
//! The scans' *semantics* are reproduced exactly; the invariant checker
//! used in tests re-derives every set from the raw definitions and
//! compares.
//!
//! The paper's ghost variable `msg(v,p)` corresponds to membership in
//! `partial ∪ full ∪ ready`: a pair holds messages from its creation
//! until its execution is finished (messages are physically handed to
//! the worker at ready-promotion time, but logically they remain "on the
//! input" until `finish_execution`, matching §3.1.2).

use crate::trace::{SetMembership, SetSnapshot, Trace, TraceEvent, TraceStep};
use ec_events::Value;
use std::collections::VecDeque;

/// 1-based schedule index (the paper's vertex number).
pub(crate) type Idx = u32;

/// A unit of work handed to a computation process: execute `idx` for
/// `phase` with the given fresh inputs (sorted by producer index).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Task {
    pub idx: Idx,
    pub phase: u64,
    pub inputs: Vec<(Idx, Value)>,
}

/// A set of schedule indices (`1..=N`), stored as a bitmap. All hot
/// operations are word-parallel; `N` is fixed at construction.
#[derive(Debug, Clone, Default)]
struct IdxSet {
    words: Vec<u64>,
}

impl IdxSet {
    fn for_n(n: Idx) -> IdxSet {
        IdxSet {
            words: vec![0; (n as usize + 1).div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, i: Idx) {
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: Idx) -> bool {
        let w = &mut self.words[(i / 64) as usize];
        let bit = 1u64 << (i % 64);
        let was = *w & bit != 0;
        *w &= !bit;
        was
    }

    #[inline]
    fn contains(&self, i: Idx) -> bool {
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Smallest index in `self ∪ other` (the sets must be same-sized).
    fn min_union(&self, other: &IdxSet) -> Option<Idx> {
        for (w, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let or = a | b;
            if or != 0 {
                return Some(w as Idx * 64 + or.trailing_zeros() as Idx);
            }
        }
        None
    }

    /// Removes every index `≤ bound` and appends them (ascending) to
    /// `out`.
    fn take_up_to(&mut self, bound: Idx, out: &mut Vec<Idx>) {
        let last_word = (bound / 64) as usize;
        for w in 0..=last_word.min(self.words.len() - 1) {
            let mask = if w == last_word && bound % 64 != 63 {
                (1u64 << (bound % 64 + 1)) - 1
            } else {
                u64::MAX
            };
            let mut taken = self.words[w] & mask;
            self.words[w] &= !mask;
            while taken != 0 {
                let b = taken.trailing_zeros();
                out.push(w as Idx * 64 + b as Idx);
                taken &= taken - 1;
            }
        }
    }

    /// Ascending iteration (diagnostics and invariant checks only).
    fn iter(&self) -> impl Iterator<Item = Idx> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let b = word.trailing_zeros();
                word &= word - 1;
                Some(w as Idx * 64 + b as Idx)
            })
        })
    }
}

/// Per-phase scheduling state. Pooled: completed phases are recycled
/// into the next started phase without reallocating.
#[derive(Debug)]
struct PhaseState {
    /// Pairs with messages but not enough information (definition 9).
    partial: IdxSet,
    /// Pairs with sufficient information (definition 7).
    full: IdxSet,
    /// The frontier `x_p`.
    x: Idx,
    /// Undelivered messages per consumer: `inbox[v - 1]` holds
    /// `(producer, value)` pairs for vertex `v`.
    inbox: Vec<Vec<(Idx, Value)>>,
}

impl PhaseState {
    fn for_n(n: Idx) -> PhaseState {
        PhaseState {
            partial: IdxSet::for_n(n),
            full: IdxSet::for_n(n),
            x: 0,
            inbox: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Prepares a pooled state for reuse. Inboxes are already empty:
    /// completion requires every message to have been delivered.
    fn reset(&mut self) {
        self.partial.clear();
        self.full.clear();
        self.x = 0;
    }

    fn min_active(&self) -> Option<Idx> {
        self.partial.min_union(&self.full)
    }
}

/// Outcome of a state transition: pairs that became ready (to enqueue)
/// and how many phases completed. Reused across calls — the engine
/// keeps one per worker and [`SchedState`] methods append to it.
#[derive(Debug, Default)]
pub(crate) struct Transition {
    pub tasks: Vec<Task>,
    pub phases_completed: u64,
}

impl Transition {
    /// Clears the scratch for the next transition (tasks are normally
    /// drained by the enqueue path; the counter must be reset).
    pub fn reset(&mut self) {
        self.tasks.clear();
        self.phases_completed = 0;
    }
}

/// The shared scheduler state (guarded by the engine's global lock).
pub(crate) struct SchedState {
    /// Number of vertices `N`.
    n: Idx,
    /// The numbering's `m` table, `m[0..=N]`.
    m: Vec<Idx>,
    /// Highest phase started (0 before any).
    pmax: u64,
    /// Next phase the environment will start.
    next: u64,
    /// All phases `≤ completed_through` have `x = N`.
    completed_through: u64,
    /// Active (started, incomplete) phases, in order: `ring[i]` is
    /// phase `base + i`. Phases start at the back and complete at the
    /// front (x_p monotonicity guarantees in-order completion).
    ring: VecDeque<PhaseState>,
    /// Phase number of `ring[0]` (meaningful only when non-empty).
    base: u64,
    /// Recycled phase states.
    pool: Vec<PhaseState>,
    /// Phases in the full set, per vertex (index 0 unused): ascending.
    vertex_full: Vec<VecDeque<u64>>,
    /// The unique ready phase per vertex, if any (index 0 unused).
    ready_phase: Vec<Option<u64>>,
    /// Scratch for promotion scans (single-threaded under the lock).
    movers: Vec<Idx>,
    /// Set when a computation process fails; drains the run.
    pub failed: Option<String>,
    /// Optional Figure-3-style trace.
    trace: Option<Trace>,
}

impl SchedState {
    /// Initialises the state for a graph whose numbering produced
    /// `m_table` (`m[0..=N]`) — the environment process's statements
    /// 2.2–2.7.
    pub fn new(m_table: &[Idx]) -> SchedState {
        let n = (m_table.len() - 1) as Idx;
        SchedState {
            n,
            m: m_table.to_vec(),
            pmax: 0,
            next: 1,
            completed_through: 0,
            ring: VecDeque::new(),
            base: 1,
            pool: Vec::new(),
            vertex_full: vec![VecDeque::new(); n as usize + 1],
            ready_phase: vec![None; n as usize + 1],
            movers: Vec::new(),
            failed: None,
            trace: None,
        }
    }

    /// Re-bases the phase counters so the next started phase is
    /// `base + 1` — resuming a run whose phases `1..=base` completed in
    /// a previous process (checkpoint/restore). Only valid before any
    /// phase has started.
    pub fn resume_from(&mut self, base: u64) {
        assert_eq!(
            (self.pmax, self.completed_through),
            (0, 0),
            "resume_from on a state that has already started phases"
        );
        self.pmax = base;
        self.next = base + 1;
        self.completed_through = base;
    }

    /// Enables Figure-3-style tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// Takes the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Number of vertices.
    #[allow(dead_code)] // used by the state-machine tests
    pub fn n(&self) -> Idx {
        self.n
    }

    /// Highest phase started.
    pub fn pmax(&self) -> u64 {
        self.pmax
    }

    /// Next phase the environment will start.
    pub fn next(&self) -> u64 {
        self.next
    }

    /// All phases up to and including this are complete.
    pub fn completed_through(&self) -> u64 {
        self.completed_through
    }

    /// Number of started-but-incomplete phases.
    pub fn inflight(&self) -> u64 {
        self.pmax.saturating_sub(self.completed_through)
    }

    #[inline]
    fn ph(&self, p: u64) -> &PhaseState {
        &self.ring[(p - self.base) as usize]
    }

    #[inline]
    fn ph_mut(&mut self, p: u64) -> &mut PhaseState {
        &mut self.ring[(p - self.base) as usize]
    }

    /// `x_p` for any phase: `N` for completed phases, 0 for unstarted
    /// ones, the stored frontier otherwise.
    pub fn x_of(&self, p: u64) -> Idx {
        if p <= self.completed_through {
            self.n
        } else if p > self.pmax {
            0
        } else {
            self.ph(p).x
        }
    }

    /// Starts the next phase (statements 2.11–2.19): inserts `(s, next)`
    /// for every source into the full set, promotes newly ready pairs
    /// into `out`, and advances `next`. Returns the phase number.
    pub fn start_phase(&mut self, out: &mut Transition) -> u64 {
        self.start_phase_filtered(out, |_| true)
    }

    /// Like [`start_phase`](Self::start_phase), but inserts only the
    /// sources for which `active` returns true — silence-aware
    /// admission. The caller asserts that every skipped source's
    /// execution would be a guaranteed no-op this phase (poll `None`,
    /// emit nothing, change no state); the streaming runtime knows this
    /// for its live sources because *it* staged their bins. The paper's
    /// "information in the absence of messages" applied one level up:
    /// a provably silent execution need not be scheduled at all.
    ///
    /// The frontier `x_p` is set to its definitional value over the
    /// inserted set, so invariants hold with gaps below `m(0)`; a phase
    /// whose active set is empty completes as soon as its predecessors
    /// have (immediately, if they already did — `out.phases_completed`
    /// reports it, and the caller must publish that progress exactly as
    /// workers do).
    pub fn start_phase_filtered(
        &mut self,
        out: &mut Transition,
        mut active: impl FnMut(Idx) -> bool,
    ) -> u64 {
        let p = self.next;
        self.pmax = p;
        self.next += 1;
        let st = match self.pool.pop() {
            Some(mut st) => {
                st.reset();
                st
            }
            None => PhaseState::for_n(self.n),
        };
        if self.ring.is_empty() {
            self.base = p;
        }
        self.ring.push_back(st);
        // Sources are always schedule indices 1..=m(0).
        for s in 1..=self.m[0] {
            if !active(s) {
                continue;
            }
            self.ph_mut(p).full.insert(s);
            vf_insert(&mut self.vertex_full[s as usize], p);
            self.try_promote(s, &mut out.tasks);
        }
        // x_p by definition (§3.1.2) over the inserted set. With every
        // source inserted the minimum active index is 1 and this is the
        // usual 0; with gaps it may start higher, and with an empty
        // active set the phase is already past every vertex — complete
        // it now if its predecessors have completed, because no
        // execution will ever visit it.
        let bound = self.x_of(p - 1);
        let n = self.n;
        let ph = self.ph_mut(p);
        ph.x = match ph.min_active() {
            None => n.min(bound),
            Some(mn) => (mn - 1).min(bound),
        };
        if ph.x == n {
            self.advance_completed(out);
        }
        self.trace_step(TraceEvent::PhaseStarted(p));
        p
    }

    /// Commits the execution of `(v, p)` with the given outputs — the
    /// computation process's statements 1.5–1.30. Newly ready tasks and
    /// the completed-phase count are appended to `out`.
    ///
    /// `outputs` are `(successor index, value)` messages for phase `p`.
    pub fn finish_execution(
        &mut self,
        v: Idx,
        p: u64,
        outputs: Vec<(Idx, Value)>,
        out: &mut Transition,
    ) {
        let emitted = outputs.len();

        // Statements 1.5–1.7: remove (v, p) from the full and ready sets.
        {
            let ph = self.ph_mut(p);
            let was_full = ph.full.remove(v);
            debug_assert!(was_full, "({v}, {p}) finished but was not in full");
        }
        debug_assert_eq!(
            self.ready_phase[v as usize],
            Some(p),
            "({v}, {p}) finished but was not the ready pair of {v}"
        );
        self.ready_phase[v as usize] = None;
        vf_remove(&mut self.vertex_full[v as usize], p);

        // Statements 1.8–1.11: deliver outputs into the partial set.
        {
            let ph = self.ph_mut(p);
            for (w, val) in outputs {
                debug_assert!(w > v, "messages flow to higher indices only");
                debug_assert!(
                    !ph.full.contains(w),
                    "successor ({w}, {p}) cannot already be full while a \
                     predecessor was still executing"
                );
                ph.inbox[w as usize - 1].push((v, val));
                ph.partial.insert(w);
            }
        }

        // Statements 1.12–1.23: update x_p, x_{p+1}, … . The paper scans
        // to pmax; since phase i's recomputed value depends only on its
        // own (unchanged, for i > p) sets and the clamp against x_{i−1},
        // the scan can stop at the first phase whose x does not change.
        // The changed phases are therefore the contiguous range
        // `p..last_changed`.
        let mut last_changed = p; // exclusive
        let mut i = p;
        while i <= self.pmax {
            let bound = self.x_of(i - 1);
            let n = self.n;
            let ph = self.ph_mut(i);
            let new_x = match ph.min_active() {
                None => n.min(bound),
                Some(mn) => (mn - 1).min(bound),
            };
            if new_x == ph.x {
                break;
            }
            debug_assert!(new_x > ph.x, "x_p never decreases (serializability)");
            ph.x = new_x;
            i += 1;
            last_changed = i;
        }

        // Statements 1.24–1.26: promote newly full pairs. Phase p must
        // always be rechecked (new partial pairs may already satisfy
        // w ≤ m(x_p)); phases with changed x may promote as well.
        for q in p..last_changed.max(p + 1) {
            if q <= self.completed_through || q > self.pmax {
                continue;
            }
            let mx = self.m[self.x_of(q) as usize];
            let mut movers = std::mem::take(&mut self.movers);
            movers.clear();
            self.ph_mut(q).partial.take_up_to(mx, &mut movers);
            for &w in &movers {
                self.ph_mut(q).full.insert(w);
                vf_insert(&mut self.vertex_full[w as usize], q);
                self.try_promote(w, &mut out.tasks);
            }
            self.movers = movers;
        }

        // Statements 1.27–1.30 for the executed vertex: its next full
        // phase (if any) may now be ready.
        self.try_promote(v, &mut out.tasks);

        // Advance the completed frontier and recycle finished phases.
        self.advance_completed(out);

        self.trace_step(TraceEvent::Executed {
            vertex: v,
            phase: p,
            emitted,
        });
    }

    /// Pops every leading phase whose frontier has reached `N` off the
    /// active ring, recycling its state and counting it in
    /// `out.phases_completed` — the commit half shared by
    /// [`finish_execution`](Self::finish_execution) and the zero-active
    /// path of [`start_phase_filtered`](Self::start_phase_filtered).
    fn advance_completed(&mut self, out: &mut Transition) {
        while let Some(front) = self.ring.front() {
            if front.x == self.n {
                debug_assert!(front.partial.is_empty() && front.full.is_empty());
                debug_assert!(
                    front.inbox.iter().all(Vec::is_empty),
                    "completed phase must have delivered every message"
                );
                let st = self.ring.pop_front().expect("front exists");
                self.pool.push(st);
                self.completed_through = self.base;
                self.base += 1;
                out.phases_completed += 1;
            } else {
                break;
            }
        }
    }

    /// Records one trace step (no-op unless tracing is enabled).
    fn trace_step(&mut self, event: TraceEvent) {
        if self.trace.is_none() {
            return;
        }
        let after = self.snapshot();
        if let Some(trace) = &mut self.trace {
            trace.steps.push(TraceStep { event, after });
        }
    }

    /// If `w`'s minimal full phase is not yet ready, makes it ready and
    /// emits its task (statements 1.27–1.30 / 2.16–2.19). The messages
    /// accumulated for the pair are attached to the task here: once a
    /// pair is full, all of its messages have arrived (its predecessors
    /// have all finished the phase), so this hand-off is race-free.
    fn try_promote(&mut self, w: Idx, tasks: &mut Vec<Task>) {
        if self.ready_phase[w as usize].is_some() {
            return;
        }
        let q = match self.vertex_full[w as usize].front() {
            Some(&q) => q,
            None => return,
        };
        self.ready_phase[w as usize] = Some(q);
        let ph = self.ph_mut(q);
        let mut inputs = std::mem::take(&mut ph.inbox[w as usize - 1]);
        inputs.sort_by_key(|(prod, _)| *prod);
        tasks.push(Task {
            idx: w,
            phase: q,
            inputs,
        });
    }

    /// Snapshot of current set memberships (Figure 3 coordinates).
    pub fn snapshot(&self) -> SetSnapshot {
        let mut entries = Vec::new();
        let mut x = Vec::new();
        for (i, ph) in self.ring.iter().enumerate() {
            let q = self.base + i as u64;
            for w in ph.partial.iter() {
                entries.push((w, q, SetMembership::Partial));
            }
            for w in ph.full.iter() {
                let m = if self.ready_phase[w as usize] == Some(q) {
                    SetMembership::FullAndReady
                } else {
                    SetMembership::FullOnly
                };
                entries.push((w, q, m));
            }
            x.push((q, ph.x));
        }
        entries.sort_by_key(|&(v, p, _)| (p, v));
        SetSnapshot { entries, x }
    }

    /// Re-derives every invariant from the paper's definitions and
    /// checks the incremental state against them. Used by tests after
    /// every transition (`check_invariants` feature of the engine).
    pub fn check_invariants(&self) -> Result<(), String> {
        // The active window covers exactly (completed_through, pmax].
        if !self.ring.is_empty() {
            let first = self.base;
            let last = self.base + self.ring.len() as u64 - 1;
            if first <= self.completed_through() || last > self.pmax() {
                return Err(format!(
                    "phases [{first}, {last}] outside active window ({}, {}]",
                    self.completed_through(),
                    self.pmax()
                ));
            }
        }
        // x_p window consistency, definition of x (§3.1.2).
        for (i, ph) in self.ring.iter().enumerate() {
            let q = self.base + i as u64;
            let bound = self.x_of(q - 1);
            let expect = match ph.min_active() {
                None => self.n.min(bound),
                Some(mn) => (mn - 1).min(bound),
            };
            if ph.x != expect {
                return Err(format!("x_{q} = {} but definition gives {expect}", ph.x));
            }
            let mx = self.m[ph.x as usize];
            // Definition (9): partial pairs have m(x_p) < v.
            for w in ph.partial.iter() {
                if w <= mx {
                    return Err(format!("({w}, {q}) in partial but w ≤ m(x_{q}) = {mx}"));
                }
                if ph.inbox[w as usize - 1].is_empty() {
                    return Err(format!("({w}, {q}) in partial without messages"));
                }
            }
            // Definition (7): full pairs have x_p < v ≤ m(x_p).
            for w in ph.full.iter() {
                if w <= ph.x || w > mx {
                    return Err(format!(
                        "({w}, {q}) in full but not in (x_{q}, m(x_{q})] = ({}, {mx}]",
                        ph.x
                    ));
                }
                if !self.vertex_full[w as usize].contains(&q) {
                    return Err(format!("vertex_full missing ({w}, {q})"));
                }
            }
        }
        // vertex_full mirrors the per-phase full sets (and is sorted).
        for (w, phases) in self.vertex_full.iter().enumerate().skip(1) {
            if phases
                .iter()
                .zip(phases.iter().skip(1))
                .any(|(a, b)| a >= b)
            {
                return Err(format!("vertex_full[{w}] is not strictly ascending"));
            }
            for &q in phases {
                let in_window = q > self.completed_through && q <= self.pmax;
                if !in_window || !self.ph(q).full.contains(w as Idx) {
                    return Err(format!("vertex_full has stale ({w}, {q})"));
                }
            }
            // Definition (8): the ready pair is the minimal full phase.
            match (self.ready_phase[w], phases.front()) {
                (Some(rp), Some(&mn)) if rp != mn => {
                    return Err(format!(
                        "vertex {w}: ready phase {rp} is not the minimal full phase {mn}"
                    ));
                }
                (Some(rp), None) => {
                    return Err(format!("vertex {w}: ready phase {rp} but no full pairs"));
                }
                (None, Some(&mn)) => {
                    return Err(format!(
                        "vertex {w}: full pair at phase {mn} but nothing ready \
                         (every vertex with full pairs must have its minimum ready)"
                    ));
                }
                _ => {}
            }
        }
        // Monotonicity of x across phases (serializability guard).
        let mut prev = self.n;
        for ph in self.ring.iter() {
            if ph.x > prev {
                return Err("x_p exceeds x_{p-1}".into());
            }
            prev = ph.x;
        }
        Ok(())
    }
}

/// Inserts `q` into an ascending deque (common case: `q` is larger than
/// everything present, i.e. `push_back`).
fn vf_insert(dq: &mut VecDeque<u64>, q: u64) {
    match dq.back() {
        None => dq.push_back(q),
        Some(&b) if b < q => dq.push_back(q),
        _ => {
            let pos = dq.partition_point(|&e| e < q);
            if dq.get(pos) != Some(&q) {
                dq.insert(pos, q);
            }
        }
    }
}

/// Removes `q` from an ascending deque (common case: `q` is the front).
fn vf_remove(dq: &mut VecDeque<u64>, q: u64) {
    match dq.front() {
        Some(&f) if f == q => {
            dq.pop_front();
        }
        _ => {
            let pos = dq.partition_point(|&e| e < q);
            if dq.get(pos) == Some(&q) {
                dq.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph::{generators, Numbering};

    fn state_for(dag: &ec_graph::Dag) -> SchedState {
        let numbering = Numbering::compute(dag);
        SchedState::new(numbering.m_table())
    }

    /// Starts a phase, returning the transition (test convenience over
    /// the out-parameter API).
    fn start(st: &mut SchedState) -> (u64, Transition) {
        let mut out = Transition::default();
        let p = st.start_phase(&mut out);
        (p, out)
    }

    /// Finishes an execution, returning the transition.
    fn finish(st: &mut SchedState, v: Idx, p: u64, outputs: Vec<(Idx, Value)>) -> Transition {
        let mut out = Transition::default();
        st.finish_execution(v, p, outputs, &mut out);
        out
    }

    /// Executes every returned task immediately with the given output
    /// function, breadth-first, checking invariants after each commit.
    fn drain(
        st: &mut SchedState,
        mut pending: Vec<Task>,
        outputs: &mut impl FnMut(Idx, u64) -> Vec<(Idx, Value)>,
    ) -> Vec<(Idx, u64)> {
        let mut executed = Vec::new();
        while let Some(task) = pending.pop() {
            executed.push((task.idx, task.phase));
            let outs = outputs(task.idx, task.phase);
            let tr = finish(st, task.idx, task.phase, outs);
            st.check_invariants().unwrap();
            pending.extend(tr.tasks);
        }
        executed
    }

    #[test]
    fn single_vertex_phases_complete() {
        let mut dag = ec_graph::Dag::new();
        dag.add_vertex("only");
        let mut st = state_for(&dag);
        st.check_invariants().unwrap();

        let (p1, tr) = start(&mut st);
        assert_eq!(p1, 1);
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(
            tr.tasks[0],
            Task {
                idx: 1,
                phase: 1,
                inputs: vec![]
            }
        );
        st.check_invariants().unwrap();

        let tr = finish(&mut st, 1, 1, vec![]);
        assert_eq!(tr.phases_completed, 1);
        assert!(tr.tasks.is_empty());
        assert_eq!(st.completed_through(), 1);
        st.check_invariants().unwrap();
    }

    #[test]
    fn chain_propagates_messages() {
        let dag = generators::chain(3);
        let mut st = state_for(&dag);
        let (_, tr) = start(&mut st);
        assert_eq!(tr.tasks.len(), 1); // one source

        // Source emits to vertex 2; 2 becomes full+ready at once because
        // x_1 advances to 1 and m(1) = 2.
        let tr = finish(&mut st, 1, 1, vec![(2, Value::Int(10))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 2);
        assert_eq!(tr.tasks[0].inputs, vec![(1, Value::Int(10))]);

        let tr = finish(&mut st, 2, 1, vec![(3, Value::Int(20))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 3);

        let tr = finish(&mut st, 3, 1, vec![]);
        assert_eq!(tr.phases_completed, 1);
        assert_eq!(st.completed_through(), 1);
    }

    #[test]
    fn silence_completes_phase_without_executing_downstream() {
        // When the source emits nothing, the phase completes with only
        // the source executed — information conveyed by absence.
        let dag = generators::chain(4);
        let mut st = state_for(&dag);
        let (_, tr) = start(&mut st);
        let executed = drain(&mut st, tr.tasks, &mut |_, _| vec![]);
        assert_eq!(executed, vec![(1, 1)]);
        assert_eq!(st.completed_through(), 1);
    }

    #[test]
    fn pipelined_phases_respect_ready_rule() {
        let dag = generators::chain(3);
        let mut st = state_for(&dag);
        let (_, tr1) = start(&mut st);
        let (_, tr2) = start(&mut st);
        st.check_invariants().unwrap();
        // Source ready for phase 1 only; phase 2 is full but not ready.
        assert_eq!(tr1.tasks.len(), 1);
        assert!(tr2.tasks.is_empty());
        assert_eq!(st.snapshot().ready(), vec![(1, 1)]);
        assert_eq!(st.snapshot().full(), vec![(1, 1), (1, 2)]);

        // Finishing (1,1) readies both (2,1) (via message) and (1,2).
        let tr = finish(&mut st, 1, 1, vec![(2, Value::Int(1))]);
        st.check_invariants().unwrap();
        let mut ready: Vec<(Idx, u64)> = tr.tasks.iter().map(|t| (t.idx, t.phase)).collect();
        ready.sort_unstable();
        assert_eq!(ready, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn no_overtaking_x_clamped() {
        // Phase 2 cannot advance its frontier beyond phase 1's.
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        start(&mut st);
        start(&mut st);
        // Execute (1,1) emitting nothing; then (1,2) emitting to 2.
        let tr = finish(&mut st, 1, 1, vec![]);
        assert_eq!(tr.tasks.len(), 1); // (1,2) ready
                                       // Phase 1 complete, x_1 = N = 2.
        assert_eq!(st.completed_through(), 1);
        let tr = finish(&mut st, 1, 2, vec![(2, Value::Int(5))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 2);
        let tr = finish(&mut st, 2, 2, vec![]);
        assert_eq!(tr.phases_completed, 1);
        assert_eq!(st.completed_through(), 2);
    }

    #[test]
    fn x_clamp_blocks_later_phase_completion() {
        // Even if phase 2 has no active pairs left, it is not complete
        // while phase 1 is still executing (x_2 ≤ x_1 < N).
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        start(&mut st); // phase 1: (1,1) ready
        start(&mut st); // phase 2: (1,2) full, not ready
                        // Finish (1,1) with an output; (2,1) and (1,2) become ready.
        let tr = finish(&mut st, 1, 1, vec![(2, Value::Int(1))]);
        let mut pairs: Vec<_> = tr.tasks.iter().map(|t| (t.idx, t.phase)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (2, 1)]);
        // Finish (1,2) silently. Phase 2 now has no active pairs, but
        // phase 1 still does — phase 2 must not complete.
        let tr = finish(&mut st, 1, 2, vec![]);
        assert_eq!(tr.phases_completed, 0);
        assert_eq!(st.x_of(2), st.x_of(1));
        assert!(st.x_of(1) < st.n());
        st.check_invariants().unwrap();
        // Finishing (2,1) completes both phases in order.
        let tr = finish(&mut st, 2, 1, vec![]);
        assert_eq!(tr.phases_completed, 2);
        assert_eq!(st.completed_through(), 2);
    }

    #[test]
    fn diamond_join_waits_for_both_branches() {
        // diamond: 1 -> {2, 3} -> 4 (schedule indices).
        let dag = generators::diamond();
        let mut st = state_for(&dag);
        let (_, tr) = start(&mut st);
        assert_eq!(tr.tasks.len(), 1);

        let tr = finish(&mut st, 1, 1, vec![(2, Value::Int(1)), (3, Value::Int(2))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 2); // both branches ready

        // Finish one branch; 4 has a message but is only partial until
        // the other branch finishes.
        let tr = finish(&mut st, 2, 1, vec![(4, Value::Int(10))]);
        st.check_invariants().unwrap();
        assert!(tr.tasks.is_empty());
        assert_eq!(st.snapshot().partial(), vec![(4, 1)]);

        let tr = finish(&mut st, 3, 1, vec![(4, Value::Int(20))]);
        st.check_invariants().unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].idx, 4);
        // Messages sorted by producer index.
        assert_eq!(
            tr.tasks[0].inputs,
            vec![(2, Value::Int(10)), (3, Value::Int(20))]
        );
    }

    #[test]
    fn join_fires_with_single_branch_when_other_silent() {
        let dag = generators::diamond();
        let mut st = state_for(&dag);
        let (_, tr) = start(&mut st);
        let _ = tr;
        let _ = finish(&mut st, 1, 1, vec![(2, Value::Int(1)), (3, Value::Int(2))]);
        // Branch 2 emits; branch 3 is silent. The join must still
        // execute (with just one fresh input) once branch 3 finishes —
        // the absence of 3's message is information.
        let tr = finish(&mut st, 2, 1, vec![(4, Value::Int(10))]);
        assert!(tr.tasks.is_empty());
        let tr = finish(&mut st, 3, 1, vec![]);
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].inputs, vec![(2, Value::Int(10))]);
        let tr = finish(&mut st, 4, 1, vec![]);
        assert_eq!(tr.phases_completed, 1);
    }

    #[test]
    fn many_phases_pipeline_on_chain() {
        // Start 5 phases on a 5-chain; execute greedily; all complete.
        let dag = generators::chain(5);
        let mut st = state_for(&dag);
        let mut pending: Vec<Task> = Vec::new();
        for _ in 0..5 {
            let (_, tr) = start(&mut st);
            pending.extend(tr.tasks);
            st.check_invariants().unwrap();
        }
        let executed = drain(&mut st, pending, &mut |v, _| {
            if v < 5 {
                vec![(v + 1, Value::Int(v as i64))]
            } else {
                vec![]
            }
        });
        assert_eq!(executed.len(), 25); // 5 vertices × 5 phases
        assert_eq!(st.completed_through(), 5);
        assert_eq!(st.inflight(), 0);
    }

    #[test]
    fn exactly_once_execution() {
        // Under a random execution order, every pair is executed at most
        // once and everything that should execute does.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let dag = generators::layered(4, 3, 2, 3);
        let numbering = Numbering::compute(&dag);
        let n = numbering.len() as Idx;
        let mut st = SchedState::new(numbering.m_table());
        let mut pending: Vec<Task> = Vec::new();
        let phases = 4u64;
        for _ in 0..phases {
            let (_, tr) = start(&mut st);
            pending.extend(tr.tasks);
        }
        let mut seen = std::collections::HashSet::new();
        // Everything broadcasts, so all pairs execute.
        let succs_of = |v: Idx| -> Vec<Idx> {
            let vid = numbering.vertex_at(v);
            dag.succs(vid)
                .iter()
                .map(|&s| numbering.index_of(s))
                .collect()
        };
        while !pending.is_empty() {
            pending.shuffle(&mut rng);
            let task = pending.pop().unwrap();
            assert!(
                seen.insert((task.idx, task.phase)),
                "pair executed twice: {:?}",
                (task.idx, task.phase)
            );
            let outs: Vec<(Idx, Value)> = succs_of(task.idx)
                .into_iter()
                .map(|s| (s, Value::Int(1)))
                .collect();
            let tr = finish(&mut st, task.idx, task.phase, outs);
            st.check_invariants().unwrap();
            pending.extend(tr.tasks);
        }
        assert_eq!(seen.len(), (n as u64 * phases) as usize);
        assert_eq!(st.completed_through(), phases);
    }

    #[test]
    fn snapshot_and_trace() {
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        st.enable_trace();
        let (_, tr) = start(&mut st);
        let t = &tr.tasks;
        assert_eq!(t.len(), 1);
        finish(&mut st, 1, 1, vec![(2, Value::Int(1))]);
        finish(&mut st, 2, 1, vec![]);
        let trace = st.take_trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace.steps[0].event, TraceEvent::PhaseStarted(1)));
        assert_eq!(trace.execution_order(), vec![(1, 1), (2, 1)]);
        // After (1,1): (2,1) is full+ready, x_1 = 1.
        let after = &trace.steps[1].after;
        assert_eq!(after.ready(), vec![(2, 1)]);
        assert_eq!(after.x_of(1), Some(1));
        // After (2,1): everything done, no active phases.
        assert!(trace.steps[2].after.entries.is_empty());
    }

    #[test]
    fn x_of_outside_window() {
        let dag = generators::chain(2);
        let mut st = state_for(&dag);
        assert_eq!(st.x_of(1), 0); // unstarted
        start(&mut st);
        finish(&mut st, 1, 1, vec![]);
        assert_eq!(st.completed_through(), 1);
        assert_eq!(st.x_of(1), st.n()); // completed
        assert_eq!(st.x_of(99), 0);
    }

    #[test]
    fn pooled_phase_states_are_reset() {
        // Phases cycling through the pool must come back clean: run a
        // few full cycles and re-derive the invariants each time.
        let dag = generators::diamond();
        let mut st = state_for(&dag);
        for round in 0..10u64 {
            let (p, tr) = start(&mut st);
            assert_eq!(p, round + 1);
            let executed = drain(&mut st, tr.tasks, &mut |v, _| match v {
                1 => vec![(2, Value::Int(1)), (3, Value::Int(2))],
                2 | 3 => vec![(4, Value::Int(3))],
                _ => vec![],
            });
            assert_eq!(executed.len(), 4);
            assert_eq!(st.completed_through(), round + 1);
        }
    }

    #[test]
    fn idx_set_operations() {
        let mut s = IdxSet::for_n(130);
        assert!(s.is_empty());
        s.insert(1);
        s.insert(64);
        s.insert(130);
        assert!(s.contains(64) && !s.contains(63));
        let mut t = IdxSet::for_n(130);
        t.insert(63);
        assert_eq!(s.min_union(&t), Some(1));
        assert_eq!(t.min_union(&IdxSet::for_n(130)), Some(63));
        let mut out = Vec::new();
        s.take_up_to(64, &mut out);
        assert_eq!(out, vec![1, 64]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![130]);
        assert!(s.remove(130));
        assert!(!s.remove(130));
        assert!(s.is_empty());
    }

    #[test]
    fn vf_insert_remove_keep_order() {
        let mut dq = VecDeque::new();
        vf_insert(&mut dq, 5);
        vf_insert(&mut dq, 2);
        vf_insert(&mut dq, 9);
        vf_insert(&mut dq, 5); // duplicate ignored
        assert_eq!(dq.iter().copied().collect::<Vec<_>>(), vec![2, 5, 9]);
        vf_remove(&mut dq, 2); // front fast path
        vf_remove(&mut dq, 9); // binary search path
        assert_eq!(dq.iter().copied().collect::<Vec<_>>(), vec![5]);
    }
}
