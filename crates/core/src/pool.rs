//! Worker thread pool.
//!
//! The paper's prototype used Java's `ThreadPoolExecutor` to host "an
//! arbitrary number" of computation processes (§3.2, §4). This is the
//! minimal Rust equivalent: named OS threads running a supplied closure,
//! joined on shutdown, with panic capture so a crashing computation
//! process surfaces as an error instead of a hang.

use std::thread::{self, JoinHandle};

/// A set of named worker threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `count` threads named `"{name}-{i}"`, each running
    /// `body(i)`.
    pub fn spawn<F>(name: &str, count: usize, body: F) -> WorkerPool
    where
        F: Fn(usize) + Send + Sync + Clone + 'static,
    {
        let handles = (0..count)
            .map(|i| {
                let body = body.clone();
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || body(i))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if the pool has no threads.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Joins all threads. Returns the panic payloads (as strings) of any
    /// workers that panicked.
    pub fn join(self) -> Vec<String> {
        let mut panics = Vec::new();
        for h in self.handles {
            if let Err(payload) = h.join() {
                panics.push(payload_to_string(&payload));
            }
        }
        panics
    }
}

/// Best-effort extraction of a panic message.
pub fn payload_to_string(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_workers_run() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let pool = WorkerPool::spawn("t", 4, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(pool.len(), 4);
        assert!(pool.join().is_empty());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_indices_distinct() {
        let seen = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let s = Arc::clone(&seen);
        let pool = WorkerPool::spawn("ix", 3, move |i| {
            s[i].fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        for a in seen.iter() {
            assert_eq!(a.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn panics_are_captured() {
        let pool = WorkerPool::spawn("boom", 2, |i| {
            if i == 1 {
                panic!("worker exploded");
            }
        });
        let panics = pool.join();
        assert_eq!(panics.len(), 1);
        assert!(panics[0].contains("worker exploded"));
    }

    #[test]
    fn empty_pool() {
        let pool = WorkerPool::spawn("none", 0, |_| {});
        assert!(pool.is_empty());
        assert!(pool.join().is_empty());
    }
}
