//! Multi-tenant execution: many engines, one worker pool.
//!
//! The paper's prototype dedicates a `ThreadPoolExecutor` to a single
//! correlation graph. At production scale a machine hosts *many*
//! independent graphs (tenants), and giving each its own pool
//! oversubscribes the cores while leaving most pools idle.
//! [`EnginePool`] is the shared substrate: one [`WorkerPool`] draining
//! one [`ShardedQueue`] whose tasks are tagged with the tenant that
//! admitted them, dispatched to that tenant's scheduler state.
//!
//! Serializability needs no new argument here: each tenant keeps its
//! own `SchedState`, vertex slots and progress condvar — the paper's
//! correctness proof is per-graph, and nothing about *which thread*
//! runs a task enters into it. What the pool adds is policy:
//!
//! * **tagging** — every task carries `(tenant, generation)`; a worker
//!   resolves the tag against the registry before executing, so tasks
//!   of a detached tenant are discarded instead of running against a
//!   dead (or recycled) slot;
//! * **per-tenant admission lanes** — a tenant's admissions land in its
//!   own injector lane of the shared [`ShardedQueue`]; workers refill
//!   in weighted round-robin over lanes, so a saturated tenant cannot
//!   starve a trickle tenant (see [`crate::shard`]);
//! * **per-tenant in-flight caps** — each tenant's engine keeps its own
//!   `max_inflight` throttle, bounding how much of the shared queue a
//!   single tenant can occupy.
//!
//! Construction: [`EngineBuilder::pooled`](crate::EngineBuilder::pooled)
//! reserves a tenant slot; [`Engine::into_live`](crate::Engine::into_live)
//! registers the engine with the pool instead of spawning private
//! workers. The pooled engine must be driven through the live API
//! (`admit` / `admit_batch`); the batch [`run`](crate::Engine::run)
//! entry point refuses, since it owns its own worker lifecycle.

use crate::engine::Shared;
use crate::error::EngineError;
use crate::pool::WorkerPool;
use crate::shard::{Dequeued, ShardedQueue};
use crate::state::{Task, Transition};
use ec_events::Value;
use ec_graph::VertexId;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// A task tagged with the tenant (and slot generation) that admitted
/// it, so shared workers can dispatch it to the right scheduler state —
/// and drop it if that tenant has since detached.
pub(crate) struct TaggedTask {
    tenant: u32,
    generation: u32,
    task: Task,
}

/// The task-queue handle every engine enqueues through.
///
/// Single-tenant engines own their queue outright (close/reopen act on
/// it, exactly the pre-pool behaviour); pooled engines share the pool's
/// queue and tag every task, and their close/reopen are no-ops — a
/// failing tenant must not stop its neighbours.
pub(crate) struct EngineQueue {
    queue: Arc<ShardedQueue<TaggedTask>>,
    tenant: u32,
    generation: u32,
    owns: bool,
}

impl EngineQueue {
    /// A private queue for a classic single-tenant engine.
    pub(crate) fn own(workers: usize) -> EngineQueue {
        EngineQueue {
            queue: Arc::new(ShardedQueue::with_lanes(workers, 1)),
            tenant: 0,
            generation: 0,
            owns: true,
        }
    }

    /// A handle into a pool's shared queue for tenant `tenant`.
    fn pooled(queue: Arc<ShardedQueue<TaggedTask>>, tenant: u32, generation: u32) -> EngineQueue {
        EngineQueue {
            queue,
            tenant,
            generation,
            owns: false,
        }
    }

    /// True if this engine shares a pool's queue.
    pub(crate) fn is_pooled(&self) -> bool {
        !self.owns
    }

    /// Enqueues one task, tagged for this engine's tenant. Worker
    /// producers push to their own shard; admission goes to the
    /// tenant's lane. Returns `false` if the queue refused (closed).
    pub(crate) fn enqueue(&self, task: Task, worker: Option<usize>) -> bool {
        let tagged = TaggedTask {
            tenant: self.tenant,
            generation: self.generation,
            task,
        };
        match worker {
            Some(w) => self.queue.enqueue(tagged, Some(w)),
            None => self.queue.enqueue_lane(tagged, self.tenant as usize),
        }
    }

    /// Blocking dequeue for a private-queue worker (single-tenant mode
    /// only — pool workers dequeue through [`PoolInner::worker_loop`]).
    pub(crate) fn dequeue(&self, worker: usize, seed: &mut u64) -> Dequeued<Task> {
        debug_assert!(self.owns, "pooled engines have no private workers");
        match self.queue.dequeue(worker, seed) {
            Dequeued::Item(t) => Dequeued::Item(t.task),
            Dequeued::Closed => Dequeued::Closed,
        }
    }

    /// Closes the queue — if this engine owns it. A pooled engine's
    /// close is a no-op: its pending tasks drain through the tenant's
    /// `failed` flag / deregistration instead.
    pub(crate) fn close(&self) {
        if self.owns {
            self.queue.close();
        }
    }

    /// Reopens an owned queue (between batch `run` calls).
    pub(crate) fn reopen(&self) {
        if self.owns {
            self.queue.reopen();
        }
    }

    /// Steal/park/wake counters of the underlying queue.
    pub(crate) fn stats(&self) -> &crate::shard::QueueStats {
        &self.queue.stats
    }

    /// Attaches a flight recorder for steal/park/wake events (first
    /// setter wins on a pool-shared queue).
    pub(crate) fn set_recorder(&self, recorder: &Arc<ec_obs::FlightRecorder>) {
        self.queue.set_recorder(recorder);
    }

    /// Per-worker shard depths of the underlying queue.
    pub(crate) fn shard_depths(&self) -> Vec<u64> {
        self.queue.shard_depths()
    }

    /// Depth of this engine's own admission lane — for a pooled engine,
    /// the tenant's queued-but-undispatched admissions.
    pub(crate) fn injector_depth(&self) -> u64 {
        self.queue.lane_depth(self.tenant as usize)
    }
}

/// One tenant slot in the registry.
struct TenantSlot {
    /// Bumped on every release, so tasks tagged by an earlier occupant
    /// of this slot can never dispatch into a later one.
    generation: u32,
    /// Reserved by a builder (or registered engine).
    reserved: bool,
    /// The engine's shared state, once registered via `into_live`.
    shared: Option<Arc<Shared>>,
}

pub(crate) struct PoolInner {
    queue: Arc<ShardedQueue<TaggedTask>>,
    tenants: RwLock<Vec<TenantSlot>>,
    workers: Mutex<Option<WorkerPool>>,
    threads: usize,
    /// Bumped on every tenant release. Workers re-validate their
    /// dispatch cache against this, so a detached tenant's leftover
    /// shard tasks are discarded (and its `Arc<Shared>` released) at
    /// the next dispatched task instead of lingering in a stale cache.
    detaches: AtomicU64,
}

impl PoolInner {
    /// The shared worker body: dequeue a tagged task, resolve the
    /// tenant, execute against that tenant's scheduler state. Tasks
    /// whose tenant has detached (generation mismatch or empty slot)
    /// are dropped; tasks of a failed tenant drain without executing,
    /// exactly as a private pool would.
    fn worker_loop(&self, worker: usize) {
        let mut seed = 0xA076_1D64_78BD_642Fu64 ^ ((worker as u64 + 1) << 21);
        let mut transition = Transition::default();
        let mut fresh: Vec<(VertexId, Value)> = Vec::new();
        // Dispatch cache: tasks arrive in per-tenant bursts (LIFO
        // locality), so remember the last resolved tenant. Keying by
        // `(tenant, generation)` means a hit can never hand a task to
        // a *later* occupant of the same slot — but it would keep
        // matching a *released* tenant's leftover shard tasks, which
        // the registry path discards. The detach-epoch check below
        // closes that hole: any release invalidates every worker's
        // cache, so post-detach tasks take the registry path (and are
        // dropped), and the dead tenant's `Arc<Shared>` is let go.
        let mut cached: Option<(u32, u32, Arc<Shared>)> = None;
        let mut seen_detaches = self.detaches.load(SeqCst);
        loop {
            // About to block on an empty queue: let go of the cached
            // `Arc<Shared>` so an idle pool does not pin the last
            // tenant's engine state (per worker, indefinitely) after
            // that tenant detaches. Racy check — an enqueue landing
            // right after it merely costs one registry lookup.
            if cached.is_some() && self.queue.is_empty() {
                cached = None;
            }
            let tagged = match self.queue.dequeue(worker, &mut seed) {
                Dequeued::Closed => return,
                Dequeued::Item(t) => t,
            };
            let detaches = self.detaches.load(SeqCst);
            if detaches != seen_detaches {
                seen_detaches = detaches;
                cached = None;
            }
            let hit = matches!(
                &cached,
                Some((t, g, _)) if *t == tagged.tenant && *g == tagged.generation
            );
            if !hit {
                let resolved = {
                    let tenants = self.tenants.read();
                    match tenants.get(tagged.tenant as usize) {
                        Some(slot) if slot.generation == tagged.generation => slot.shared.clone(),
                        _ => None,
                    }
                };
                cached = resolved.map(|s| (tagged.tenant, tagged.generation, s));
            }
            let Some((_, _, shared)) = &cached else {
                continue;
            };
            if shared.failed_fast() {
                continue; // drain this tenant without executing
            }
            shared.run_task(tagged.task, worker, &mut transition, &mut fresh);
        }
    }

    /// Reserves a free tenant slot, returning `(tenant, generation)`.
    fn reserve(&self) -> Result<(u32, u32), EngineError> {
        let mut tenants = self.tenants.write();
        for (i, slot) in tenants.iter_mut().enumerate() {
            if !slot.reserved {
                slot.reserved = true;
                return Ok((i as u32, slot.generation));
            }
        }
        Err(EngineError::Config(format!(
            "engine pool is full ({} tenant slots)",
            tenants.len()
        )))
    }

    /// Registers a live engine into its reserved slot.
    fn register(&self, tenant: u32, generation: u32, shared: Arc<Shared>) {
        let mut tenants = self.tenants.write();
        let slot = &mut tenants[tenant as usize];
        debug_assert!(slot.reserved && slot.generation == generation);
        if slot.generation == generation {
            slot.shared = Some(shared);
        }
    }

    /// Releases a slot: detaches the engine, invalidates any of its
    /// tasks still queued (generation bump), discards its undispatched
    /// admissions and resets the lane weight for the next occupant.
    fn release(&self, tenant: u32, generation: u32) {
        {
            let mut tenants = self.tenants.write();
            let slot = &mut tenants[tenant as usize];
            if slot.generation != generation {
                return; // stale release (double call)
            }
            slot.shared = None;
            slot.reserved = false;
            slot.generation = slot.generation.wrapping_add(1);
        }
        self.queue.drain_lane(tenant as usize);
        self.queue.set_lane_weight(tenant as usize, 1);
        // After the slot is visibly cleared: invalidate every worker's
        // dispatch cache so leftover shard tasks of this tenant are
        // dropped rather than executed from a stale cache hit.
        self.detaches.fetch_add(1, SeqCst);
    }
}

/// A tenant's claim on a pool slot. Held by the engine from build to
/// shutdown; dropping it releases the slot (and invalidates the
/// tenant's queued tasks), so every exit path — clean shutdown, error,
/// or a simulated crash via `drop` — detaches correctly.
pub(crate) struct PoolMembership {
    inner: Arc<PoolInner>,
    tenant: u32,
    generation: u32,
}

impl PoolMembership {
    /// Attaches the engine's shared state to the reserved slot.
    pub(crate) fn register(&self, shared: Arc<Shared>) {
        self.inner.register(self.tenant, self.generation, shared);
    }

    /// The number of workers in the pool (pooled engines report this
    /// instead of their builder's thread count).
    pub(crate) fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Sets this tenant's admission-lane weight (weighted round-robin
    /// share of refill bandwidth).
    pub(crate) fn set_weight(&self, weight: u32) {
        self.inner
            .queue
            .set_lane_weight(self.tenant as usize, weight);
    }
}

impl Drop for PoolMembership {
    fn drop(&mut self) {
        self.inner.release(self.tenant, self.generation);
    }
}

/// A shared worker pool serving many independent engines (tenants).
///
/// One [`WorkerPool`] drains one [`ShardedQueue`]; every tenant gets
/// its own admission lane (weighted round-robin refill) and in-flight
/// cap, so tenants make fair, independent progress — one saturating
/// tenant cannot starve a trickle tenant, and one failing tenant
/// drains without disturbing its neighbours.
///
/// ```
/// use ec_core::{Engine, EnginePool, Module, PassThrough, SourceModule};
/// use ec_events::sources::Counter;
/// use ec_graph::generators;
///
/// let pool = EnginePool::new(2, 4); // 2 workers, up to 4 tenants
/// let mk = |len: usize| -> Vec<Box<dyn Module>> {
///     let mut m: Vec<Box<dyn Module>> =
///         vec![Box::new(SourceModule::new(Counter::new()))];
///     (1..len).for_each(|_| m.push(Box::new(PassThrough)));
///     m
/// };
/// let a = Engine::builder(generators::chain(3), mk(3))
///     .pooled(&pool)
///     .build()
///     .unwrap()
///     .into_live();
/// let b = Engine::builder(generators::chain(2), mk(2))
///     .pooled(&pool)
///     .build()
///     .unwrap()
///     .into_live();
/// a.admit().unwrap();
/// b.admit().unwrap();
/// assert_eq!(a.wait_idle().unwrap(), 1);
/// assert_eq!(b.wait_idle().unwrap(), 1);
/// a.shutdown().unwrap();
/// b.shutdown().unwrap();
/// pool.shutdown();
/// ```
#[derive(Clone)]
pub struct EnginePool {
    inner: Arc<PoolInner>,
}

impl EnginePool {
    /// Spawns `threads` shared workers able to host up to `max_tenants`
    /// concurrently attached engines. Idle workers park; an empty pool
    /// costs nothing but the threads' stacks.
    pub fn new(threads: usize, max_tenants: usize) -> EnginePool {
        let threads = threads.max(1);
        let max_tenants = max_tenants.max(1);
        let inner = Arc::new(PoolInner {
            queue: Arc::new(ShardedQueue::with_lanes(threads, max_tenants)),
            tenants: RwLock::new(
                (0..max_tenants)
                    .map(|_| TenantSlot {
                        generation: 0,
                        reserved: false,
                        shared: None,
                    })
                    .collect(),
            ),
            workers: Mutex::new(None),
            threads,
            detaches: AtomicU64::new(0),
        });
        let worker_inner = Arc::clone(&inner);
        let workers = WorkerPool::spawn("ec-pool-worker", threads, move |i| {
            worker_inner.worker_loop(i);
        });
        *inner.workers.lock() = Some(workers);
        EnginePool { inner }
    }

    /// Number of shared worker threads.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Maximum number of concurrently attached tenants.
    pub fn capacity(&self) -> usize {
        self.inner.tenants.read().len()
    }

    /// Number of tenant slots currently reserved or attached.
    pub fn tenant_count(&self) -> usize {
        self.inner
            .tenants
            .read()
            .iter()
            .filter(|s| s.reserved)
            .count()
    }

    /// Total queued tasks across every tenant (racy; observability).
    pub fn queue_len(&self) -> usize {
        self.inner.queue.len()
    }

    /// Stops the shared workers after delivering the queued backlog of
    /// still-attached tenants, and joins them. Idempotent. Detach (shut
    /// down) tenants first: tasks a tenant admits after this point are
    /// refused and surface as an engine failure rather than a hang.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        if let Some(workers) = self.inner.workers.lock().take() {
            let panics = workers.join();
            debug_assert!(panics.is_empty(), "pool worker panicked: {panics:?}");
        }
    }

    /// Reserves a tenant slot and returns the engine-side queue handle
    /// plus the membership guard (crate-internal: used by
    /// [`EngineBuilder::build`](crate::EngineBuilder::build)).
    pub(crate) fn join_pool(&self) -> Result<(EngineQueue, PoolMembership), EngineError> {
        let (tenant, generation) = self.inner.reserve()?;
        let queue = EngineQueue::pooled(Arc::clone(&self.inner.queue), tenant, generation);
        let membership = PoolMembership {
            inner: Arc::clone(&self.inner),
            tenant,
            generation,
        };
        Ok((queue, membership))
    }
}
