//! Per-vertex execution slots shared by all executors.
//!
//! A [`VertexSlot`] owns a vertex's module and the remembered
//! latest-value per input edge (the paper's "using previous values for
//! any inputs it has not received for phase p"). The parallel engine,
//! the sequential oracle and the phase-barrier baseline all execute
//! vertices through this one code path, so any semantic difference
//! between them is in scheduling alone — which is exactly what the
//! serializability tests need to isolate.

use crate::checkpoint::VertexState;
use crate::error::EngineError;
use crate::history::RecordedEmission;
use crate::module::{Emission, ExecCtx, InputView, Module};
use crate::state::Idx;
use ec_events::{Phase, StateSnapshot, Value};
use ec_graph::{Dag, Numbering, VertexId};

/// A vertex's module plus its input memory.
pub(crate) struct VertexSlot {
    /// The graph vertex this slot executes.
    pub vertex_id: VertexId,
    /// The installed module.
    pub module: Box<dyn Module>,
    /// Predecessor vertices, in edge order.
    pub preds: Vec<VertexId>,
    /// Latest value seen per predecessor (same order as `preds`).
    pub latest: Vec<Option<Value>>,
    /// True if the vertex has no predecessors.
    pub is_source: bool,
    /// True if the vertex has no successors.
    pub is_sink: bool,
}

impl VertexSlot {
    /// Builds slots in schedule order (`slots[i]` executes the vertex
    /// with schedule index `i + 1`).
    pub fn build(
        dag: &Dag,
        numbering: &Numbering,
        modules: Vec<Box<dyn Module>>,
    ) -> Result<Vec<VertexSlot>, EngineError> {
        if dag.is_empty() {
            return Err(EngineError::Config("graph has no vertices".into()));
        }
        if modules.len() != dag.vertex_count() {
            return Err(EngineError::Config(format!(
                "{} modules supplied for {} vertices",
                modules.len(),
                dag.vertex_count()
            )));
        }
        // Reorder modules (indexed by VertexId) into schedule order.
        let mut by_vertex: Vec<Option<Box<dyn Module>>> = modules.into_iter().map(Some).collect();
        let slots = numbering
            .schedule_order()
            .map(|v| {
                let preds = dag.preds(v).to_vec();
                VertexSlot {
                    vertex_id: v,
                    module: by_vertex[v.index()].take().expect("each vertex once"),
                    latest: vec![None; preds.len()],
                    is_source: preds.is_empty(),
                    is_sink: dag.is_sink(v),
                    preds,
                }
            })
            .collect();
        Ok(slots)
    }

    /// Executes one phase: folds `fresh` into the latest-value memory,
    /// then runs the module.
    pub fn execute(&mut self, phase: Phase, fresh: &[(VertexId, Value)]) -> Emission {
        for (producer, value) in fresh {
            let i = self
                .preds
                .iter()
                .position(|p| p == producer)
                .expect("fresh message from a non-predecessor");
            self.latest[i] = Some(value.clone());
        }
        let ctx = ExecCtx {
            phase,
            vertex: self.vertex_id,
            inputs: InputView {
                preds: &self.preds,
                latest: &self.latest,
                fresh,
            },
            is_source: self.is_source,
        };
        self.module.execute(ctx)
    }

    /// Captures the slot's state (module snapshot + latest-value
    /// memory). Errors if the module does not support snapshots.
    pub fn checkpoint(&self) -> Result<VertexState, EngineError> {
        let module = self.module.snapshot_state();
        if matches!(module, StateSnapshot::Unsupported) {
            return Err(EngineError::Config(format!(
                "vertex {:?} module {:?} does not support state snapshots",
                self.vertex_id,
                self.module.name()
            )));
        }
        Ok(VertexState {
            vertex: self.vertex_id,
            module,
            latest: self.latest.clone(),
        })
    }

    /// Applies a captured [`VertexState`] to this slot.
    pub fn restore(&mut self, state: &VertexState) -> Result<(), EngineError> {
        if state.vertex != self.vertex_id {
            return Err(EngineError::Config(format!(
                "checkpoint for {:?} applied to {:?}",
                state.vertex, self.vertex_id
            )));
        }
        if state.latest.len() != self.latest.len() {
            return Err(EngineError::Config(format!(
                "checkpoint for {:?} has {} input edges, graph has {} \
                 (was the graph rebuilt identically?)",
                self.vertex_id,
                state.latest.len(),
                self.latest.len()
            )));
        }
        match &state.module {
            StateSnapshot::Stateless => {}
            StateSnapshot::Bytes(bytes) => {
                self.module.restore_state(bytes).map_err(|e| {
                    EngineError::Config(format!(
                        "restoring {:?} module {:?}: {e}",
                        self.vertex_id,
                        self.module.name()
                    ))
                })?;
            }
            StateSnapshot::Unsupported => {
                return Err(EngineError::Config(format!(
                    "checkpoint for {:?} marked unsupported",
                    self.vertex_id
                )));
            }
        }
        self.latest = state.latest.clone();
        Ok(())
    }
}

/// The routed form of an emission: messages in schedule-index space, an
/// optional external (sink) output, and the normalised history record.
pub(crate) struct RoutedEmission {
    /// `(consumer schedule index, value)` messages, sorted by consumer.
    pub messages: Vec<(Idx, Value)>,
    /// Value delivered to the outside world (sink broadcast).
    pub sink_value: Option<Value>,
    /// Normalised record for the execution history.
    pub recorded: RecordedEmission,
}

/// Routes an emission from the vertex with schedule index `v_idx`.
///
/// `succs_idx` are the vertex's successors as schedule indices (sorted);
/// `numbering` translates module-facing [`VertexId`] targets.
pub(crate) fn route_emission(
    emission: Emission,
    slot_is_sink: bool,
    vertex_id: VertexId,
    succs_idx: &[Idx],
    numbering: &Numbering,
) -> Result<RoutedEmission, EngineError> {
    match emission {
        Emission::Silent => Ok(RoutedEmission {
            messages: Vec::new(),
            sink_value: None,
            recorded: RecordedEmission::Silent,
        }),
        Emission::Broadcast(value) => {
            // Fan-out is a refcount bump, not a payload copy: `Value`'s
            // heap-carrying variants (`Text`, `Vector`) are `Arc`-backed,
            // so every clone here shares one buffer across all
            // consumers and the history record (pinned by the
            // `broadcast_fanout_shares_payload_buffers` test).
            if slot_is_sink {
                Ok(RoutedEmission {
                    messages: Vec::new(),
                    sink_value: Some(value.clone()),
                    recorded: RecordedEmission::Broadcast(value),
                })
            } else {
                Ok(RoutedEmission {
                    messages: succs_idx.iter().map(|&s| (s, value.clone())).collect(),
                    sink_value: None,
                    recorded: RecordedEmission::Broadcast(value),
                })
            }
        }
        Emission::Targeted(pairs) => {
            let mut messages: Vec<(Idx, Value)> = Vec::with_capacity(pairs.len());
            let mut recorded: Vec<(VertexId, Value)> = Vec::with_capacity(pairs.len());
            for (target, value) in pairs {
                let t_idx = numbering.index_of(target);
                if !succs_idx.contains(&t_idx) {
                    return Err(EngineError::BadTarget {
                        vertex: vertex_id,
                        target,
                    });
                }
                if messages.iter().any(|(existing, _)| *existing == t_idx) {
                    return Err(EngineError::DuplicateTarget {
                        vertex: vertex_id,
                        target,
                    });
                }
                messages.push((t_idx, value.clone()));
                recorded.push((target, value));
            }
            messages.sort_by_key(|(t, _)| *t);
            recorded.sort_by_key(|(t, _)| *t);
            Ok(RoutedEmission {
                messages,
                sink_value: None,
                recorded: RecordedEmission::Targeted(recorded),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{PassThrough, SourceModule, SumModule};
    use ec_events::sources::Counter;
    use ec_graph::generators;

    fn diamond_setup() -> (Dag, Numbering, Vec<VertexSlot>) {
        let dag = generators::diamond();
        let numbering = Numbering::compute(&dag);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
            Box::new(PassThrough),
            Box::new(SumModule),
        ];
        let slots = VertexSlot::build(&dag, &numbering, modules).unwrap();
        (dag, numbering, slots)
    }

    #[test]
    fn build_orders_by_schedule_index() {
        let (dag, numbering, slots) = diamond_setup();
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(numbering.index_of(slot.vertex_id), i as u32 + 1);
        }
        assert!(slots[0].is_source);
        assert!(slots[3].is_sink);
        assert_eq!(slots[3].preds.len(), 2);
        let _ = dag;
    }

    #[test]
    fn build_rejects_mismatched_modules() {
        let dag = generators::chain(2);
        let numbering = Numbering::compute(&dag);
        let modules: Vec<Box<dyn Module>> = vec![Box::new(PassThrough)];
        assert!(matches!(
            VertexSlot::build(&dag, &numbering, modules),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn build_rejects_empty_graph() {
        let dag = Dag::new();
        let numbering = Numbering::compute(&dag);
        assert!(matches!(
            VertexSlot::build(&dag, &numbering, vec![]),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn execute_updates_latest_memory() {
        let (_, _, mut slots) = diamond_setup();
        // Execute the sink (slot 3) with one fresh input.
        let preds = slots[3].preds.clone();
        let fresh = vec![(preds[0], Value::Float(2.0))];
        slots[3].execute(Phase(1), &fresh);
        assert_eq!(slots[3].latest[0], Some(Value::Float(2.0)));
        assert_eq!(slots[3].latest[1], None);
        // Second execution with the other input; SumModule sees both.
        let fresh = vec![(preds[1], Value::Float(3.0))];
        let e = slots[3].execute(Phase(2), &fresh);
        assert_eq!(e, Emission::Broadcast(Value::Float(5.0)));
    }

    #[test]
    fn route_broadcast_to_successors() {
        let (_, numbering, _) = diamond_setup();
        let routed = route_emission(
            Emission::Broadcast(Value::Int(1)),
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        )
        .unwrap();
        assert_eq!(
            routed.messages,
            vec![(2, Value::Int(1)), (3, Value::Int(1))]
        );
        assert!(routed.sink_value.is_none());
    }

    #[test]
    fn broadcast_fanout_shares_payload_buffers() {
        // Fanning a vector broadcast to two successors must share ONE
        // heap buffer across every message and the history record — a
        // refcount bump per consumer, not a copy of the payload.
        let (_, numbering, _) = diamond_setup();
        let payload = Value::vector(vec![1.0, 2.0, 3.0]);
        let base = payload.as_vector().unwrap().as_ptr();
        let routed = route_emission(
            Emission::Broadcast(payload),
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        )
        .unwrap();
        assert_eq!(routed.messages.len(), 2);
        for (_, v) in &routed.messages {
            assert_eq!(
                v.as_vector().unwrap().as_ptr(),
                base,
                "broadcast message copied the vector payload"
            );
        }
        match &routed.recorded {
            RecordedEmission::Broadcast(v) => {
                assert_eq!(v.as_vector().unwrap().as_ptr(), base);
            }
            other => panic!("unexpected record {other:?}"),
        }

        // Same property for text payloads.
        let text = Value::text("shared alert");
        let text_ptr = text.as_text().unwrap().as_ptr();
        let routed = route_emission(
            Emission::Broadcast(text),
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        )
        .unwrap();
        for (_, v) in &routed.messages {
            assert_eq!(v.as_text().unwrap().as_ptr(), text_ptr);
        }
    }

    #[test]
    fn route_sink_broadcast_to_outside() {
        let (_, numbering, _) = diamond_setup();
        let routed = route_emission(
            Emission::Broadcast(Value::Int(9)),
            true,
            numbering.vertex_at(4),
            &[],
            &numbering,
        )
        .unwrap();
        assert!(routed.messages.is_empty());
        assert_eq!(routed.sink_value, Some(Value::Int(9)));
    }

    #[test]
    fn route_targeted_validates_and_sorts() {
        let (_, numbering, _) = diamond_setup();
        let v2 = numbering.vertex_at(2);
        let v3 = numbering.vertex_at(3);
        let routed = route_emission(
            Emission::Targeted(vec![(v3, Value::Int(3)), (v2, Value::Int(2))]),
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        )
        .unwrap();
        assert_eq!(
            routed.messages,
            vec![(2, Value::Int(2)), (3, Value::Int(3))]
        );

        // Non-successor target rejected.
        let bad = route_emission(
            Emission::Targeted(vec![(numbering.vertex_at(4), Value::Int(1))]),
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        );
        assert!(matches!(bad, Err(EngineError::BadTarget { .. })));

        // Duplicate target rejected.
        let dup = route_emission(
            Emission::Targeted(vec![(v2, Value::Int(1)), (v2, Value::Int(2))]),
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        );
        assert!(matches!(dup, Err(EngineError::DuplicateTarget { .. })));
    }

    #[test]
    fn route_silent() {
        let (_, numbering, _) = diamond_setup();
        let routed = route_emission(
            Emission::Silent,
            false,
            numbering.vertex_at(1),
            &[2, 3],
            &numbering,
        )
        .unwrap();
        assert!(routed.messages.is_empty());
        assert_eq!(routed.recorded, RecordedEmission::Silent);
    }
}
