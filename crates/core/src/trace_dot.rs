//! Graphviz rendering of set-membership snapshots — Figure 3, redrawn.
//!
//! The paper's Figure 3 draws each execution step as the computation
//! graph with vertices shaped by set membership: circles for "in no
//! set", diamonds for the partial set, octagons for the full set and
//! squares for full-and-ready. [`snapshot_to_dot`] renders a
//! [`SetSnapshot`] with exactly those conventions, one cluster per
//! in-flight phase, so `dot -Tpng` regenerates the figure's panels from
//! a recorded [`Trace`].

use crate::trace::{SetMembership, SetSnapshot, Trace, TraceEvent};
use ec_graph::{Dag, Numbering};
use std::fmt::Write;

/// Renders one snapshot in Figure 3's visual language.
///
/// Each phase in the snapshot's window becomes a cluster containing the
/// whole graph; vertex shapes encode membership (circle = no set,
/// diamond = partial, octagon = full, square = full+ready), matching
/// the figure's legend.
pub fn snapshot_to_dot(
    dag: &Dag,
    numbering: &Numbering,
    snapshot: &SetSnapshot,
    title: &str,
) -> String {
    let mut out = String::new();
    writeln!(out, "digraph fig3_step {{").unwrap();
    writeln!(out, "  label=\"{}\";", title.replace('"', "'")).unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    let phases: Vec<u64> = snapshot.x.iter().map(|(p, _)| *p).collect();
    for &phase in &phases {
        writeln!(out, "  subgraph cluster_p{phase} {{").unwrap();
        let x = snapshot.x_of(phase).unwrap_or(0);
        writeln!(out, "    label=\"phase {phase} (x={x})\";").unwrap();
        for v in dag.vertices() {
            let idx = numbering.index_of(v);
            let shape = match snapshot.membership(idx, phase) {
                None => "circle",
                Some(SetMembership::Partial) => "diamond",
                Some(SetMembership::FullOnly) => "octagon",
                Some(SetMembership::FullAndReady) => "square",
            };
            writeln!(out, "    p{phase}_n{idx} [label=\"{idx}\", shape={shape}];").unwrap();
        }
        for (a, b) in dag.edges() {
            writeln!(
                out,
                "    p{phase}_n{} -> p{phase}_n{};",
                numbering.index_of(a),
                numbering.index_of(b)
            )
            .unwrap();
        }
        writeln!(out, "  }}").unwrap();
    }
    out.push_str("}\n");
    out
}

/// Renders every step of a trace as a sequence of DOT documents, one
/// per panel, titled like the figure's captions.
pub fn trace_to_dot(dag: &Dag, numbering: &Numbering, trace: &Trace) -> Vec<String> {
    trace
        .steps
        .iter()
        .map(|step| {
            let title = match &step.event {
                TraceEvent::PhaseStarted(p) => format!("Phase {p} initiated"),
                TraceEvent::Executed {
                    vertex,
                    phase,
                    emitted,
                } => format!(
                    "({vertex}, {phase}) executed, generated {} output{}",
                    emitted,
                    if *emitted == 1 { "" } else { "s" }
                ),
            };
            snapshot_to_dot(dag, numbering, &step.after, &title)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, PassThrough, SourceModule};
    use crate::stepper::Stepper;
    use ec_events::sources::Counter;
    use ec_graph::generators;

    fn fig3_trace() -> (Dag, Numbering, Trace) {
        let dag = generators::fig3_graph();
        let modules: Vec<Box<dyn Module>> = dag
            .vertices()
            .map(|v| -> Box<dyn Module> {
                if dag.is_source(v) {
                    Box::new(SourceModule::new(Counter::new()))
                } else {
                    Box::new(PassThrough)
                }
            })
            .collect();
        let mut stepper = Stepper::new(&dag, modules).unwrap();
        stepper.start_phase();
        stepper.start_phase();
        stepper.drain().unwrap();
        let trace = stepper.take_trace();
        let numbering = Numbering::compute(&dag);
        (dag, numbering, trace)
    }

    #[test]
    fn renders_every_step_with_figure_shapes() {
        let (dag, numbering, trace) = fig3_trace();
        let panels = trace_to_dot(&dag, &numbering, &trace);
        assert_eq!(panels.len(), trace.len());
        // Panel after the first phase start must show squares (ready
        // sources) and circles (everything else).
        let first = &panels[0];
        assert!(first.contains("Phase 1 initiated"));
        assert!(first.contains("shape=square"));
        assert!(first.contains("shape=circle"));
        // Some later panel must show a diamond (partial pair at a join).
        assert!(
            panels.iter().any(|p| p.contains("shape=diamond")),
            "no partial membership ever rendered"
        );
        // All panels are structurally valid-ish DOT.
        for p in &panels {
            assert!(p.starts_with("digraph"));
            assert!(p.ends_with("}\n"));
            assert_eq!(p.matches("subgraph").count(), {
                // one cluster per phase in that snapshot's window
                p.matches("cluster_p").count()
            });
        }
    }

    #[test]
    fn snapshot_titles_escape_quotes() {
        let (dag, numbering, trace) = fig3_trace();
        let dot = snapshot_to_dot(&dag, &numbering, &trace.steps[0].after, "say \"hi\"");
        assert!(dot.contains("label=\"say 'hi'\";"));
    }
}
