//! Runtime metrics.
//!
//! The paper's performance claims (§4) are about the ratio of useful
//! vertex computation to data-structure bookkeeping, the number of
//! messages saved by change-only emission (§1), and how many phases the
//! engine keeps in flight (Figure 1). These counters capture exactly
//! those quantities so the benchmark harness can report them.
//!
//! Counters are plain atomics updated with `Relaxed` ordering: they are
//! statistics, not synchronisation, and every value is read only after
//! the worker threads have been joined (which provides the necessary
//! happens-before edge).

use ec_obs::HistogramSnapshot;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// Shared counters updated by workers and the environment thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Vertex-phase executions.
    pub executions: AtomicU64,
    /// Executions that produced no output (information conveyed by the
    /// absence of messages).
    pub silent_executions: AtomicU64,
    /// Point-to-point messages sent along edges.
    pub messages_sent: AtomicU64,
    /// Values delivered to the outside world by sinks.
    pub sink_outputs: AtomicU64,
    /// Vertex-phase pairs enqueued on the run queue.
    pub enqueued: AtomicU64,
    /// Phases started by the environment process.
    pub phases_started: AtomicU64,
    /// Phases whose `x_p` reached `N`.
    pub phases_completed: AtomicU64,
    /// Acquisitions of the global scheduler lock.
    pub lock_acquisitions: AtomicU64,
    /// Total nanoseconds spent waiting to acquire the scheduler lock.
    pub lock_wait_nanos: AtomicU64,
    /// Total nanoseconds spent inside module execution.
    pub exec_nanos: AtomicU64,
    /// Total nanoseconds spent inside the critical section.
    pub critical_nanos: AtomicU64,
    /// Maximum observed number of *distinct phases* executing
    /// simultaneously (the Figure 1 pipelining depth).
    pub max_concurrent_phases: AtomicU64,
    /// Sum and count of concurrent-phase samples, for the mean depth.
    pub concurrent_phase_sum: AtomicU64,
    /// Number of concurrent-phase samples.
    pub concurrent_phase_samples: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one concurrent-phase depth sample and updates the maximum.
    pub fn sample_concurrent_phases(&self, depth: u64) {
        self.concurrent_phase_sum.fetch_add(depth, Relaxed);
        self.concurrent_phase_samples.fetch_add(1, Relaxed);
        self.max_concurrent_phases.fetch_max(depth, Relaxed);
    }

    /// Snapshots all counters. The scheduler block is a *parameter*,
    /// not a default: only the engine can see the sharded run queue, so
    /// the type makes it impossible to build a snapshot that silently
    /// reports zero steals/parks/depths (the bug the old
    /// caller-overwrites-zeros contract invited). Latency histograms
    /// are likewise merged and passed in by their owner.
    pub fn snapshot_with(
        &self,
        scheduler: SchedulerCounters,
        latency: LatencyStats,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            executions: self.executions.load(Relaxed),
            silent_executions: self.silent_executions.load(Relaxed),
            messages_sent: self.messages_sent.load(Relaxed),
            sink_outputs: self.sink_outputs.load(Relaxed),
            enqueued: self.enqueued.load(Relaxed),
            phases_started: self.phases_started.load(Relaxed),
            phases_completed: self.phases_completed.load(Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Relaxed),
            lock_wait_nanos: self.lock_wait_nanos.load(Relaxed),
            exec_nanos: self.exec_nanos.load(Relaxed),
            critical_nanos: self.critical_nanos.load(Relaxed),
            max_concurrent_phases: self.max_concurrent_phases.load(Relaxed),
            concurrent_phase_sum: self.concurrent_phase_sum.load(Relaxed),
            concurrent_phase_samples: self.concurrent_phase_samples.load(Relaxed),
            scheduler,
            ingest: IngestCounters::default(),
            latency,
        }
    }
}

/// Scheduler-owned counters of a [`MetricsSnapshot`]: the engine reads
/// these off its sharded run queue at snapshot time. Kept as a separate
/// struct so [`Metrics::snapshot_with`] can *require* them — no
/// snapshot path can forget to fill them in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerCounters {
    /// Successful steals between worker shards.
    pub steals: u64,
    /// Times a worker parked after finding no work anywhere.
    pub parks: u64,
    /// Targeted wakeups issued to parked workers.
    pub wakes: u64,
    /// Per-worker run-queue depth at snapshot time (racy; observability
    /// only).
    pub worker_queue_depths: Vec<u64>,
    /// Shared-injector depth at snapshot time (racy; observability
    /// only).
    pub injector_depth: u64,
}

/// Ingest-plane counters of a [`MetricsSnapshot`], filled by the
/// streaming runtime (zero for engines without an ingest plane — which
/// genuinely have none, unlike the scheduler fields).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestCounters {
    /// Per-source ingest buffer depths at snapshot time (racy;
    /// observability only).
    pub depths: Vec<u64>,
    /// Source names, parallel to `depths`/`source_waits` (spec names,
    /// so dashboards survive spec reordering; empty for engines without
    /// an ingest plane).
    pub sources: Vec<String>,
    /// Producer-side contention: pushes that found their source's
    /// buffer full and had to block, retry, or force a seal.
    pub waits: u64,
    /// Per-source breakdown of `waits`, parallel to `depths`.
    pub source_waits: Vec<u64>,
    /// Epoch seals that committed at least one phase.
    pub seal_batches: u64,
    /// Events drained by those seals; `seal_events / seal_batches` is
    /// the mean drain batch size.
    pub seal_events: u64,
}

/// End-to-end latency of one causally traced (source → sink) path:
/// producer push to subscriber delivery, from sampled trace stamps
/// (streaming runtime only). Nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathLatency {
    /// Source name where the sampled events entered.
    pub source: String,
    /// Sink name where their phases' outputs were delivered.
    pub sink: String,
    /// Push → delivery latency distribution.
    pub hist: HistogramSnapshot,
}

impl PathLatency {
    fn to_json(&self) -> String {
        format!(
            "{{\"source\":\"{}\",\"sink\":\"{}\",\"hist\":{}}}",
            self.source.replace(['"', '\\'], "_"),
            self.sink.replace(['"', '\\'], "_"),
            self.hist.to_json()
        )
    }
}

/// Latency distributions of a [`MetricsSnapshot`]: log2-bucketed
/// histograms merged across workers at snapshot time. All values are
/// nanoseconds; percentiles come from
/// [`HistogramSnapshot::percentile`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Admission → retirement latency per phase (how long a phase
    /// lived in the machine).
    pub phase: HistogramSnapshot,
    /// Per-vertex module execution duration.
    pub exec: HistogramSnapshot,
    /// WAL group-commit duration (streaming runtime only).
    pub wal_commit: HistogramSnapshot,
    /// Producer push-wait duration: time a `push` spent bounced off a
    /// full ingest buffer before succeeding (streaming runtime only).
    pub ingest_wait: HistogramSnapshot,
    /// End-to-end (source, sink) path latencies from sampled trace
    /// stamps (streaming runtime only; empty when tracing is off).
    pub e2e: Vec<PathLatency>,
}

impl LatencyStats {
    /// One histogram merging every traced (source, sink) path —
    /// "how long does an event take, regardless of route".
    pub fn e2e_merged(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for path in &self.e2e {
            merged.merge(&path.hist);
        }
        merged
    }

    /// Hand-rolled JSON object of the stage histograms plus the traced
    /// end-to-end paths.
    pub fn to_json(&self) -> String {
        let e2e: Vec<String> = self.e2e.iter().map(PathLatency::to_json).collect();
        format!(
            "{{\"phase\":{},\"exec\":{},\"wal_commit\":{},\"ingest_wait\":{},\"e2e\":[{}]}}",
            self.phase.to_json(),
            self.exec.to_json(),
            self.wal_commit.to_json(),
            self.ingest_wait.to_json(),
            e2e.join(",")
        )
    }
}

/// A plain-value copy of [`Metrics`] taken after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Vertex-phase executions.
    pub executions: u64,
    /// Executions that emitted nothing.
    pub silent_executions: u64,
    /// Messages sent along edges.
    pub messages_sent: u64,
    /// Values produced by sinks.
    pub sink_outputs: u64,
    /// Pairs enqueued on the run queue.
    pub enqueued: u64,
    /// Phases started.
    pub phases_started: u64,
    /// Phases completed.
    pub phases_completed: u64,
    /// Scheduler-lock acquisitions.
    pub lock_acquisitions: u64,
    /// Nanoseconds spent waiting for the scheduler lock.
    pub lock_wait_nanos: u64,
    /// Nanoseconds spent in module execution.
    pub exec_nanos: u64,
    /// Nanoseconds spent in the critical section.
    pub critical_nanos: u64,
    /// Peak distinct phases executing at once.
    pub max_concurrent_phases: u64,
    /// Sum of depth samples.
    pub concurrent_phase_sum: u64,
    /// Number of depth samples.
    pub concurrent_phase_samples: u64,
    /// Scheduler-owned counters, filled by the engine (required by
    /// [`Metrics::snapshot_with`]).
    pub scheduler: SchedulerCounters,
    /// Ingest-plane counters, filled by the streaming runtime.
    pub ingest: IngestCounters,
    /// Latency histograms, merged across workers at snapshot time.
    pub latency: LatencyStats,
}

impl MetricsSnapshot {
    /// Mean number of distinct phases executing concurrently, sampled at
    /// each execution start.
    pub fn mean_concurrent_phases(&self) -> f64 {
        if self.concurrent_phase_samples == 0 {
            0.0
        } else {
            self.concurrent_phase_sum as f64 / self.concurrent_phase_samples as f64
        }
    }

    /// Fraction of executions that sent no messages.
    pub fn silent_fraction(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.silent_executions as f64 / self.executions as f64
        }
    }

    /// Mean events drained per epoch seal (streaming runtime only).
    pub fn mean_seal_batch(&self) -> f64 {
        if self.ingest.seal_batches == 0 {
            0.0
        } else {
            self.ingest.seal_events as f64 / self.ingest.seal_batches as f64
        }
    }

    /// Ratio of bookkeeping time (lock wait + critical section) to
    /// module execution time — the quantity the paper predicts governs
    /// scalability (§4).
    pub fn bookkeeping_ratio(&self) -> f64 {
        if self.exec_nanos == 0 {
            f64::INFINITY
        } else {
            (self.lock_wait_nanos + self.critical_nanos) as f64 / self.exec_nanos as f64
        }
    }

    /// Hand-rolled JSON object: flat counters, derived ratios, the
    /// scheduler/ingest blocks, and the latency histograms as
    /// percentile summaries. The offline serde shim is a no-op, so
    /// serialization is spelled out here.
    pub fn to_json(&self) -> String {
        let depths = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            "{{\"executions\":{},\"silent_executions\":{},\"messages_sent\":{},\
             \"sink_outputs\":{},\"enqueued\":{},\"phases_started\":{},\"phases_completed\":{},\
             \"lock_acquisitions\":{},\"lock_wait_nanos\":{},\"exec_nanos\":{},\
             \"critical_nanos\":{},\"max_concurrent_phases\":{},\"mean_concurrent_phases\":{:.3},\
             \"silent_fraction\":{:.4},\"bookkeeping_ratio\":{:.4},\
             \"scheduler\":{{\"steals\":{},\"parks\":{},\"wakes\":{},\
             \"worker_queue_depths\":{},\"injector_depth\":{}}},\
             \"ingest\":{{\"depths\":{},\"sources\":{},\"waits\":{},\"source_waits\":{},\
             \"seal_batches\":{},\"seal_events\":{},\
             \"mean_seal_batch\":{:.2}}},\"latency\":{}}}",
            self.executions,
            self.silent_executions,
            self.messages_sent,
            self.sink_outputs,
            self.enqueued,
            self.phases_started,
            self.phases_completed,
            self.lock_acquisitions,
            self.lock_wait_nanos,
            self.exec_nanos,
            self.critical_nanos,
            self.max_concurrent_phases,
            self.mean_concurrent_phases(),
            self.silent_fraction(),
            if self.bookkeeping_ratio().is_finite() {
                self.bookkeeping_ratio()
            } else {
                0.0
            },
            self.scheduler.steals,
            self.scheduler.parks,
            self.scheduler.wakes,
            depths(&self.scheduler.worker_queue_depths),
            self.scheduler.injector_depth,
            depths(&self.ingest.depths),
            {
                let names: Vec<String> = self
                    .ingest
                    .sources
                    .iter()
                    .map(|s| format!("\"{}\"", s.replace(['"', '\\'], "_")))
                    .collect();
                format!("[{}]", names.join(","))
            },
            self.ingest.waits,
            depths(&self.ingest.source_waits),
            self.ingest.seal_batches,
            self.ingest.seal_events,
            self.mean_seal_batch(),
            self.latency.to_json()
        )
    }
}

/// Tracks the set of phases currently being executed by workers, to
/// measure pipelining depth (how many phases are simultaneously "in the
/// machine", as depicted in Figure 1).
///
/// Lock-free: this sits on the hot path of every execution, where the
/// previous `Mutex<BTreeMap>` implementation was a second global lock.
/// Phases in flight at once lie in a window of at most `max_inflight`
/// consecutive numbers (the environment throttle), so per-phase
/// executing counts live in a power-of-two ring of atomic slots — two
/// distinct in-flight phases never collide as long as the capacity
/// covers the window ([`PhaseGauge::with_capacity`] sizes it so, up to
/// a clamp for absurdly large windows).
#[derive(Debug)]
pub struct PhaseGauge {
    /// Executing vertices per phase, indexed by `phase & mask`.
    slots: Vec<AtomicU32>,
    mask: u64,
    /// Number of distinct phases with a nonzero slot.
    distinct: AtomicU64,
}

impl Default for PhaseGauge {
    fn default() -> Self {
        PhaseGauge::with_capacity(64)
    }
}

impl PhaseGauge {
    /// Fresh gauge for the engine-default in-flight window (64 phases).
    pub fn new() -> Self {
        Self::default()
    }

    /// Gauge able to track `max_inflight` simultaneously active phases
    /// without collisions. Capacity is clamped (the gauge is
    /// observability-only): beyond the clamp, two in-flight phases may
    /// share a slot, which merely merges them in the distinct count —
    /// never a panic or an unbounded allocation for an "effectively
    /// unbounded" `max_inflight`.
    pub fn with_capacity(max_inflight: u64) -> Self {
        let cap = max_inflight.clamp(2, 1 << 16).next_power_of_two();
        PhaseGauge {
            slots: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            mask: cap - 1,
            distinct: AtomicU64::new(0),
        }
    }

    /// Marks a phase as having one more executing vertex; returns the
    /// number of distinct phases now executing.
    pub fn enter(&self, phase: u64) -> u64 {
        let slot = &self.slots[(phase & self.mask) as usize];
        if slot.fetch_add(1, Relaxed) == 0 {
            self.distinct.fetch_add(1, Relaxed) + 1
        } else {
            self.distinct.load(Relaxed)
        }
    }

    /// Marks a phase as having one fewer executing vertex.
    pub fn exit(&self, phase: u64) {
        let slot = &self.slots[(phase & self.mask) as usize];
        let prev = slot.fetch_sub(1, Relaxed);
        debug_assert!(prev > 0, "exit without enter for phase {phase}");
        if prev == 1 {
            self.distinct.fetch_sub(1, Relaxed);
        }
    }

    /// Number of distinct phases currently executing.
    pub fn depth(&self) -> u64 {
        self.distinct.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters_and_the_scheduler_block() {
        let m = Metrics::new();
        m.executions.fetch_add(3, Relaxed);
        m.messages_sent.fetch_add(5, Relaxed);
        let sched = SchedulerCounters {
            steals: 7,
            parks: 1,
            wakes: 2,
            worker_queue_depths: vec![0, 3],
            injector_depth: 4,
        };
        let s = m.snapshot_with(sched.clone(), LatencyStats::default());
        assert_eq!(s.executions, 3);
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.silent_executions, 0);
        // The engine-owned block is whatever the engine supplied — the
        // old API hard-zeroed these and hoped callers would overwrite.
        assert_eq!(s.scheduler, sched);
        assert_eq!(s.ingest, IngestCounters::default());
    }

    #[test]
    fn concurrent_phase_stats() {
        let m = Metrics::new();
        m.sample_concurrent_phases(2);
        m.sample_concurrent_phases(4);
        let s = m.snapshot_with(SchedulerCounters::default(), LatencyStats::default());
        assert_eq!(s.max_concurrent_phases, 4);
        assert!((s.mean_concurrent_phases() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = Metrics::new();
        m.executions.fetch_add(2, Relaxed);
        let mut latency = LatencyStats::default();
        let h = ec_obs::LogHistogram::new();
        h.record(1_000);
        latency.exec = h.snapshot();
        let s = m.snapshot_with(
            SchedulerCounters {
                worker_queue_depths: vec![1, 2],
                ..Default::default()
            },
            latency,
        );
        let j = s.to_json();
        assert!(j.contains("\"executions\":2"), "{j}");
        assert!(j.contains("\"worker_queue_depths\":[1,2]"), "{j}");
        assert!(j.contains("\"exec\":{\"count\":1"), "{j}");
        // Balanced braces — the cheap structural check the bench
        // trajectory relies on.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn derived_ratios() {
        let s = MetricsSnapshot {
            executions: 10,
            silent_executions: 4,
            exec_nanos: 100,
            lock_wait_nanos: 30,
            critical_nanos: 20,
            ..Default::default()
        };
        assert!((s.silent_fraction() - 0.4).abs() < 1e-12);
        assert!((s.bookkeeping_ratio() - 0.5).abs() < 1e-12);
        let empty = MetricsSnapshot::default();
        assert_eq!(empty.silent_fraction(), 0.0);
        assert_eq!(empty.mean_concurrent_phases(), 0.0);
        assert!(empty.bookkeeping_ratio().is_infinite());
    }

    #[test]
    fn phase_gauge_capacity_is_clamped() {
        // An "effectively unbounded" in-flight window must not panic or
        // allocate terabytes of slots; collisions past the clamp only
        // merge phases in the distinct count.
        let g = PhaseGauge::with_capacity(u64::MAX);
        assert_eq!(g.enter(1), 1);
        assert_eq!(g.enter(2), 2);
        // Far-apart phases may share a slot past the clamp: merged in
        // the distinct count, still balanced on exit.
        g.enter(1 + (1 << 40));
        assert_eq!(g.depth(), 2);
        g.exit(1 + (1 << 40));
        g.exit(2);
        g.exit(1);
        assert_eq!(g.depth(), 0);
    }

    #[test]
    fn phase_gauge_tracks_distinct_phases() {
        let g = PhaseGauge::new();
        assert_eq!(g.enter(1), 1);
        assert_eq!(g.enter(1), 1);
        assert_eq!(g.enter(2), 2);
        g.exit(1);
        assert_eq!(g.depth(), 2); // phase 1 still has one executor
        g.exit(1);
        assert_eq!(g.depth(), 1);
        g.exit(2);
        assert_eq!(g.depth(), 0);
    }
}
