//! The sequential reference executor (serializability oracle).
//!
//! The paper's correctness requirement (§2): the concurrent execution
//! must have "the same logical effect as executing only one phase at a
//! time in serial order all the way from the sources to the sinks".
//! This executor *is* that serial order — one thread, one phase at a
//! time, vertices in schedule-index order — so its history is the ground
//! truth that the parallel engine's history must reproduce. It is also
//! the 1-thread baseline for the speedup experiments (E4).

use crate::error::EngineError;
use crate::history::ExecutionHistory;
use crate::module::Module;
use crate::state::Idx;
use crate::vertex::{route_emission, VertexSlot};
use ec_events::{Phase, Value};
use ec_graph::{Dag, Numbering};

/// Single-threaded phase-by-phase executor.
pub struct Sequential {
    slots: Vec<VertexSlot>,
    succs_idx: Vec<Vec<Idx>>,
    numbering: Numbering,
    history: ExecutionHistory,
    next_phase: u64,
    /// Total messages sent (for the message-rate experiments).
    pub messages_sent: u64,
    /// Total vertex-phase executions.
    pub executions: u64,
}

impl Sequential {
    /// Builds a sequential executor over `dag` with one module per
    /// vertex (`modules[v.index()]`).
    pub fn new(dag: &Dag, modules: Vec<Box<dyn Module>>) -> Result<Sequential, EngineError> {
        let numbering = Numbering::compute(dag);
        let slots = VertexSlot::build(dag, &numbering, modules)?;
        let succs_idx = numbering
            .schedule_order()
            .map(|v| {
                let mut s: Vec<Idx> = dag
                    .succs(v)
                    .iter()
                    .map(|&w| numbering.index_of(w))
                    .collect();
                s.sort_unstable();
                s
            })
            .collect();
        let n = slots.len();
        Ok(Sequential {
            slots,
            succs_idx,
            numbering,
            history: ExecutionHistory::new(n),
            next_phase: 1,
            messages_sent: 0,
            executions: 0,
        })
    }

    /// The vertex numbering in use (identical to the parallel engine's
    /// for the same graph).
    pub fn numbering(&self) -> &Numbering {
        &self.numbering
    }

    /// Executes `phases` further phases; phase numbers continue across
    /// calls.
    pub fn run(&mut self, phases: u64) -> Result<(), EngineError> {
        let n = self.slots.len();
        for _ in 0..phases {
            let phase = Phase(self.next_phase);
            self.next_phase += 1;
            // inboxes[i] = fresh messages for schedule index i + 1.
            let mut inboxes: Vec<Vec<(Idx, Value)>> = vec![Vec::new(); n];
            for pos in 0..n {
                let fresh_raw = std::mem::take(&mut inboxes[pos]);
                let slot = &mut self.slots[pos];
                if !slot.is_source && fresh_raw.is_empty() {
                    continue; // no messages: computation unnecessary
                }
                let fresh: Vec<_> = fresh_raw
                    .iter()
                    .map(|(i, v)| (self.numbering.vertex_at(*i), v.clone()))
                    .collect();
                let emission = slot.execute(phase, &fresh);
                let routed = route_emission(
                    emission,
                    slot.is_sink,
                    slot.vertex_id,
                    &self.succs_idx[pos],
                    &self.numbering,
                )?;
                self.executions += 1;
                self.messages_sent += routed.messages.len() as u64;
                self.history.record(slot.vertex_id, phase, routed.recorded);
                if let Some(v) = routed.sink_value {
                    self.history.record_sink(slot.vertex_id, phase, v);
                }
                let my_idx = (pos + 1) as Idx;
                for (w, value) in routed.messages {
                    debug_assert!(w > my_idx);
                    inboxes[(w - 1) as usize].push((my_idx, value));
                }
            }
            debug_assert!(
                inboxes.iter().all(Vec::is_empty),
                "all messages consumed within the phase"
            );
        }
        Ok(())
    }

    /// The recorded history so far (finalised copy).
    pub fn history(&self) -> ExecutionHistory {
        let mut h = self.history.clone();
        h.finalize();
        h
    }

    /// Consumes the executor, returning its finalised history.
    pub fn into_history(mut self) -> ExecutionHistory {
        self.history.finalize();
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{PassThrough, SourceModule, SumModule};
    use ec_events::sources::{Counter, Replay};
    use ec_graph::generators;

    #[test]
    fn chain_counter_reaches_sink() {
        let dag = generators::chain(3);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
            Box::new(PassThrough),
        ];
        let mut seq = Sequential::new(&dag, modules).unwrap();
        seq.run(4).unwrap();
        let h = seq.into_history();
        let sink = ec_graph::Numbering::compute(&dag).vertex_at(3);
        let vals: Vec<i64> = h
            .sink_outputs_of(sink)
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn skips_vertices_without_messages() {
        let dag = generators::chain(3);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Replay::new(vec![
                Some(Value::Int(1)),
                None,
            ]))),
            Box::new(PassThrough),
            Box::new(PassThrough),
        ];
        let mut seq = Sequential::new(&dag, modules).unwrap();
        seq.run(2).unwrap();
        // Phase 1: 3 executions. Phase 2: source only.
        assert_eq!(seq.executions, 4);
        assert_eq!(seq.messages_sent, 2);
    }

    #[test]
    fn diamond_sum() {
        let dag = generators::diamond();
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
            Box::new(PassThrough),
            Box::new(SumModule),
        ];
        let mut seq = Sequential::new(&dag, modules).unwrap();
        seq.run(3).unwrap();
        let numbering = seq.numbering().clone();
        let h = seq.into_history();
        let sink = numbering.vertex_at(4);
        let vals: Vec<f64> = h
            .sink_outputs_of(sink)
            .iter()
            .map(|(_, v)| v.as_f64().unwrap())
            .collect();
        assert_eq!(vals, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn phases_continue_across_runs() {
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
        ];
        let mut seq = Sequential::new(&dag, modules).unwrap();
        seq.run(2).unwrap();
        seq.run(2).unwrap();
        let h = seq.history();
        let sink = seq.numbering().vertex_at(2);
        let phases: Vec<u64> = h
            .sink_outputs_of(sink)
            .iter()
            .map(|(p, _)| p.get())
            .collect();
        assert_eq!(phases, vec![1, 2, 3, 4]);
    }
}
