//! Engine checkpoints: operator state at a retired phase boundary.
//!
//! A [`LiveEngine`](crate::LiveEngine) that has retired phase `p` holds,
//! per vertex, exactly the state the sequential oracle would hold after
//! running phases `1..=p`: the module's internal state plus the
//! latest-value memory per input edge ("using previous values for any
//! inputs it has not received", §3.1.2). [`EngineCheckpoint`] captures
//! both, so a restarted process can resume at phase `p + 1` without
//! replaying the whole history — only the write-ahead-log tail after the
//! checkpoint (see the `ec-store` crate).
//!
//! Checkpoints are only meaningful at *retired* boundaries (every
//! admitted phase completed): mid-flight state would capture a
//! non-serializable cut. [`LiveEngine::checkpoint_vertices`]
//! (crate::LiveEngine::checkpoint_vertices) enforces this.

use ec_events::{SnapshotError, StateReader, StateSnapshot, StateWriter, Value};
use ec_graph::VertexId;

/// State of one vertex at a retired phase boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexState {
    /// The vertex this state belongs to.
    pub vertex: VertexId,
    /// The module's serialized internal state ([`StateSnapshot::Stateless`]
    /// for modules with nothing to save).
    pub module: StateSnapshot,
    /// Latest value remembered per input edge, in edge order.
    pub latest: Vec<Option<Value>>,
}

/// Engine state at a retired phase boundary: one entry per vertex, in
/// `VertexId` order.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// The retired phase this checkpoint captures (all phases `<= phase`
    /// completed; none beyond started).
    pub phase: u64,
    /// Per-vertex state, sorted by vertex id.
    pub vertices: Vec<VertexState>,
}

impl VertexState {
    /// Serializes into a snapshot payload.
    pub fn encode_into(&self, w: &mut StateWriter) {
        w.put_u32(self.vertex.index() as u32);
        match &self.module {
            StateSnapshot::Stateless => w.put_u8(0),
            StateSnapshot::Bytes(b) => {
                w.put_u8(1);
                w.put_bytes(b);
            }
            // An unsupported module never reaches encoding: checkpoint
            // creation fails first. Encoded as a distinct tag so a
            // hand-built file cannot masquerade as restorable.
            StateSnapshot::Unsupported => w.put_u8(2),
        }
        w.put_u32(self.latest.len() as u32);
        for v in &self.latest {
            w.put_opt_value(v);
        }
    }

    /// Decodes one vertex state.
    pub fn decode_from(r: &mut StateReader<'_>) -> Result<VertexState, SnapshotError> {
        let vertex = VertexId(r.get_u32()?);
        let module = match r.get_u8()? {
            0 => StateSnapshot::Stateless,
            1 => StateSnapshot::Bytes(r.get_bytes()?),
            2 => StateSnapshot::Unsupported,
            other => return Err(SnapshotError::new(format!("bad module-state tag {other}"))),
        };
        let n = r.get_u32()? as usize;
        let mut latest = Vec::with_capacity(n);
        for _ in 0..n {
            latest.push(r.get_opt_value()?);
        }
        Ok(VertexState {
            vertex,
            module,
            latest,
        })
    }
}

impl EngineCheckpoint {
    /// Serializes the whole checkpoint into a snapshot payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u64(self.phase);
        w.put_u32(self.vertices.len() as u32);
        for v in &self.vertices {
            v.encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<EngineCheckpoint, SnapshotError> {
        let mut r = StateReader::new(bytes);
        let phase = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut vertices = Vec::with_capacity(n);
        for _ in 0..n {
            vertices.push(VertexState::decode_from(&mut r)?);
        }
        r.finish()?;
        Ok(EngineCheckpoint { phase, vertices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineCheckpoint {
        EngineCheckpoint {
            phase: 42,
            vertices: vec![
                VertexState {
                    vertex: VertexId(0),
                    module: StateSnapshot::Stateless,
                    latest: vec![],
                },
                VertexState {
                    vertex: VertexId(1),
                    module: StateSnapshot::Bytes(vec![1, 2, 3]),
                    latest: vec![Some(Value::Int(7)), None, Some(Value::text("x"))],
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let chk = sample();
        let bytes = chk.encode();
        assert_eq!(EngineCheckpoint::decode(&bytes).unwrap(), chk);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        assert!(EngineCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(EngineCheckpoint::decode(&extended).is_err());
    }

    #[test]
    fn unsupported_tag_round_trips() {
        let chk = EngineCheckpoint {
            phase: 1,
            vertices: vec![VertexState {
                vertex: VertexId(3),
                module: StateSnapshot::Unsupported,
                latest: vec![None],
            }],
        };
        let back = EngineCheckpoint::decode(&chk.encode()).unwrap();
        assert_eq!(back.vertices[0].module, StateSnapshot::Unsupported);
    }
}
