//! Execution histories and the serializability oracle.
//!
//! The paper's correctness criterion (§2) is that the concurrent
//! execution must have "the same logical effect as if \[phases\] were
//! executed sequentially … in serial order all the way from the sources
//! to the sinks". [`ExecutionHistory`] records, per vertex, which phases
//! executed and what each execution emitted; two histories are
//! *equivalent* iff every vertex executed the same phases and produced
//! the same emissions. Comparing the parallel engine's history against
//! the sequential reference executor's is the central correctness check
//! of the test suite.

use ec_events::{Phase, Value};
use ec_graph::VertexId;
use std::fmt;

/// A normalised record of one vertex-phase execution's output.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordedEmission {
    /// The module emitted nothing.
    Silent,
    /// The module broadcast a value to all successors (or, at a sink, to
    /// the outside world).
    Broadcast(Value),
    /// The module sent specific values to specific successors; sorted by
    /// target id so histories compare deterministically.
    Targeted(Vec<(VertexId, Value)>),
}

impl RecordedEmission {
    /// Structural equality treating NaN == NaN (see [`Value::same_as`]).
    pub fn same_as(&self, other: &RecordedEmission) -> bool {
        match (self, other) {
            (RecordedEmission::Silent, RecordedEmission::Silent) => true,
            (RecordedEmission::Broadcast(a), RecordedEmission::Broadcast(b)) => a.same_as(b),
            (RecordedEmission::Targeted(a), RecordedEmission::Targeted(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ta, va), (tb, vb))| ta == tb && va.same_as(vb))
            }
            _ => false,
        }
    }
}

/// One value delivered to the outside world by a sink vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkRecord {
    /// The sink vertex.
    pub vertex: VertexId,
    /// The phase in which it was produced.
    pub phase: Phase,
    /// The value.
    pub value: Value,
}

/// Per-vertex log of executed phases and their emissions.
#[derive(Debug, Clone, Default)]
pub struct ExecutionHistory {
    /// `per_vertex[vertex.index()]` = chronologically ordered
    /// `(phase, emission)` records. Phases appear in increasing order
    /// because the scheduler executes each vertex's phases in order.
    per_vertex: Vec<Vec<(Phase, RecordedEmission)>>,
    /// External outputs of sink vertices, sorted by `(phase, vertex)`.
    sinks: Vec<SinkRecord>,
}

impl ExecutionHistory {
    /// Empty history over `n` vertices.
    pub fn new(n: usize) -> Self {
        ExecutionHistory {
            per_vertex: vec![Vec::new(); n],
            sinks: Vec::new(),
        }
    }

    /// Records one vertex-phase execution.
    pub fn record(&mut self, vertex: VertexId, phase: Phase, emission: RecordedEmission) {
        self.per_vertex[vertex.index()].push((phase, emission));
    }

    /// Records a sink output.
    pub fn record_sink(&mut self, vertex: VertexId, phase: Phase, value: Value) {
        self.sinks.push(SinkRecord {
            vertex,
            phase,
            value,
        });
    }

    /// Finalises the history: sorts sink records into `(phase, vertex)`
    /// order so parallel and sequential runs compare deterministically.
    pub fn finalize(&mut self) {
        self.sinks.sort_by_key(|r| (r.phase, r.vertex));
    }

    /// Number of vertices covered.
    pub fn vertex_count(&self) -> usize {
        self.per_vertex.len()
    }

    /// The `(phase, emission)` log of one vertex.
    pub fn of(&self, vertex: VertexId) -> &[(Phase, RecordedEmission)] {
        &self.per_vertex[vertex.index()]
    }

    /// Phases in which `vertex` executed.
    pub fn executed_phases(&self, vertex: VertexId) -> Vec<Phase> {
        self.of(vertex).iter().map(|(p, _)| *p).collect()
    }

    /// All sink outputs, sorted by `(phase, vertex)` after
    /// [`finalize`](Self::finalize).
    pub fn sink_outputs(&self) -> &[SinkRecord] {
        &self.sinks
    }

    /// Sink outputs of one vertex, in phase order.
    pub fn sink_outputs_of(&self, vertex: VertexId) -> Vec<(Phase, Value)> {
        self.sinks
            .iter()
            .filter(|r| r.vertex == vertex)
            .map(|r| (r.phase, r.value.clone()))
            .collect()
    }

    /// Total number of recorded executions.
    pub fn execution_count(&self) -> usize {
        self.per_vertex.iter().map(Vec::len).sum()
    }

    /// Total number of non-silent emissions.
    pub fn emission_count(&self) -> usize {
        self.per_vertex
            .iter()
            .flatten()
            .filter(|(_, e)| !matches!(e, RecordedEmission::Silent))
            .count()
    }

    /// Checks serializability-equivalence against `other`.
    ///
    /// Returns the first divergence found, described well enough to
    /// debug: which vertex, which position in its log, and the two
    /// records.
    pub fn equivalent(&self, other: &ExecutionHistory) -> Result<(), Divergence> {
        if self.per_vertex.len() != other.per_vertex.len() {
            return Err(Divergence::VertexCount {
                left: self.per_vertex.len(),
                right: other.per_vertex.len(),
            });
        }
        for (vi, (a, b)) in self
            .per_vertex
            .iter()
            .zip(other.per_vertex.iter())
            .enumerate()
        {
            let vertex = VertexId(vi as u32);
            // Compare the *observable* records: every emission, in
            // order, at matching phases. Silent executions are the
            // absence of information — the paper's optimisation — and
            // schedules are free to elide provably silent executions
            // altogether (silence-aware admission skips live-source
            // polls whose staged bin is `None`), so a silent record on
            // one side with no counterpart on the other is not a
            // divergence.
            fn observable(
                records: &[(Phase, RecordedEmission)],
            ) -> impl Iterator<Item = &(Phase, RecordedEmission)> {
                records
                    .iter()
                    .filter(|(_, e)| !matches!(e, RecordedEmission::Silent))
            }
            let count = |records| observable(records).count();
            if count(a) != count(b) {
                return Err(Divergence::ExecutionCount {
                    vertex,
                    left: count(a),
                    right: count(b),
                });
            }
            for (i, ((pa, ea), (pb, eb))) in observable(a).zip(observable(b)).enumerate() {
                if pa != pb || !ea.same_as(eb) {
                    return Err(Divergence::Record {
                        vertex,
                        position: i,
                        left: (*pa, ea.clone()),
                        right: (*pb, eb.clone()),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The first difference between two histories.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The histories cover different numbers of vertices.
    VertexCount {
        /// Left vertex count.
        left: usize,
        /// Right vertex count.
        right: usize,
    },
    /// One vertex executed a different number of phases.
    ExecutionCount {
        /// The diverging vertex.
        vertex: VertexId,
        /// Left execution count.
        left: usize,
        /// Right execution count.
        right: usize,
    },
    /// One record differs.
    Record {
        /// The diverging vertex.
        vertex: VertexId,
        /// Position in the vertex's log.
        position: usize,
        /// Left record.
        left: (Phase, RecordedEmission),
        /// Right record.
        right: (Phase, RecordedEmission),
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::VertexCount { left, right } => {
                write!(f, "vertex counts differ: {left} vs {right}")
            }
            Divergence::ExecutionCount {
                vertex,
                left,
                right,
            } => write!(
                f,
                "{vertex:?} executed {left} phases on the left but {right} on the right"
            ),
            Divergence::Record {
                vertex,
                position,
                left,
                right,
            } => write!(
                f,
                "{vertex:?} record {position} differs: {left:?} vs {right:?}"
            ),
        }
    }
}

impl std::error::Error for Divergence {}

#[cfg(test)]
mod tests {
    use super::*;

    fn h1() -> ExecutionHistory {
        let mut h = ExecutionHistory::new(2);
        h.record(
            VertexId(0),
            Phase(1),
            RecordedEmission::Broadcast(Value::Int(1)),
        );
        h.record(VertexId(1), Phase(1), RecordedEmission::Silent);
        h.record(
            VertexId(0),
            Phase(2),
            RecordedEmission::Broadcast(Value::Int(2)),
        );
        h
    }

    #[test]
    fn identical_histories_equivalent() {
        assert_eq!(h1().equivalent(&h1()), Ok(()));
    }

    #[test]
    fn detects_missing_execution() {
        let a = h1();
        let mut b = h1();
        // An extra *observable* record is a divergence...
        b.record(
            VertexId(1),
            Phase(2),
            RecordedEmission::Broadcast(Value::Int(5)),
        );
        let err = a.equivalent(&b).unwrap_err();
        assert!(matches!(err, Divergence::ExecutionCount { vertex, .. } if vertex == VertexId(1)));
    }

    #[test]
    fn silent_executions_are_not_observable() {
        // ...but an extra silent execution is not: silence carries its
        // information by absence, and silence-aware admission elides
        // provably silent executions entirely, so equivalence compares
        // only the observable records.
        let a = h1();
        let mut b = h1();
        b.record(VertexId(1), Phase(2), RecordedEmission::Silent);
        assert_eq!(a.equivalent(&b), Ok(()));
        assert_eq!(b.equivalent(&a), Ok(()));
    }

    #[test]
    fn detects_differing_record() {
        let a = h1();
        let mut b = ExecutionHistory::new(2);
        b.record(
            VertexId(0),
            Phase(1),
            RecordedEmission::Broadcast(Value::Int(9)),
        );
        b.record(VertexId(1), Phase(1), RecordedEmission::Silent);
        b.record(
            VertexId(0),
            Phase(2),
            RecordedEmission::Broadcast(Value::Int(2)),
        );
        let err = a.equivalent(&b).unwrap_err();
        assert!(
            matches!(err, Divergence::Record { vertex, position: 0, .. } if vertex == VertexId(0))
        );
    }

    #[test]
    fn detects_vertex_count_mismatch() {
        let a = ExecutionHistory::new(2);
        let b = ExecutionHistory::new(3);
        assert!(matches!(
            a.equivalent(&b),
            Err(Divergence::VertexCount { left: 2, right: 3 })
        ));
    }

    #[test]
    fn nan_broadcasts_compare_equal() {
        let mut a = ExecutionHistory::new(1);
        a.record(
            VertexId(0),
            Phase(1),
            RecordedEmission::Broadcast(Value::Float(f64::NAN)),
        );
        let mut b = ExecutionHistory::new(1);
        b.record(
            VertexId(0),
            Phase(1),
            RecordedEmission::Broadcast(Value::Float(f64::NAN)),
        );
        assert_eq!(a.equivalent(&b), Ok(()));
    }

    #[test]
    fn sink_records_sorted_on_finalize() {
        let mut h = ExecutionHistory::new(3);
        h.record_sink(VertexId(2), Phase(2), Value::Int(1));
        h.record_sink(VertexId(1), Phase(1), Value::Int(2));
        h.record_sink(VertexId(0), Phase(2), Value::Int(3));
        h.finalize();
        let order: Vec<(Phase, VertexId)> = h
            .sink_outputs()
            .iter()
            .map(|r| (r.phase, r.vertex))
            .collect();
        assert_eq!(
            order,
            vec![
                (Phase(1), VertexId(1)),
                (Phase(2), VertexId(0)),
                (Phase(2), VertexId(2))
            ]
        );
        assert_eq!(
            h.sink_outputs_of(VertexId(0)),
            vec![(Phase(2), Value::Int(3))]
        );
    }

    #[test]
    fn counts() {
        let h = h1();
        assert_eq!(h.execution_count(), 3);
        assert_eq!(h.emission_count(), 2);
        assert_eq!(h.executed_phases(VertexId(0)), vec![Phase(1), Phase(2)]);
    }

    #[test]
    fn targeted_comparison_order_sensitive() {
        let a = RecordedEmission::Targeted(vec![(VertexId(1), Value::Int(1))]);
        let b = RecordedEmission::Targeted(vec![(VertexId(1), Value::Int(1))]);
        let c = RecordedEmission::Targeted(vec![(VertexId(2), Value::Int(1))]);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
        assert!(!a.same_as(&RecordedEmission::Silent));
    }
}
