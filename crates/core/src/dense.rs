//! The dense ("obvious solution") execution mode.
//!
//! §3.1 of the paper: "The obvious solution … is to ensure that every
//! vertex receives a message on every one of its inputs during every
//! phase … Unfortunately, this obvious solution is inefficient, because
//! it requires every vertex to both carry out a computation for every
//! phase and send a message on every one of its outputs for every
//! phase."
//!
//! [`densify`] converts a module set into exactly that regime by
//! wrapping every module in [`AlwaysEmit`]: silent executions are
//! replaced by re-broadcasts of the previous value, so every edge
//! carries a message every phase and every vertex executes every phase.
//! Running the *same engine* over densified modules is the paper's
//! "option 1" baseline; the message-count ratio between the two modes is
//! experiment E5 (the 1-in-a-million anomaly argument of §1).

use crate::module::{AlwaysEmit, Module};

/// Wraps every module in [`AlwaysEmit`], producing the paper's
/// everything-every-phase baseline behaviour.
pub fn densify(modules: Vec<Box<dyn Module>>) -> Vec<Box<dyn Module>> {
    modules
        .into_iter()
        .map(|m| Box::new(AlwaysEmit::new(m)) as Box<dyn Module>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::module::{PassThrough, SourceModule};
    use ec_events::sources::{Replay, Sparse};
    use ec_graph::generators;

    fn sparse_modules(p: f64) -> Vec<Box<dyn Module>> {
        vec![
            Box::new(SourceModule::new(Sparse::counter(p, 11))),
            Box::new(PassThrough),
            Box::new(PassThrough),
        ]
    }

    #[test]
    fn dense_mode_executes_everything() {
        let dag = generators::chain(3);
        let mut engine = Engine::builder(dag, densify(sparse_modules(0.01)))
            .threads(2)
            .build()
            .unwrap();
        let report = engine.run(100).unwrap();
        // Every vertex executes every phase and every edge carries a
        // message every phase.
        assert_eq!(report.metrics.executions, 300);
        assert_eq!(report.metrics.messages_sent, 200);
    }

    #[test]
    fn sparse_mode_sends_far_fewer_messages() {
        let dag = generators::chain(3);
        let mut engine = Engine::builder(dag, sparse_modules(0.01))
            .threads(2)
            .build()
            .unwrap();
        let report = engine.run(100).unwrap();
        // Sources execute every phase, but messages flow only on the
        // rare changes: expect ≈ 1% of the dense message count.
        assert!(report.metrics.messages_sent < 40);
        assert!(report.metrics.executions < 150);
    }

    #[test]
    fn densified_silence_replays_previous_value() {
        let dag = generators::chain(2);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Replay::new(vec![
                Some(ec_events::Value::Int(7)),
                None,
            ]))),
            Box::new(PassThrough),
        ];
        let mut engine = Engine::builder(dag, densify(modules))
            .threads(1)
            .build()
            .unwrap();
        let report = engine.run(2).unwrap();
        let history = report.history.unwrap();
        let sink = engine.numbering().vertex_at(2);
        let vals: Vec<i64> = history
            .sink_outputs_of(sink)
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        // Phase 2 re-broadcasts the phase-1 value.
        assert_eq!(vals, vec![7, 7]);
    }
}
