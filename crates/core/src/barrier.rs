//! Phase-barrier parallel baseline.
//!
//! §2 of the paper: "One solution is to require the data fusion engine
//! to complete execution of one phase before initiating execution of the
//! next phase. We describe a more efficient solution…". This executor
//! *is* that simpler solution: phases run one at a time with a barrier
//! between them; within a phase, the vertices of each topological level
//! execute in parallel (using rayon, the standard Rust data-parallelism
//! library). It has the same Δ-dataflow change-propagation semantics as
//! the engine — identical histories — but no cross-phase pipelining,
//! which is exactly the ablation experiment E6 measures.

use crate::error::EngineError;
use crate::history::ExecutionHistory;
use crate::module::Module;
use crate::state::Idx;
use crate::vertex::{route_emission, RoutedEmission, VertexSlot};
use ec_events::{Phase, Value};
use ec_graph::{Dag, Numbering, Topology};
use parking_lot::Mutex;
use rayon::prelude::*;

/// Phase-at-a-time executor with within-level parallelism.
pub struct BarrierParallel {
    slots: Vec<Mutex<VertexSlot>>,
    succs_idx: Vec<Vec<Idx>>,
    /// Schedule indices grouped by topological level, sorted within each
    /// level so results apply deterministically.
    levels: Vec<Vec<Idx>>,
    numbering: Numbering,
    pool: rayon::ThreadPool,
    history: ExecutionHistory,
    next_phase: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total vertex-phase executions.
    pub executions: u64,
}

impl BarrierParallel {
    /// Builds the executor with `threads` rayon workers.
    pub fn new(
        dag: &Dag,
        modules: Vec<Box<dyn Module>>,
        threads: usize,
    ) -> Result<BarrierParallel, EngineError> {
        let numbering = Numbering::compute(dag);
        let slots = VertexSlot::build(dag, &numbering, modules)?;
        let succs_idx: Vec<Vec<Idx>> = numbering
            .schedule_order()
            .map(|v| {
                let mut s: Vec<Idx> = dag
                    .succs(v)
                    .iter()
                    .map(|&w| numbering.index_of(w))
                    .collect();
                s.sort_unstable();
                s
            })
            .collect();
        let topo = Topology::analyze(dag);
        let mut levels: Vec<Vec<Idx>> = vec![Vec::new(); topo.depth() as usize];
        for v in dag.vertices() {
            levels[topo.level(v) as usize].push(numbering.index_of(v));
        }
        for level in &mut levels {
            level.sort_unstable();
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .thread_name(|i| format!("ec-barrier-{i}"))
            .build()
            .map_err(|e| EngineError::Config(format!("rayon pool: {e}")))?;
        let n = slots.len();
        Ok(BarrierParallel {
            slots: slots.into_iter().map(Mutex::new).collect(),
            succs_idx,
            levels,
            numbering,
            pool,
            history: ExecutionHistory::new(n),
            next_phase: 1,
            messages_sent: 0,
            executions: 0,
        })
    }

    /// The vertex numbering in use.
    pub fn numbering(&self) -> &Numbering {
        &self.numbering
    }

    /// Executes `phases` further phases, one at a time, with a barrier
    /// between topological levels and between phases.
    pub fn run(&mut self, phases: u64) -> Result<(), EngineError> {
        let n = self.slots.len();
        for _ in 0..phases {
            let phase = Phase(self.next_phase);
            self.next_phase += 1;
            let mut inboxes: Vec<Vec<(Idx, Value)>> = vec![Vec::new(); n];
            for level in &self.levels {
                // Vertices of one level have no edges among themselves,
                // so they may run concurrently; each owns its slot.
                let work: Vec<(Idx, Vec<(Idx, Value)>)> = level
                    .iter()
                    .filter_map(|&idx| {
                        let fresh = std::mem::take(&mut inboxes[(idx - 1) as usize]);
                        let is_source = self.slots[(idx - 1) as usize].lock().is_source;
                        if is_source || !fresh.is_empty() {
                            Some((idx, fresh))
                        } else {
                            None
                        }
                    })
                    .collect();
                let slots = &self.slots;
                let succs_idx = &self.succs_idx;
                let numbering = &self.numbering;
                let results: Vec<(Idx, Result<RoutedEmission, EngineError>)> =
                    self.pool.install(|| {
                        work.into_par_iter()
                            .map(|(idx, fresh_raw)| {
                                let mut slot = slots[(idx - 1) as usize].lock();
                                let fresh: Vec<_> = fresh_raw
                                    .iter()
                                    .map(|(i, v)| (numbering.vertex_at(*i), v.clone()))
                                    .collect();
                                let emission = slot.execute(phase, &fresh);
                                let routed = route_emission(
                                    emission,
                                    slot.is_sink,
                                    slot.vertex_id,
                                    &succs_idx[(idx - 1) as usize],
                                    numbering,
                                );
                                (idx, routed)
                            })
                            .collect()
                    });
                // Apply results in index order (results preserve the
                // sorted input order) so the history is deterministic.
                for (idx, routed) in results {
                    let routed = routed?;
                    self.executions += 1;
                    self.messages_sent += routed.messages.len() as u64;
                    let vertex = self.numbering.vertex_at(idx);
                    self.history.record(vertex, phase, routed.recorded);
                    if let Some(v) = routed.sink_value {
                        self.history.record_sink(vertex, phase, v);
                    }
                    for (w, value) in routed.messages {
                        inboxes[(w - 1) as usize].push((idx, value));
                    }
                }
            }
        }
        Ok(())
    }

    /// The recorded history so far (finalised copy).
    pub fn history(&self) -> ExecutionHistory {
        let mut h = self.history.clone();
        h.finalize();
        h
    }

    /// Consumes the executor, returning its finalised history.
    pub fn into_history(mut self) -> ExecutionHistory {
        self.history.finalize();
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{PassThrough, SourceModule, SumModule};
    use crate::sequential::Sequential;
    use ec_events::sources::Counter;
    use ec_graph::generators;

    fn modules_for_diamond() -> Vec<Box<dyn Module>> {
        vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
            Box::new(PassThrough),
            Box::new(SumModule),
        ]
    }

    #[test]
    fn matches_sequential_oracle_on_diamond() {
        let dag = generators::diamond();
        let mut seq = Sequential::new(&dag, modules_for_diamond()).unwrap();
        seq.run(10).unwrap();
        let mut bar = BarrierParallel::new(&dag, modules_for_diamond(), 4).unwrap();
        bar.run(10).unwrap();
        assert_eq!(seq.into_history().equivalent(&bar.into_history()), Ok(()));
    }

    #[test]
    fn matches_oracle_on_layered_graph() {
        let dag = generators::layered(4, 3, 2, 17);
        let make = || -> Vec<Box<dyn Module>> {
            dag.vertices()
                .map(|v| -> Box<dyn Module> {
                    if dag.is_source(v) {
                        Box::new(SourceModule::new(Counter::new()))
                    } else {
                        Box::new(SumModule)
                    }
                })
                .collect()
        };
        let mut seq = Sequential::new(&dag, make()).unwrap();
        seq.run(8).unwrap();
        let mut bar = BarrierParallel::new(&dag, make(), 4).unwrap();
        bar.run(8).unwrap();
        assert_eq!(seq.into_history().equivalent(&bar.into_history()), Ok(()));
    }

    #[test]
    fn counts_messages() {
        let dag = generators::chain(3);
        let modules: Vec<Box<dyn Module>> = vec![
            Box::new(SourceModule::new(Counter::new())),
            Box::new(PassThrough),
            Box::new(PassThrough),
        ];
        let mut bar = BarrierParallel::new(&dag, modules, 2).unwrap();
        bar.run(5).unwrap();
        assert_eq!(bar.executions, 15);
        assert_eq!(bar.messages_sent, 10);
    }
}
