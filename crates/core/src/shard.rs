//! The sharded work-stealing run queue.
//!
//! [`RunQueue`](crate::queue::RunQueue) is the paper's §3.2 primitive: one
//! mutex, one condvar, every worker contending on both for every task.
//! That is faithful, but it serializes the hot path — each enqueue takes
//! the global queue lock and signals a condvar shared by every parked
//! worker, so a burst of admissions stampedes the whole pool.
//!
//! [`ShardedQueue`] keeps the same contract (each item dequeued exactly
//! once; `close` delivers the backlog before consumers observe `Closed`)
//! with a scalable shape:
//!
//! * **per-worker deques** — a worker pushes follow-on tasks to its own
//!   shard (LIFO: the data it just produced is hot in cache) and pops
//!   locally without waking anyone;
//! * **a shared injector, sharded into lanes** — non-worker producers
//!   (the environment process / live admission) append here; idle
//!   workers refill from it in batches. The injector is split into one
//!   or more *lanes* so independent tenants sharing the pool each get
//!   their own admission queue: a worker refilling visits lanes in
//!   weighted round-robin order, which is what makes tenant fairness a
//!   routing policy instead of a scheduler rewrite (a saturated lane
//!   cannot starve a trickle lane — every refill rotation visits every
//!   lane, and a lane's batch size is proportional to its weight);
//! * **randomized stealing** — a worker whose shard and the injector are
//!   both empty picks a random sibling and takes the *oldest* half of
//!   its backlog (stealing FIFO keeps the oldest phases moving, which is
//!   what lets the completion frontier advance);
//! * **targeted parking** — each worker has its own parker (token +
//!   condvar). A producer wakes exactly one parked worker, and only when
//!   no other worker is already searching for work — the Go scheduler's
//!   wake-throttling rule — so an admission burst wakes one worker, and
//!   workers chain-wake siblings only while backlog remains.
//!
//! ## Why lost wakeups cannot happen
//!
//! A worker parks only after (1) failing to find work anywhere, (2)
//! pushing itself onto the sleeper stack, and (3) re-checking the global
//! item count *after* registering. A producer increments the item count
//! *before* consulting the sleeper stack. Both counters are sequentially
//! consistent, so for any enqueue/park race either the worker's re-check
//! sees the new item, or the producer's wake sees the registered sleeper
//! — there is no interleaving in which an item waits on a parked pool.

use ec_obs::{FlightRecorder, SpanKind};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

pub use crate::queue::Dequeued;

/// Batch items a weight-1 lane contributes per refill visit. A lane of
/// weight `w` contributes up to `w * LANE_QUANTUM` (capped at
/// [`LANE_BATCH_CAP`]), so relative lane bandwidth is proportional to
/// relative weight while a single visit still amortizes the lane lock.
const LANE_QUANTUM: usize = 16;

/// Hard cap on items moved into a worker shard per refill visit, so one
/// heavy lane cannot swamp a shard (and a steal victim) in one go.
const LANE_BATCH_CAP: usize = 64;

/// One worker's private parking spot: a token consumed by `park` and
/// set by `unpark`, so a wake issued before the worker actually parks
/// is never lost.
struct Parker {
    token: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Parker {
        Parker {
            token: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn park(&self) {
        let mut token = self.token.lock();
        while !*token {
            self.cv.wait(&mut token);
        }
        *token = false;
    }

    fn unpark(&self) {
        let mut token = self.token.lock();
        if !*token {
            *token = true;
            self.cv.notify_one();
        }
    }
}

/// One admission lane: a FIFO of injected items plus its round-robin
/// weight. Tenants sharing a pool each own a lane, so admission
/// bandwidth is divided by the refill policy rather than by arrival
/// order.
struct Lane<T> {
    q: Mutex<VecDeque<T>>,
    weight: AtomicU32,
}

impl<T> Lane<T> {
    fn new() -> Lane<T> {
        Lane {
            q: Mutex::new(VecDeque::new()),
            weight: AtomicU32::new(1),
        }
    }
}

/// Scheduler-observability counters (exposed through
/// [`MetricsSnapshot`](crate::metrics::MetricsSnapshot)).
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Successful steals from a sibling's shard.
    pub steals: AtomicU64,
    /// Times a worker parked (found no work anywhere).
    pub parks: AtomicU64,
    /// Targeted wakeups issued to parked workers.
    pub wakes: AtomicU64,
}

/// A blocking multi-producer multi-consumer queue sharded across a
/// fixed set of worker consumers.
///
/// Consumers are identified by a worker id in `0..workers`; producers
/// without an id (the environment / admission path) go through the
/// shared injector. Non-worker threads must not call
/// [`dequeue`](ShardedQueue::dequeue).
pub struct ShardedQueue<T> {
    /// Per-worker deques. Owners push/pop at the back; thieves and the
    /// shutdown drain take from the front (oldest first).
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Admission lanes (the sharded injector), refilled from in
    /// weighted round-robin order. Single-tenant queues have one lane.
    lanes: Vec<Lane<T>>,
    /// Next lane a refill visits first (advanced per refill, so visits
    /// rotate across lanes regardless of which worker refills).
    rotor: AtomicUsize,
    /// Total items across the injector and every shard. SeqCst: pairs
    /// with sleeper registration (see module docs).
    len: AtomicUsize,
    /// No further enqueues accepted; drain and report `Closed`.
    closed: AtomicBool,
    /// Stack of parked worker ids (LIFO: the most recently parked
    /// worker has the warmest cache).
    sleepers: Mutex<Vec<usize>>,
    /// Number of registered sleepers (mirror of `sleepers.len()`).
    idle: AtomicUsize,
    /// Workers currently scanning for work (they will re-check the item
    /// count before parking, so producers may skip the wake).
    searching: AtomicUsize,
    /// Wakes issued to parked workers and not yet picked up: the wakee
    /// has been unparked but has not resumed scanning. Producers skip
    /// further wakes while one is pending — the throttle that keeps an
    /// admission burst from stampeding the whole pool. Decrements
    /// saturate at zero because `close` also unparks workers, without
    /// issuing a credit.
    pending_wakes: AtomicUsize,
    parkers: Vec<Parker>,
    /// Observability counters.
    pub stats: QueueStats,
    /// Optional flight recorder for steal/park/wake span events. All
    /// three sites are off the fast local-pop path, so the cost of the
    /// `OnceLock` load is paid only when a worker is already slow.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl<T> ShardedQueue<T> {
    /// New empty open queue with one shard per worker and a single
    /// admission lane.
    pub fn new(workers: usize) -> Self {
        ShardedQueue::with_lanes(workers, 1)
    }

    /// New empty open queue with one shard per worker and `lanes`
    /// admission lanes (one per tenant sharing the pool), all at weight
    /// 1 until [`set_lane_weight`](Self::set_lane_weight).
    pub fn with_lanes(workers: usize, lanes: usize) -> Self {
        let workers = workers.max(1);
        let lanes = lanes.max(1);
        ShardedQueue {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            lanes: (0..lanes).map(|_| Lane::new()).collect(),
            rotor: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: Mutex::new(Vec::with_capacity(workers)),
            idle: AtomicUsize::new(0),
            searching: AtomicUsize::new(0),
            pending_wakes: AtomicUsize::new(0),
            parkers: (0..workers).map(|_| Parker::new()).collect(),
            stats: QueueStats::default(),
            recorder: OnceLock::new(),
        }
    }

    /// Attaches a flight recorder for steal/park/wake events. First
    /// caller wins (a pool-shared queue keeps the recorder of the
    /// engine that set it first); later calls are ignored.
    pub fn set_recorder(&self, recorder: &Arc<FlightRecorder>) {
        let _ = self.recorder.set(Arc::clone(recorder));
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Number of admission lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Sets a lane's weighted-round-robin weight (clamped to ≥ 1): a
    /// refill visit moves up to `weight × LANE_QUANTUM` of the lane's
    /// backlog (capped at `LANE_BATCH_CAP`), so sustained admission
    /// bandwidth is approximately proportional to weight (exactly,
    /// under deep backlogs, up to the per-visit batch cap).
    pub fn set_lane_weight(&self, lane: usize, weight: u32) {
        self.lanes[lane].weight.store(weight.max(1), Relaxed);
    }

    /// Enqueues an item. `worker` is the id of the producing worker, if
    /// the producer is one — its shard receives the item (LIFO locality);
    /// `None` routes through admission lane 0.
    ///
    /// Returns `false` (and drops the item) after `close`: this happens
    /// only while a failed run is draining — where discarding work is
    /// the desired behaviour — or when a pooled producer races a pool
    /// shutdown, where the caller surfaces the refusal as an error.
    pub fn enqueue(&self, item: T, worker: Option<usize>) -> bool {
        if self.closed.load(SeqCst) {
            return false;
        }
        match worker {
            Some(w) => self.shards[w].lock().push_back(item),
            None => self.lanes[0].q.lock().push_back(item),
        }
        self.len.fetch_add(1, SeqCst);
        self.maybe_wake();
        true
    }

    /// Enqueues an item into admission lane `lane` — the multi-tenant
    /// admission path. Same close semantics as [`enqueue`](Self::enqueue).
    pub fn enqueue_lane(&self, item: T, lane: usize) -> bool {
        if self.closed.load(SeqCst) {
            return false;
        }
        self.lanes[lane].q.lock().push_back(item);
        self.len.fetch_add(1, SeqCst);
        self.maybe_wake();
        true
    }

    /// Removes and discards every item queued in admission lane `lane`,
    /// returning how many were dropped. Used when a tenant detaches
    /// from a shared pool: its not-yet-dispatched admissions must not
    /// execute against a dead (or recycled) tenant slot.
    pub fn drain_lane(&self, lane: usize) -> usize {
        let drained = {
            let mut q = self.lanes[lane].q.lock();
            let n = q.len();
            q.clear();
            n
        };
        if drained > 0 {
            self.len.fetch_sub(drained, SeqCst);
        }
        drained
    }

    /// Wakes one parked worker — unless another worker is already
    /// searching for work, or a previous wake has not been picked up
    /// yet (either will re-check the item count before parking, so the
    /// new item cannot be stranded). One wake per burst, not one per
    /// enqueue: the pool ramps up worker by worker via chain-wakes.
    fn maybe_wake(&self) {
        if self.idle.load(SeqCst) == 0
            || self.searching.load(SeqCst) > 0
            || self.pending_wakes.load(SeqCst) > 0
        {
            return;
        }
        let woken = {
            let mut sleepers = self.sleepers.lock();
            match sleepers.pop() {
                Some(id) => {
                    self.idle.fetch_sub(1, SeqCst);
                    self.pending_wakes.fetch_add(1, SeqCst);
                    Some(id)
                }
                None => None,
            }
        };
        if let Some(id) = woken {
            self.stats.wakes.fetch_add(1, Relaxed);
            if let Some(r) = self.recorder.get() {
                r.record(id + 1, SpanKind::Wake, id as u64, 0);
            }
            self.parkers[id].unpark();
        }
    }

    /// Acknowledges a wake on resume. Saturating: `close` unparks
    /// workers without issuing a credit, and a stale park token (from a
    /// wake that arrived after its target had already found work) can
    /// make `park` return with no credit outstanding.
    fn ack_wake(&self) {
        let _ = self
            .pending_wakes
            .fetch_update(SeqCst, SeqCst, |v| v.checked_sub(1));
    }

    /// Removes `worker`'s id from the sleeper stack if a producer has
    /// not already popped it. If it was popped, a wake is in flight to
    /// a worker that is not going to park: acknowledge the credit here
    /// — otherwise the pending-wake throttle would suppress every
    /// further wake while this worker drains its local queue, and the
    /// pool would degrade to a single busy worker. The stale park token
    /// is swallowed (with a saturating second ack) by the worker's next
    /// `park`.
    fn deregister(&self, worker: usize) {
        let popped_by_producer = {
            let mut sleepers = self.sleepers.lock();
            match sleepers.iter().position(|&id| id == worker) {
                Some(pos) => {
                    sleepers.swap_remove(pos);
                    self.idle.fetch_sub(1, SeqCst);
                    false
                }
                None => true,
            }
        };
        if popped_by_producer {
            self.ack_wake();
        }
    }

    /// Takes one item from the admission lanes; if more are queued,
    /// moves a batch into the worker's shard so subsequent pops are
    /// lock-local.
    ///
    /// With one lane this is the classic injector refill (take half the
    /// backlog, capped). With several, lanes are visited in rotating
    /// order starting past the last visit, and the first non-empty lane
    /// found contributes a batch bounded by its weight — weighted
    /// round-robin: a saturated tenant's lane yields at most its
    /// quantum per visit, and the rotation reaches every other lane
    /// before returning to it, so a trickle tenant's admission is
    /// picked up after a bounded amount of foreign work.
    fn refill_from_injector(&self, worker: usize) -> Option<T> {
        let n = self.lanes.len();
        if n == 1 {
            let mut q = self.lanes[0].q.lock();
            let first = q.pop_front()?;
            let batch = (q.len() / 2).min(32);
            if batch > 0 {
                let mut shard = self.shards[worker].lock();
                shard.extend(q.drain(..batch));
            }
            return Some(first);
        }
        let start = self.rotor.fetch_add(1, Relaxed);
        for i in 0..n {
            let li = (start + i) % n;
            let mut q = self.lanes[li].q.lock();
            let Some(first) = q.pop_front() else { continue };
            let weight = self.lanes[li].weight.load(Relaxed).max(1) as usize;
            let batch = q
                .len()
                .min(weight.saturating_mul(LANE_QUANTUM))
                .min(LANE_BATCH_CAP);
            if batch > 0 {
                let mut shard = self.shards[worker].lock();
                shard.extend(q.drain(..batch));
            }
            return Some(first);
        }
        None
    }

    /// Steals from siblings: visits every other shard starting at a
    /// pseudo-random offset and takes the oldest half of the first
    /// non-empty backlog found (one item minimum).
    fn steal(&self, worker: usize, seed: &mut u64) -> Option<T> {
        let n = self.shards.len();
        if n <= 1 {
            return None;
        }
        // xorshift64*: cheap, decent spread; no shared RNG state.
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        let start = (*seed as usize) % n;
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == worker {
                continue;
            }
            let mut shard = self.shards[victim].lock();
            if let Some(first) = shard.pop_front() {
                // Move the batch out and RELEASE the victim's lock
                // before touching our own shard: holding both would
                // deadlock two workers stealing from each other
                // (lock-order inversion). Steals are rare, so the
                // temporary buffer is off the hot path.
                let batch = (shard.len() / 2).min(32);
                let taken: Vec<T> = shard.drain(..batch).collect();
                drop(shard);
                if !taken.is_empty() {
                    self.shards[worker].lock().extend(taken);
                }
                self.stats.steals.fetch_add(1, Relaxed);
                if let Some(r) = self.recorder.get() {
                    r.record(worker + 1, SpanKind::Steal, victim as u64, batch as u64 + 1);
                }
                return Some(first);
            }
        }
        None
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// fully drained. Each item is returned exactly once. `seed` is the
    /// worker's private steal-RNG state (any nonzero init).
    pub fn dequeue(&self, worker: usize, seed: &mut u64) -> Dequeued<T> {
        loop {
            // Fast path: local LIFO pop, no coordination.
            if let Some(item) = self.shards[worker].lock().pop_back() {
                self.len.fetch_sub(1, SeqCst);
                return Dequeued::Item(item);
            }
            // Slow path: announce the search so producers skip wakes.
            self.searching.fetch_add(1, SeqCst);
            let found = self
                .refill_from_injector(worker)
                .or_else(|| self.steal(worker, seed));
            self.searching.fetch_sub(1, SeqCst);
            if let Some(item) = found {
                self.len.fetch_sub(1, SeqCst);
                // Chain-wake: if backlog remains, one more worker can
                // usefully join before this item is even executed.
                if self.len.load(SeqCst) > 0 {
                    self.maybe_wake();
                }
                return Dequeued::Item(item);
            }
            if self.closed.load(SeqCst) {
                if self.len.load(SeqCst) == 0 {
                    return Dequeued::Closed;
                }
                continue; // racing with a final drain: rescan
            }
            // Park protocol: register, then re-check (see module docs).
            {
                let mut sleepers = self.sleepers.lock();
                sleepers.push(worker);
                self.idle.fetch_add(1, SeqCst);
            }
            if self.len.load(SeqCst) > 0 || self.closed.load(SeqCst) {
                self.deregister(worker);
                continue;
            }
            self.stats.parks.fetch_add(1, Relaxed);
            if let Some(r) = self.recorder.get() {
                r.record(worker + 1, SpanKind::Park, worker as u64, 0);
            }
            self.parkers[worker].park();
            self.ack_wake();
        }
    }

    /// Closes the queue and wakes every parked worker. Items already
    /// enqueued are still delivered before consumers observe `Closed`.
    pub fn close(&self) {
        self.closed.store(true, SeqCst);
        let ids: Vec<usize> = {
            let mut sleepers = self.sleepers.lock();
            let ids = std::mem::take(&mut *sleepers);
            self.idle.fetch_sub(ids.len(), SeqCst);
            ids
        };
        for id in ids {
            self.parkers[id].unpark();
        }
    }

    /// Reopens a closed queue so a new pool of consumers can be served
    /// (used by the engine between `run` calls, after all workers have
    /// been joined).
    pub fn reopen(&self) {
        self.closed.store(false, SeqCst);
    }

    /// Total queued items (racy snapshot; for metrics only).
    pub fn len(&self) -> usize {
        self.len.load(Relaxed)
    }

    /// True if no items are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard depths (racy snapshot; for metrics only).
    pub fn shard_depths(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lock().len() as u64).collect()
    }

    /// Total injector depth across all lanes (racy snapshot; for
    /// metrics only).
    pub fn injector_depth(&self) -> u64 {
        self.lanes.iter().map(|l| l.q.lock().len() as u64).sum()
    }

    /// One lane's depth (racy snapshot; for metrics only).
    pub fn lane_depth(&self, lane: usize) -> u64 {
        self.lanes[lane].q.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn spawn_consumers(
        q: &Arc<ShardedQueue<usize>>,
        seen: &Arc<Vec<AtomicUsize>>,
        workers: usize,
    ) -> Vec<thread::JoinHandle<usize>> {
        (0..workers)
            .map(|w| {
                let q = Arc::clone(q);
                let seen = Arc::clone(seen);
                thread::spawn(move || {
                    let mut seed = w as u64 + 1;
                    let mut count = 0usize;
                    while let Dequeued::Item(i) = q.dequeue(w, &mut seed) {
                        seen[i].fetch_add(1, Ordering::Relaxed);
                        count += 1;
                    }
                    count
                })
            })
            .collect()
    }

    #[test]
    fn single_worker_lifo_local_fifo_injector() {
        let q = ShardedQueue::new(1);
        let mut seed = 1;
        q.enqueue(1, None);
        q.enqueue(2, None);
        q.enqueue(3, Some(0));
        q.enqueue(4, Some(0));
        // Local shard pops LIFO first, then injector FIFO.
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(4));
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(3));
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(1));
        assert_eq!(q.len(), 1);
        q.close();
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(2));
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Closed);
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Closed);
    }

    #[test]
    fn enqueue_after_close_dropped() {
        let q = ShardedQueue::new(2);
        q.close();
        assert!(!q.enqueue(1, None));
        assert!(!q.enqueue(2, Some(0)));
        assert!(!q.enqueue_lane(3, 0));
        assert_eq!(q.len(), 0);
        let mut seed = 1;
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Closed);
    }

    #[test]
    fn trickle_lane_served_within_one_rotation() {
        // Lane 0 holds a deep backlog; lane 1 holds a single item. A
        // single worker must reach the lane-1 item after at most one
        // lane-0 quantum (1 popped + LANE_QUANTUM batched at weight 1)
        // — the bounded-latency property multi-tenant fairness rests
        // on.
        let q = ShardedQueue::with_lanes(1, 2);
        for i in 0..100 {
            assert!(q.enqueue_lane(i, 0));
        }
        assert!(q.enqueue_lane(1000, 1));
        let mut seed = 3;
        let mut position = None;
        for n in 0..q.len() {
            match q.dequeue(0, &mut seed) {
                Dequeued::Item(1000) => {
                    position = Some(n);
                    break;
                }
                Dequeued::Item(_) => {}
                Dequeued::Closed => panic!("queue closed early"),
            }
        }
        let position = position.expect("lane-1 item delivered");
        assert!(
            position <= 1 + LANE_QUANTUM,
            "trickle item served at position {position}, after more than one quantum"
        );
    }

    #[test]
    fn lane_weight_scales_refill_batch() {
        // A weight-4 lane contributes up to 4 × LANE_QUANTUM per visit
        // (subject to LANE_BATCH_CAP); a weight-1 lane contributes
        // LANE_QUANTUM. Drain order with one worker exposes the batch
        // sizes: count how many lane-0 items arrive before the first
        // lane-1 item and vice versa across a full drain.
        let q = ShardedQueue::with_lanes(1, 2);
        q.set_lane_weight(0, 4);
        for i in 0..200 {
            assert!(q.enqueue_lane(i, 0)); // heavy lane, weight 4
            assert!(q.enqueue_lane(1000 + i, 1)); // light lane, weight 1
        }
        let mut seed = 7;
        let (mut heavy, mut light) = (0usize, 0usize);
        // Sample the first half of the drain; bandwidth should skew
        // toward the heavy lane roughly 4:1 (loose bounds — the exact
        // interleaving depends on batching).
        for _ in 0..200 {
            match q.dequeue(0, &mut seed) {
                Dequeued::Item(v) if v < 1000 => heavy += 1,
                Dequeued::Item(_) => light += 1,
                Dequeued::Closed => panic!("closed early"),
            }
        }
        assert!(
            heavy > light * 2,
            "weight-4 lane got {heavy} of the first 200 slots vs {light}"
        );
        assert!(light > 0, "weight-1 lane starved");
        q.close();
    }

    #[test]
    fn drain_lane_discards_pending_admissions() {
        let q = ShardedQueue::with_lanes(2, 3);
        for i in 0..5 {
            assert!(q.enqueue_lane(i, 1));
        }
        assert!(q.enqueue_lane(99, 2));
        assert_eq!(q.drain_lane(1), 5);
        assert_eq!(q.drain_lane(1), 0);
        assert_eq!(q.len(), 1);
        let mut seed = 11;
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(99));
        q.close();
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Closed);
    }

    #[test]
    fn blocked_worker_wakes_on_enqueue() {
        let q = Arc::new(ShardedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue(0, &mut 7));
        thread::sleep(Duration::from_millis(20));
        q.enqueue(42, None);
        assert_eq!(h.join().unwrap(), Dequeued::Item(42));
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q: Arc<ShardedQueue<i32>> = Arc::new(ShardedQueue::new(3));
        let handles: Vec<_> = (0..3)
            .map(|w| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.dequeue(w, &mut (w as u64 + 1)))
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), Dequeued::Closed);
        }
    }

    #[test]
    fn each_item_dequeued_exactly_once_across_stealing_workers() {
        // Items arrive through every path — injector, and each worker's
        // local shard (from producer threads impersonating workers) —
        // while all workers pop and steal concurrently.
        const ITEMS: usize = 20_000;
        const WORKERS: usize = 8;
        let q = Arc::new(ShardedQueue::<usize>::new(WORKERS));
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let consumers = spawn_consumers(&q, &seen, WORKERS);

        for i in 0..ITEMS {
            // Rotate across the injector and every shard so stealing is
            // actually exercised (shard owners are busy consumers).
            let route = i % (WORKERS + 1);
            if route == WORKERS {
                q.enqueue(i, None);
            } else {
                q.enqueue(i, Some(route));
            }
        }
        q.close();

        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, ITEMS);
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "item {i} seen != once");
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_while_stealing_delivers_backlog_exactly_once() {
        // `close` races a pool that is mid-steal: every enqueued item
        // must still be delivered exactly once before Closed surfaces —
        // RunQueue::close semantics, under the sharded design.
        const ROUNDS: usize = 50;
        const ITEMS: usize = 500;
        const WORKERS: usize = 4;
        for round in 0..ROUNDS {
            let q = Arc::new(ShardedQueue::<usize>::new(WORKERS));
            let seen: Arc<Vec<AtomicUsize>> =
                Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
            // Pile everything onto one shard so the other workers spend
            // the whole round stealing from it.
            for i in 0..ITEMS {
                q.enqueue(i, Some(round % WORKERS));
            }
            let consumers = spawn_consumers(&q, &seen, WORKERS);
            // Close at a jittered moment mid-drain.
            thread::sleep(Duration::from_micros((round as u64 % 7) * 100));
            q.close();
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, ITEMS, "round {round} lost or duplicated items");
            for (i, s) in seen.iter().enumerate() {
                assert_eq!(s.load(Ordering::Relaxed), 1, "round {round} item {i}");
            }
        }
    }

    #[test]
    fn randomized_producers_and_routes_drain_exactly_once() {
        // Randomized stress over producer interleavings: multiple
        // producer threads race each other and the consumers, routing
        // each item by a seeded xorshift — a lightweight property test
        // over schedules (seeded, so failures reproduce).
        const PRODUCERS: usize = 3;
        const PER_PRODUCER: usize = 4_000;
        const WORKERS: usize = 6;
        let q = Arc::new(ShardedQueue::<usize>::new(WORKERS));
        let total_items = PRODUCERS * PER_PRODUCER;
        let seen: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..total_items)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let consumers = spawn_consumers(&q, &seen, WORKERS);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seed = 0x9E37_79B9u64 + p as u64;
                    for i in 0..PER_PRODUCER {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let item = p * PER_PRODUCER + i;
                        match seed % (WORKERS as u64 + 2) {
                            r if (r as usize) < WORKERS => q.enqueue(item, Some(r as usize)),
                            _ => q.enqueue(item, None),
                        };
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, total_items);
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "item {i} seen != once");
        }
    }

    #[test]
    fn stats_track_steals_and_parks() {
        let q = Arc::new(ShardedQueue::<usize>::new(2));
        // Park worker 1, then enqueue to worker 0's shard: the wake is
        // targeted and worker 1 must steal to get the item.
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue(1, &mut 3));
        thread::sleep(Duration::from_millis(20));
        q.enqueue(9, Some(0));
        assert_eq!(h.join().unwrap(), Dequeued::Item(9));
        assert!(q.stats.steals.load(Relaxed) >= 1);
        assert!(q.stats.parks.load(Relaxed) >= 1);
        assert!(q.stats.wakes.load(Relaxed) >= 1);
        q.close();
    }

    #[test]
    fn reopen_serves_a_second_generation() {
        let q = ShardedQueue::new(1);
        let mut seed = 5;
        q.enqueue(1, None);
        q.close();
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(1));
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Closed);
        q.reopen();
        q.enqueue(2, None);
        assert_eq!(q.dequeue(0, &mut seed), Dequeued::Item(2));
        q.close();
    }
}
