//! Engine error types.

use ec_graph::VertexId;
use std::fmt;

/// Errors surfaced by the executors.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The graph/module configuration is invalid.
    Config(String),
    /// A module panicked while executing a vertex-phase pair.
    ModulePanic {
        /// The vertex whose module panicked.
        vertex: VertexId,
        /// Phase being executed.
        phase: u64,
        /// Captured panic message.
        message: String,
    },
    /// A module emitted to a vertex that is not one of its successors.
    BadTarget {
        /// The emitting vertex.
        vertex: VertexId,
        /// The invalid target.
        target: VertexId,
    },
    /// A module emitted twice to the same successor in one phase (each
    /// edge carries at most one message per phase).
    DuplicateTarget {
        /// The emitting vertex.
        vertex: VertexId,
        /// The duplicated target.
        target: VertexId,
    },
    /// The scheduler state violated one of the paper's set definitions
    /// (only possible with `check_invariants` enabled; indicates a bug).
    InvariantViolation(String),
    /// One or more worker threads crashed outside module execution.
    WorkerPanic(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(msg) => write!(f, "configuration error: {msg}"),
            EngineError::ModulePanic {
                vertex,
                phase,
                message,
            } => write!(
                f,
                "module at {vertex:?} panicked in phase {phase}: {message}"
            ),
            EngineError::BadTarget { vertex, target } => {
                write!(f, "{vertex:?} emitted to non-successor {target:?}")
            }
            EngineError::DuplicateTarget { vertex, target } => {
                write!(f, "{vertex:?} emitted twice to {target:?} in one phase")
            }
            EngineError::InvariantViolation(msg) => {
                write!(f, "scheduler invariant violated: {msg}")
            }
            EngineError::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}
