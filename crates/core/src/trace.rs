//! Execution tracing: set-membership snapshots (Figure 3).
//!
//! Figure 3 of the paper depicts eight steps in the execution of a
//! 6-node graph, showing for each step which vertex-phase pairs are in
//! *no* set, only the **partial** set, only the **full** set, or in both
//! the **full and ready** sets. When tracing is enabled the scheduler
//! records exactly that information after every transition, so the
//! figure can be replayed and asserted in tests.
//!
//! Traces use the paper's coordinates: 1-based schedule indices and
//! 1-based phase numbers.

use std::fmt;

/// What the scheduler just did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The environment process started a phase (Listing 2, loop body).
    PhaseStarted(u64),
    /// A computation process finished executing a vertex-phase pair and
    /// updated the data structures (Listing 1, loop body). `emitted` is
    /// the number of output messages it generated.
    Executed {
        /// 1-based schedule index of the executed vertex.
        vertex: u32,
        /// Phase number.
        phase: u64,
        /// Number of messages the execution produced.
        emitted: usize,
    },
}

/// The classification Figure 3 uses for each vertex-phase pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SetMembership {
    /// In the partial set only (drawn as a diamond in Figure 3).
    Partial,
    /// In the full set but not ready (drawn as an octagon).
    FullOnly,
    /// In both the full and ready sets (drawn as a square).
    FullAndReady,
}

/// Snapshot of all set memberships after one transition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetSnapshot {
    /// `(vertex index, phase, membership)` sorted by `(phase, vertex)`.
    pub entries: Vec<(u32, u64, SetMembership)>,
    /// `x_p` values for all phases in the active window, as
    /// `(phase, x)` pairs sorted by phase.
    pub x: Vec<(u64, u32)>,
}

impl SetSnapshot {
    /// Membership of `(vertex, phase)`, or `None` if in no set.
    pub fn membership(&self, vertex: u32, phase: u64) -> Option<SetMembership> {
        self.entries
            .iter()
            .find(|(v, p, _)| *v == vertex && *p == phase)
            .map(|(_, _, m)| *m)
    }

    /// All pairs currently in the partial set.
    pub fn partial(&self) -> Vec<(u32, u64)> {
        self.with(SetMembership::Partial)
    }

    /// All pairs in the full set (ready or not).
    pub fn full(&self) -> Vec<(u32, u64)> {
        self.entries
            .iter()
            .filter(|(_, _, m)| matches!(m, SetMembership::FullOnly | SetMembership::FullAndReady))
            .map(|(v, p, _)| (*v, *p))
            .collect()
    }

    /// All pairs in the ready set.
    pub fn ready(&self) -> Vec<(u32, u64)> {
        self.with(SetMembership::FullAndReady)
    }

    fn with(&self, m: SetMembership) -> Vec<(u32, u64)> {
        self.entries
            .iter()
            .filter(|(_, _, mm)| *mm == m)
            .map(|(v, p, _)| (*v, *p))
            .collect()
    }

    /// The recorded `x_p` for `phase`, if the phase was in the active
    /// window at snapshot time.
    pub fn x_of(&self, phase: u64) -> Option<u32> {
        self.x.iter().find(|(p, _)| *p == phase).map(|(_, x)| *x)
    }
}

/// One step of a trace: the transition plus the state after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// What happened.
    pub event: TraceEvent,
    /// The set memberships afterwards.
    pub after: SetSnapshot,
}

/// A full recorded trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Steps in the order the scheduler's critical sections committed.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Steps matching an executed vertex-phase pair.
    pub fn executions(&self) -> impl Iterator<Item = (u32, u64, &TraceStep)> + '_ {
        self.steps.iter().filter_map(|s| match s.event {
            TraceEvent::Executed { vertex, phase, .. } => Some((vertex, phase, s)),
            TraceEvent::PhaseStarted(_) => None,
        })
    }

    /// The order in which vertex-phase pairs were executed.
    pub fn execution_order(&self) -> Vec<(u32, u64)> {
        self.executions().map(|(v, p, _)| (v, p)).collect()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            match &step.event {
                TraceEvent::PhaseStarted(p) => writeln!(f, "step {i}: phase {p} initiated")?,
                TraceEvent::Executed {
                    vertex,
                    phase,
                    emitted,
                } => writeln!(
                    f,
                    "step {i}: ({vertex}, {phase}) executed, generated {emitted} output(s)"
                )?,
            }
            for (v, p, m) in &step.after.entries {
                let tag = match m {
                    SetMembership::Partial => "partial",
                    SetMembership::FullOnly => "full",
                    SetMembership::FullAndReady => "full+ready",
                };
                writeln!(f, "        ({v}, {p}): {tag}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> SetSnapshot {
        SetSnapshot {
            entries: vec![
                (3, 1, SetMembership::Partial),
                (1, 2, SetMembership::FullAndReady),
                (2, 2, SetMembership::FullOnly),
            ],
            x: vec![(1, 2), (2, 0)],
        }
    }

    #[test]
    fn membership_queries() {
        let s = snap();
        assert_eq!(s.membership(3, 1), Some(SetMembership::Partial));
        assert_eq!(s.membership(1, 2), Some(SetMembership::FullAndReady));
        assert_eq!(s.membership(9, 9), None);
        assert_eq!(s.partial(), vec![(3, 1)]);
        assert_eq!(s.ready(), vec![(1, 2)]);
        let mut full = s.full();
        full.sort_unstable();
        assert_eq!(full, vec![(1, 2), (2, 2)]);
        assert_eq!(s.x_of(1), Some(2));
        assert_eq!(s.x_of(3), None);
    }

    #[test]
    fn trace_execution_order() {
        let t = Trace {
            steps: vec![
                TraceStep {
                    event: TraceEvent::PhaseStarted(1),
                    after: SetSnapshot::default(),
                },
                TraceStep {
                    event: TraceEvent::Executed {
                        vertex: 1,
                        phase: 1,
                        emitted: 1,
                    },
                    after: SetSnapshot::default(),
                },
                TraceStep {
                    event: TraceEvent::Executed {
                        vertex: 2,
                        phase: 1,
                        emitted: 0,
                    },
                    after: SetSnapshot::default(),
                },
            ],
        };
        assert_eq!(t.execution_order(), vec![(1, 1), (2, 1)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let text = t.to_string();
        assert!(text.contains("phase 1 initiated"));
        assert!(text.contains("(1, 1) executed"));
    }
}
