//! Property tests for [`ShardedQueue`] under multi-tenant
//! interleavings: whatever the mix of lane admissions, worker-local
//! enqueues, lane drains, concurrent consumption, close and reopen, no
//! task is ever lost or duplicated — per tenant, not just in
//! aggregate.
//!
//! Each case generates a randomized schedule of operations tagged by
//! tenant, executes it against live consumer threads, and reconciles
//! three exact ledgers per tenant: accepted enqueues = consumed +
//! lane-drained + still-queued-at-close, with every individual item
//! seen exactly once.

use ec_core::{Dequeued, ShardedQueue};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An item: `(tenant, serial)` — unique per case.
type Item = (usize, u64);

/// One scripted step of a round.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Admit an item for tenant `t` into its lane.
    Admit { tenant: usize },
    /// Enqueue an item for tenant `t` as if produced by worker `w`
    /// (worker-shard routing, like a follow-on task).
    Local { tenant: usize, worker: usize },
    /// Discard tenant `t`'s queued lane admissions (tenant detach).
    DrainLane { tenant: usize },
    /// Change tenant `t`'s weighted-round-robin weight.
    SetWeight { tenant: usize, weight: u32 },
}

fn ops_from(raw: Vec<(u8, u8, u8)>, tenants: usize, workers: usize) -> Vec<Op> {
    raw.into_iter()
        .map(|(kind, a, b)| {
            let tenant = a as usize % tenants;
            match kind % 10 {
                // Admissions dominate; drains and weight changes are
                // rare events, as in real pools.
                0..=5 => Op::Admit { tenant },
                6 | 7 => Op::Local {
                    tenant,
                    worker: b as usize % workers,
                },
                8 => Op::DrainLane { tenant },
                _ => Op::SetWeight {
                    tenant,
                    weight: (b as u32 % 4) + 1,
                },
            }
        })
        .collect()
}

/// Executes one generation (open queue → script → close → join) and
/// reconciles the per-tenant ledgers. Consumers run concurrently with
/// the producer, so close races admissions, steals and parks exactly
/// as a live pool shutdown would. Returns the serial counter so a
/// reopened generation keeps items unique.
fn run_generation(
    q: &Arc<ShardedQueue<Item>>,
    ops: &[Op],
    tenants: usize,
    workers: usize,
    serial_base: u64,
) -> u64 {
    // Ledgers: per-tenant counts plus exact per-item observation flags.
    let mut accepted: Vec<u64> = vec![0; tenants];
    let mut serial = serial_base;
    let consumed: Arc<Vec<AtomicUsize>> =
        Arc::new((0..tenants).map(|_| AtomicUsize::new(0)).collect());
    let seen: Arc<parking_lot::Mutex<HashMap<Item, u32>>> =
        Arc::new(parking_lot::Mutex::new(HashMap::new()));

    let consumers: Vec<_> = (0..workers)
        .map(|w| {
            let q = Arc::clone(q);
            let consumed = Arc::clone(&consumed);
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut rng_seed = w as u64 + 0xBEEF;
                while let Dequeued::Item(item) = q.dequeue(w, &mut rng_seed) {
                    consumed[item.0].fetch_add(1, Ordering::Relaxed);
                    *seen.lock().entry(item).or_insert(0) += 1;
                }
            })
        })
        .collect();

    let mut drained: Vec<u64> = vec![0; tenants];
    for op in ops {
        match *op {
            Op::Admit { tenant } => {
                let item = (tenant, serial);
                serial += 1;
                if q.enqueue_lane(item, tenant) {
                    accepted[tenant] += 1;
                }
            }
            Op::Local { tenant, worker } => {
                let item = (tenant, serial);
                serial += 1;
                if q.enqueue(item, Some(worker)) {
                    accepted[tenant] += 1;
                }
            }
            Op::DrainLane { tenant } => {
                // Items discarded here were accepted but must never be
                // consumed; count them out of the ledger. The drain
                // itself reports how many it removed — items already
                // moved to worker shards are no longer in the lane and
                // stay consumable, which is exactly the detach
                // semantics (lane = not-yet-dispatched admissions).
                drained[tenant] += q.drain_lane(tenant) as u64;
            }
            Op::SetWeight { tenant, weight } => q.set_lane_weight(tenant, weight),
        }
    }
    q.close();
    for c in consumers {
        c.join().unwrap();
    }

    // Reconcile: per tenant, accepted = consumed + drained. (After the
    // consumers join, the closed queue has delivered its entire
    // backlog — `close` guarantees delivery before `Closed`.)
    for t in 0..tenants {
        let consumed_t = consumed[t].load(Ordering::Relaxed) as u64;
        assert_eq!(
            accepted[t],
            consumed_t + drained[t],
            "tenant {t}: accepted {} != consumed {} + drained {}",
            accepted[t],
            consumed_t,
            drained[t],
        );
    }
    // And no item was delivered twice (drained items: zero times).
    for (item, count) in seen.lock().iter() {
        assert_eq!(*count, 1, "item {item:?} delivered {count} times");
    }
    assert_eq!(q.len(), 0, "queue not fully drained at close");
    serial
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized multi-tenant schedules, including a close/reopen
    /// cycle with a second generation of consumers, conserve every
    /// tenant's items exactly.
    #[test]
    fn multitenant_interleavings_never_lose_or_duplicate(
        tenants in 1usize..5,
        workers in 1usize..5,
        raw1 in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..400),
        raw2 in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..200),
    ) {
        let q = Arc::new(ShardedQueue::<Item>::with_lanes(workers, tenants));
        let ops1 = ops_from(raw1, tenants, workers);
        let serial = run_generation(&q, &ops1, tenants, workers, 0);

        // Reopen: the same queue serves a second generation (the
        // engine's run/run cycle and pool restart path).
        q.reopen();
        let ops2 = ops_from(raw2, tenants, workers);
        run_generation(&q, &ops2, tenants, workers, serial);
    }
}
